// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-store` — persistent append-only frame store for biosensor-array
//! acquisitions.
//!
//! The station's serving layer streams frames and keeps nothing; this
//! crate is the storage layer that turns one acquisition into unbounded
//! read traffic. A recording is a single *segment file*: a fixed header
//! (magic, version, chip-config FNV-1a-64 hash, spec snapshot), per-frame
//! records carrying embedded metadata (frame index, epoch, payload
//! length, CRC-8 trailer — the same polynomial that guards the chips'
//! serial words, via [`bsa_link::crc::Crc8`]), and an index footer giving
//! O(1) frame seek. See [`format`] docs for the exact byte layout.
//!
//! Design rules:
//!
//! * **The acquisition path never blocks on disk.** [`Recorder`] feeds a
//!   dedicated writer thread through a bounded queue; past high-water the
//!   frame is dropped and counted, mirroring the station's
//!   `StreamEnd { sent, dropped }` contract.
//! * **Bit-exact payloads.** Neuro samples are persisted as raw IEEE-754
//!   bits ([`encode_neuro_frame`]/[`decode_neuro_frame`]), so a replayed
//!   stream is `f64::to_bits`-identical to the live one.
//! * **Panic-free, CRC-guarded reads.** Every malformed or corrupted
//!   segment maps to a typed [`StoreError`]; every file byte is covered
//!   by one of three CRC-8 trailers or pinned by a structural equation,
//!   so single-byte corruption is always detected, never served.
//! * **Wall-clock-legal, but deterministic anyway.** The store sits with
//!   the station outside the `det.*` boundary, yet takes no timestamps:
//!   the `epoch` field is the acquisition's stream-request ordinal, so
//!   identical acquisitions produce identical segments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
pub mod format;
mod reader;
mod writer;

pub use catalog::{list_recordings, CatalogEntry};
pub use error::StoreError;
pub use format::{
    decode_dna_reading, decode_neuro_frame, encode_dna_reading, encode_neuro_frame, fnv1a64,
    frame_payload_len, SegmentMeta, DNA_READING_LEN, SEGMENT_VERSION,
};
pub use reader::{FrameRef, SegmentReader};
pub use writer::{
    segment_path, validate_name, Offer, Recorder, WriteSummary, DEFAULT_QUEUE_DEPTH, SEGMENT_EXT,
};
