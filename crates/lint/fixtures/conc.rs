//! Seeded concurrency-discipline violations (semantic lint fixture —
//! lexed and parsed, never compiled).

pub struct Gauges {
    samples_in: AtomicU64,
    drops: AtomicU64,
    peers: Mutex<Vec<Peer>>,
}

impl Gauges {
    /// Check-then-act: the classic lost-update window.
    pub fn bump_drops(&self) {
        let n = self.drops.load(Ordering::Relaxed); //~ conc.atomic-rmw
        self.drops.store(n + 1, Ordering::Relaxed);
    }

    /// The sanctioned read-modify-write shape: exempt.
    pub fn bump_drops_cas(&self) {
        let mut cur = self.drops.load(Ordering::Relaxed);
        loop {
            match self.drops.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// First site of `samples_in` — anchors the mixed-ordering report
    /// (`SeqCst` sneaks in below in `read_samples`).
    pub fn record(&self) {
        self.samples_in.fetch_add(1, Ordering::Relaxed); //~ conc.ordering
    }

    pub fn read_samples(&self) -> u64 {
        self.samples_in.load(Ordering::SeqCst)
    }

    /// Socket write while the peer table is still locked.
    pub fn broadcast(&self, frame: &[u8]) {
        let peers = self.peers.lock();
        for p in peers.iter() {
            p.write_all(frame); //~ conc.hold-and-block
        }
    }
}
