//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe so strategies can be boxed into unions; combinators that
/// need `Sized` take `self` by value.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous storage (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (`.prop_map`).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let k = rng.gen_range(0..self.options.len());
        self.options[k].generate(rng)
    }
}

macro_rules! impl_numeric_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_numeric_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Size specification for collection strategies: a fixed count or a range.
pub trait SizeRange {
    /// Draws a size.
    fn draw(&self, rng: &mut SmallRng) -> usize;
}

impl SizeRange for usize {
    fn draw(&self, _rng: &mut SmallRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn draw(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw(&self, rng: &mut SmallRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// `prop::collection::vec` — a vector of values from an element strategy.
pub fn collection_vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy for vectors (see [`collection_vec`]).
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for primitives.
#[derive(Debug, Clone, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;
    /// Finite f64s spanning a wide magnitude range (no NaN/inf).
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        let exp = rng.gen_range(-300.0f64..300.0);
        let mantissa = rng.gen_range(-1.0f64..1.0);
        mantissa * 10f64.powf(exp)
    }
}

impl Arbitrary for f64 {
    type Strategy = FullRange<f64>;
    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}
