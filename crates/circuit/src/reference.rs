//! Voltage and current references: bandgap, current mirrors, and the
//! reference-distribution network of the DNA chip's periphery ("bandgap and
//! current references", paper Section 2).

use crate::error::{require_positive, CircuitError};
use crate::mismatch::PelgromModel;
use bsa_units::{Ampere, Kelvin, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bandgap voltage reference with second-order temperature curvature and
/// finite line regulation.
///
/// V_ref(T, V_DD) = V_BG + a·(T − T₀)² + k_line·(V_DD − V_DD0)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandgapReference {
    nominal: Volt,
    curvature_v_per_k2: f64,
    reference_temp: Kelvin,
    line_sensitivity: f64,
    nominal_supply: Volt,
}

impl BandgapReference {
    /// A typical 1.205 V bandgap trimmed at 300 K on a 5 V supply:
    /// ~20 µV/K² curvature, 0.1 %/V line sensitivity.
    pub fn typical_5v() -> Self {
        Self {
            nominal: Volt::new(1.205),
            curvature_v_per_k2: -5e-7,
            reference_temp: bsa_units::consts::ROOM_TEMPERATURE,
            line_sensitivity: 1.2e-3,
            nominal_supply: Volt::new(5.0),
        }
    }

    /// Creates a custom bandgap.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the nominal output is not positive.
    pub fn new(
        nominal: Volt,
        curvature_v_per_k2: f64,
        reference_temp: Kelvin,
        line_sensitivity: f64,
        nominal_supply: Volt,
    ) -> Result<Self, CircuitError> {
        require_positive("bandgap nominal output", nominal.value())?;
        Ok(Self {
            nominal,
            curvature_v_per_k2,
            reference_temp,
            line_sensitivity,
            nominal_supply,
        })
    }

    /// Output voltage at the given temperature and supply.
    pub fn output(&self, t: Kelvin, vdd: Volt) -> Volt {
        let dt = t.value() - self.reference_temp.value();
        let dv_temp = self.curvature_v_per_k2 * dt * dt;
        let dv_line = self.line_sensitivity * (vdd.value() - self.nominal_supply.value());
        self.nominal + Volt::new(dv_temp + dv_line)
    }

    /// Temperature coefficient in ppm/K over `[t_lo, t_hi]` (box method).
    pub fn tempco_ppm_per_k(&self, t_lo: Kelvin, t_hi: Kelvin, vdd: Volt) -> f64 {
        let n = 101;
        let mut vmin = f64::MAX;
        let mut vmax = f64::MIN;
        for k in 0..n {
            let t = t_lo.value() + (t_hi.value() - t_lo.value()) * k as f64 / (n - 1) as f64;
            let v = self.output(Kelvin::new(t), vdd).value();
            vmin = vmin.min(v);
            vmax = vmax.max(v);
        }
        (vmax - vmin) / self.nominal.value() / (t_hi.value() - t_lo.value()) * 1e6
    }
}

/// Current mirror with ratio error from device mismatch.
///
/// Models the distribution of the calibration/reference currents across
/// array rows and the M5…M11 mirror stages of the neural readout chain
/// (paper Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurrentMirror {
    nominal_ratio: f64,
    ratio_error: f64,
    output_resistance_ohm: f64,
}

impl CurrentMirror {
    /// Creates a mirror with the given nominal current ratio.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `nominal_ratio` is not positive.
    pub fn new(nominal_ratio: f64) -> Result<Self, CircuitError> {
        require_positive("mirror ratio", nominal_ratio)?;
        Ok(Self {
            nominal_ratio,
            ratio_error: 0.0,
            output_resistance_ohm: 1e9,
        })
    }

    /// Samples a mismatched instance: the ratio error follows the Pelgrom
    /// current-factor mismatch of devices with gate area `gate_area_um2`
    /// (×√2 for the two devices of the mirror).
    pub fn with_mismatch<R: Rng>(
        mut self,
        pelgrom: &PelgromModel,
        gate_area_um2: f64,
        rng: &mut R,
    ) -> Self {
        let sigma = pelgrom.sigma_beta_rel(gate_area_um2) * std::f64::consts::SQRT_2;
        let mut g = crate::noise::GaussianSampler::new();
        self.ratio_error = sigma * g.sample(rng);
        self
    }

    /// The effective ratio including mismatch.
    pub fn ratio(&self) -> f64 {
        self.nominal_ratio * (1.0 + self.ratio_error)
    }

    /// Mirrors an input current.
    pub fn mirror(&self, input: Ampere) -> Ampere {
        input * self.ratio()
    }
}

/// Trimmed master current reference fanned out to `n` branch outputs with
/// per-branch mirror mismatch — the "current references" block of the DNA
/// chip periphery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurrentReferenceTree {
    master: Ampere,
    branches: Vec<CurrentMirror>,
}

impl CurrentReferenceTree {
    /// Creates a tree with `n` unit mirrors sampled from `pelgrom` at the
    /// given device gate area.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the master current is not positive.
    pub fn new<R: Rng>(
        master: Ampere,
        n: usize,
        pelgrom: &PelgromModel,
        gate_area_um2: f64,
        rng: &mut R,
    ) -> Result<Self, CircuitError> {
        require_positive("master current", master.value())?;
        let unit = CurrentMirror::new(1.0)?;
        let branches = (0..n)
            .map(|_| unit.clone().with_mismatch(pelgrom, gate_area_um2, rng))
            .collect();
        Ok(Self { master, branches })
    }

    /// Number of branch outputs.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// `true` if the tree has no branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The branch current at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn branch(&self, i: usize) -> Ampere {
        self.branches[i].mirror(self.master)
    }

    /// Iterator over all branch currents.
    pub fn iter(&self) -> impl Iterator<Item = Ampere> + '_ {
        self.branches.iter().map(move |m| m.mirror(self.master))
    }

    /// Relative spread (σ/µ) of the branch currents.
    pub fn relative_spread(&self) -> f64 {
        let v: Vec<f64> = self.iter().map(|i| i.value()).collect();
        if v.len() < 2 {
            return 0.0;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bandgap_flat_at_trim_point() {
        let bg = BandgapReference::typical_5v();
        let v0 = bg.output(Kelvin::new(300.0), Volt::new(5.0));
        assert!((v0.value() - 1.205).abs() < 1e-12);
    }

    #[test]
    fn bandgap_curvature_is_second_order() {
        let bg = BandgapReference::typical_5v();
        let dv10 = (bg.output(Kelvin::new(310.0), Volt::new(5.0))
            - bg.output(Kelvin::new(300.0), Volt::new(5.0)))
        .value()
        .abs();
        let dv20 = (bg.output(Kelvin::new(320.0), Volt::new(5.0))
            - bg.output(Kelvin::new(300.0), Volt::new(5.0)))
        .value()
        .abs();
        assert!((dv20 / dv10 - 4.0).abs() < 1e-6, "quadratic in ΔT");
    }

    #[test]
    fn bandgap_line_sensitivity() {
        let bg = BandgapReference::typical_5v();
        let dv = (bg.output(Kelvin::new(300.0), Volt::new(5.5))
            - bg.output(Kelvin::new(300.0), Volt::new(5.0)))
        .value();
        assert!((dv - 1.2e-3 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn bandgap_tempco_is_small() {
        let bg = BandgapReference::typical_5v();
        let ppm = bg.tempco_ppm_per_k(Kelvin::new(273.0), Kelvin::new(350.0), Volt::new(5.0));
        assert!(ppm < 50.0, "tempco = {ppm} ppm/K");
    }

    #[test]
    fn mirror_applies_ratio() {
        let m = CurrentMirror::new(7.0).unwrap();
        let out = m.mirror(Ampere::from_micro(1.0));
        assert!((out.as_micro() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_rejects_zero_ratio() {
        assert!(CurrentMirror::new(0.0).is_err());
    }

    #[test]
    fn mirror_mismatch_statistics() {
        let pel = PelgromModel::cmos05um();
        let mut rng = SmallRng::seed_from_u64(11);
        let area = 25.0;
        let n = 10_000;
        let errors: Vec<f64> = (0..n)
            .map(|_| {
                CurrentMirror::new(1.0)
                    .unwrap()
                    .with_mismatch(&pel, area, &mut rng)
                    .ratio()
                    - 1.0
            })
            .collect();
        let mean = errors.iter().sum::<f64>() / n as f64;
        let sd = (errors.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        let expected = pel.sigma_beta_rel(area) * std::f64::consts::SQRT_2;
        assert!(mean.abs() < expected * 0.05);
        assert!((sd - expected).abs() / expected < 0.05, "sd = {sd}");
    }

    #[test]
    fn reference_tree_spread_matches_pelgrom() {
        let pel = PelgromModel::cmos05um();
        let mut rng = SmallRng::seed_from_u64(12);
        let tree = CurrentReferenceTree::new(Ampere::from_micro(10.0), 4000, &pel, 25.0, &mut rng)
            .unwrap();
        assert_eq!(tree.len(), 4000);
        let spread = tree.relative_spread();
        let expected = pel.sigma_beta_rel(25.0) * std::f64::consts::SQRT_2;
        assert!(
            (spread - expected).abs() / expected < 0.1,
            "spread = {spread}"
        );
    }

    #[test]
    fn reference_tree_branches_are_stable() {
        let pel = PelgromModel::cmos05um();
        let mut rng = SmallRng::seed_from_u64(13);
        let tree =
            CurrentReferenceTree::new(Ampere::from_micro(1.0), 8, &pel, 25.0, &mut rng).unwrap();
        // Same branch read twice gives the same current (static mismatch).
        assert_eq!(tree.branch(3), tree.branch(3));
        assert!(!tree.is_empty());
    }
}
