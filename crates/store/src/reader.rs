//! Segment reader: pread-into-arena with O(1) frame seek.
//!
//! Opening a segment reads and validates only the header and the index
//! footer; frames are then fetched individually by seeking straight to
//! the record offset the footer supplies and reading into a reusable
//! arena buffer, so replaying N frames costs N bounded reads and zero
//! steady-state allocation. Every structural field used to locate data
//! is cross-checked against the file size before use, and every byte is
//! guarded by one of the three CRC-8 trailers — a corrupted segment
//! always fails typed, never panics and never serves a wrong frame.

use crate::error::StoreError;
use crate::format::{
    frame_payload_len, Cursor, SegmentMeta, FOOTER_MAGIC, FOOTER_TAIL_LEN, HEADER_FIXED_LEN,
    RECORD_META_LEN, RECORD_OVERHEAD,
};
use crate::writer::segment_path;
use bsa_link::crc::Crc8;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// One frame served from a segment, borrowing the reader's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// Frame position in the segment.
    pub index: u64,
    /// Acquisition epoch (stream request ordinal) the frame came from.
    pub epoch: u32,
    /// The raw payload bytes, exactly as persisted.
    pub payload: &'a [u8],
}

/// An open, validated segment.
#[derive(Debug)]
pub struct SegmentReader {
    file: File,
    meta: SegmentMeta,
    offsets: Vec<u64>,
    index_off: u64,
    epochs: u32,
    bytes: u64,
    arena: Vec<u8>,
}

impl SegmentReader {
    /// Opens the named recording inside a store root.
    pub fn open_named(root: &Path, name: &str) -> Result<Self, StoreError> {
        let path = segment_path(root, name)?;
        match Self::open(&path) {
            Err(StoreError::Io(err)) if err.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound {
                    name: name.to_string(),
                })
            }
            other => other,
        }
    }

    /// Opens a segment file, validating header, index footer and their
    /// CRC trailers. Record payloads are validated lazily per frame.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let bytes = file.metadata()?.len();
        let min_len = (HEADER_FIXED_LEN + 1 + FOOTER_TAIL_LEN) as u64;
        if bytes < min_len {
            return Err(StoreError::Truncated {
                what: "segment file",
                needed: min_len,
                available: bytes,
            });
        }

        // --- index footer tail: count, index offset, epochs, CRC, magic
        let mut tail = [0u8; FOOTER_TAIL_LEN];
        file.seek(SeekFrom::Start(bytes - FOOTER_TAIL_LEN as u64))?;
        file.read_exact(&mut tail)?;
        let mut cur = Cursor::new(&tail);
        let frame_count = cur.u64("footer frame count")?;
        let index_off = cur.u64("footer index offset")?;
        let epochs = cur.u32("footer epochs")?;
        let footer_crc = cur.u8("footer crc")?;
        let tail_magic = cur.take(4, "footer magic")?;
        if tail_magic != FOOTER_MAGIC {
            return Err(StoreError::BadMagic {
                what: "index footer",
            });
        }

        // Bound both footer fields by the file size before either feeds
        // an allocation: a corrupt count or offset must fail with a
        // typed error, never an absurd `vec![0; …]` request.
        if frame_count > bytes / 8 {
            return Err(StoreError::Truncated {
                what: "footer frame count",
                needed: frame_count.saturating_mul(8),
                available: bytes,
            });
        }
        if index_off > bytes {
            return Err(StoreError::Truncated {
                what: "footer index offset",
                needed: index_off,
                available: bytes,
            });
        }

        // Structural equation before trusting either field: the offset
        // table must account for every byte between the records and the
        // tail. A corrupted count or offset cannot both pass this and
        // the coming CRC.
        let index_len = frame_count
            .checked_mul(8)
            .and_then(|n| n.checked_add(FOOTER_TAIL_LEN as u64))
            .and_then(|n| n.checked_add(index_off))
            .ok_or(StoreError::InvalidValue {
                what: "footer frame count",
            })?;
        if index_len != bytes {
            return Err(StoreError::InvalidValue {
                what: "footer index geometry",
            });
        }

        // --- offset table, then CRC over table + tail fields
        let table_len = (frame_count * 8) as usize;
        let mut table = vec![0u8; table_len];
        file.seek(SeekFrom::Start(index_off))?;
        file.read_exact(&mut table)?;
        let mut crc = Crc8::new();
        crc.update_bytes(&table);
        // The CRC also covers the three tail fields preceding it.
        crc.update_bytes(tail.get(..8 + 8 + 4).unwrap_or(&[]));
        if crc.finish() != footer_crc {
            return Err(StoreError::BadCrc {
                what: "index footer",
            });
        }
        let mut offsets = Vec::with_capacity(table_len / 8);
        for chunk in table.chunks_exact(8) {
            let arr: [u8; 8] = chunk.try_into().map_err(|_| StoreError::InvalidValue {
                what: "footer offset",
            })?;
            offsets.push(u64::from_le_bytes(arr));
        }

        // --- header occupies everything before the first record
        let header_end = offsets.first().copied().unwrap_or(index_off);
        let header_len = usize::try_from(header_end).map_err(|_| StoreError::InvalidValue {
            what: "segment header length",
        })?;
        if header_len < HEADER_FIXED_LEN + 1 || header_end > index_off {
            return Err(StoreError::InvalidValue {
                what: "segment header length",
            });
        }
        let mut header = vec![0u8; header_len];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        let meta = SegmentMeta::decode_header(&header)?;

        // --- offsets must be strictly increasing and in-bounds, and
        // every record needs room for its metadata and CRC trailer.
        let mut prev = header_end;
        for (i, &off) in offsets.iter().enumerate() {
            let lower = if i == 0 { header_end } else { prev + 1 };
            if off < header_end || (i > 0 && off < lower) || off > index_off {
                return Err(StoreError::InvalidValue {
                    what: "footer offset order",
                });
            }
            prev = off;
        }
        if let Some(&last) = offsets.last() {
            if index_off.saturating_sub(last) < RECORD_OVERHEAD as u64 {
                return Err(StoreError::InvalidValue {
                    what: "footer offset order",
                });
            }
        }

        Ok(Self {
            file,
            meta,
            offsets,
            index_off,
            epochs,
            bytes,
            arena: Vec::new(),
        })
    }

    /// The acquisition metadata recorded in the header.
    #[must_use]
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// Frames the segment holds.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// Acquisition epochs the segment spans.
    #[must_use]
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Segment file size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Reads one frame by index — one seek plus one bounded read into
    /// the reusable arena. The record's CRC trailer, stored index and
    /// payload size are all verified before the payload is served.
    pub fn frame(&mut self, index: u64) -> Result<FrameRef<'_>, StoreError> {
        let frames = self.frames();
        let i = usize::try_from(index)
            .ok()
            .filter(|&i| i < self.offsets.len())
            .ok_or(StoreError::FrameOutOfRange { index, frames })?;
        let off = self.offsets.get(i).copied().unwrap_or(0);
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.index_off);
        let rec_len =
            usize::try_from(end.saturating_sub(off)).map_err(|_| StoreError::InvalidValue {
                what: "record size",
            })?;
        if rec_len < RECORD_OVERHEAD {
            return Err(StoreError::InvalidValue {
                what: "record size",
            });
        }
        self.arena.resize(rec_len, 0);
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut self.arena)?;

        let Some((body, &[crc_byte])) = self.arena.split_at_checked(rec_len - 1) else {
            return Err(StoreError::InvalidValue {
                what: "record size",
            });
        };
        let mut crc = Crc8::new();
        crc.update_bytes(body);
        if crc.finish() != crc_byte {
            return Err(StoreError::BadCrc {
                what: "frame record",
            });
        }
        let mut cur = Cursor::new(body);
        let stored_index = cur.u64("record frame index")?;
        let epoch = cur.u32("record epoch")?;
        let payload_len = cur.u32("record payload length")? as usize;
        if stored_index != index {
            return Err(StoreError::InvalidValue {
                what: "record frame index",
            });
        }
        if payload_len != rec_len - RECORD_OVERHEAD {
            return Err(StoreError::InvalidValue {
                what: "record payload length",
            });
        }
        let expected = frame_payload_len(self.meta.kind, self.meta.rows, self.meta.cols);
        if payload_len != expected {
            return Err(StoreError::PayloadSize {
                expected,
                got: payload_len,
            });
        }
        let payload =
            self.arena
                .get(RECORD_META_LEN..rec_len - 1)
                .ok_or(StoreError::InvalidValue {
                    what: "record size",
                })?;
        Ok(FrameRef {
            index,
            epoch,
            payload,
        })
    }
}
