//! Neuron cultures on the chip surface.
//!
//! The 128×128 array covers 1 mm × 1 mm at 7.8 µm pitch; "typical neuron
//! diameters are 10 µm…100 µm", so the pitch "guarantees that each cell is
//! monitored independent of its individual position" (paper Section 3).
//! This module places neurons on the plane, generates their spike trains,
//! and evaluates the cleft potential under any point of the surface at any
//! time — the input the sensor array samples.

use crate::firing::FiringPattern;
use crate::junction::{ApTemplate, CleftJunction};
use bsa_units::{Meter, Seconds, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Footprint weights below this threshold are treated as exactly zero:
/// [`CulturedNeuron::cleft_voltage_at`] early-returns `Volt::ZERO` under it,
/// and [`Culture::compile_sources`] prunes such `(neuron, weight)` pairs.
/// Sharing one constant is what makes the pruned sum bit-identical to the
/// full sum — every pruned contribution is exactly `+0.0`.
pub const MIN_FOOTPRINT: f64 = 1e-6;

/// A cultured neuron adhering to the chip surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CulturedNeuron {
    /// Soma center x position.
    pub x: Meter,
    /// Soma center y position.
    pub y: Meter,
    /// Soma diameter (10–100 µm per the paper).
    pub diameter: Meter,
    /// Firing statistics.
    pub pattern: FiringPattern,
    /// Junction waveform template (already scaled by per-neuron coupling).
    pub template: ApTemplate,
    /// Spike times, filled by [`Culture::generate_spikes`].
    pub spikes: Vec<Seconds>,
}

impl CulturedNeuron {
    /// Soma radius.
    pub fn radius(&self) -> Meter {
        self.diameter * 0.5
    }

    /// Spatial coupling profile at distance `r` from the soma center:
    /// 1 under the soma, Gaussian falloff (σ = radius/2) outside — the
    /// junction signal is confined to the adhesion footprint.
    pub fn footprint(&self, r: Meter) -> f64 {
        let radius = self.radius().value();
        if r.value() <= radius {
            1.0
        } else {
            let d = r.value() - radius;
            let sigma = radius * 0.5;
            (-0.5 * (d / sigma).powi(2)).exp()
        }
    }

    /// Footprint weight of this neuron at surface position `(x, y)` —
    /// [`CulturedNeuron::footprint`] of the distance to the soma center.
    pub fn footprint_at(&self, x: Meter, y: Meter) -> f64 {
        let dx = (x - self.x).value();
        let dy = (y - self.y).value();
        self.footprint(Meter::new((dx * dx + dy * dy).sqrt()))
    }

    /// Temporal junction waveform of this neuron at time `t` (the spatial
    /// footprint factored out), summing over its (recent) spikes.
    pub fn temporal_at(&self, t: Seconds) -> Volt {
        // Only spikes within the template window contribute; binary search
        // for the window start keeps this O(log n + k).
        let window = self.template.duration().value();
        let t0 = t.value() - window;
        let start = self.spikes.partition_point(|s| s.value() < t0);
        let mut v = Volt::ZERO;
        for s in &self.spikes[start..] {
            let rel = t - *s;
            if rel.value() < -window {
                break;
            }
            v += self.template.sample_at(rel);
        }
        v
    }

    /// Whether any spike lies in the closed interval `[from, to]`.
    ///
    /// With `from`/`to` padded by the template duration around a frame this
    /// is a conservative activity test: a neuron reported inactive is
    /// guaranteed to contribute exactly zero to every sample of the frame.
    pub fn active_in(&self, from: Seconds, to: Seconds) -> bool {
        let i = self.spikes.partition_point(|s| s.value() < from.value());
        self.spikes.get(i).is_some_and(|s| s.value() <= to.value())
    }

    /// Cleft voltage contributed by this neuron at position `(x, y)` and
    /// time `t`, summing over its (recent) spikes.
    pub fn cleft_voltage_at(&self, x: Meter, y: Meter, t: Seconds) -> Volt {
        let w = self.footprint_at(x, y);
        if w < MIN_FOOTPRINT {
            return Volt::ZERO;
        }
        self.temporal_at(t) * w
    }
}

/// One `(neuron, footprint_weight)` entry of a compiled source list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcePair {
    /// Index into [`Culture::neurons`].
    pub neuron: u32,
    /// Footprint weight at the compiled sample point (≥ [`MIN_FOOTPRINT`]).
    pub weight: f64,
}

/// Per-point culture source lists in compressed sparse-row layout.
///
/// The `(neuron, weight)` pairs of [`CulturedNeuron::cleft_voltage_at`] are
/// loop-invariant in position — only `t` varies during a scan — so a readout
/// engine compiles them once per recording and collapses the per-sample
/// culture sum from O(all neurons) to O(nearby neurons). Buffers are reused
/// across [`Culture::compile_sources`] calls, so a warm table allocates
/// nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceTable {
    /// CSR offsets: `offsets.len() == points + 1`, pairs of point `p` live
    /// at `pairs[offsets[p]..offsets[p+1]]`.
    offsets: Vec<u32>,
    pairs: Vec<SourcePair>,
}

impl SourceTable {
    /// Number of compiled sample points.
    pub fn points(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of `(neuron, weight)` pairs across all points.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The source list of sample point `point` (empty if out of range),
    /// ordered by ascending neuron index.
    pub fn sources(&self, point: usize) -> &[SourcePair] {
        let lo = self.offsets.get(point).map_or(0, |&o| o as usize);
        let hi = self.offsets.get(point + 1).map_or(lo, |&o| o as usize);
        self.pairs.get(lo..hi).unwrap_or(&[])
    }
}

impl CulturedNeuron {
    /// Conservative activity padding for [`CulturedNeuron::active_in`]:
    /// a spike can influence samples up to one template duration away on
    /// either side (the template extends both before and after its
    /// alignment point).
    pub fn activity_padding(&self) -> Seconds {
        self.template.duration()
    }
}

/// A population of neurons over a rectangular chip surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Culture {
    width: Meter,
    height: Meter,
    neurons: Vec<CulturedNeuron>,
}

/// Configuration for random culture generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CultureConfig {
    /// Surface width (the paper's array: 1 mm).
    pub width: Meter,
    /// Surface height (1 mm).
    pub height: Meter,
    /// Number of neurons to place.
    pub neuron_count: usize,
    /// Minimum soma diameter.
    pub min_diameter: Meter,
    /// Maximum soma diameter.
    pub max_diameter: Meter,
    /// Mean Poisson firing rate (Hz) of the population.
    pub mean_rate_hz: f64,
    /// Fraction of bursting (vs. Poisson) units.
    pub bursting_fraction: f64,
    /// Mean junction-coupling factor relative to the nominal 60 nm-cleft
    /// template (tighter adhesion ⇒ larger; the paper's amplitude window
    /// spans roughly 0.3× … 13× the nominal template).
    pub coupling_mean: f64,
    /// Relative per-neuron coupling spread around the mean.
    pub coupling_spread: f64,
}

impl Default for CultureConfig {
    /// The paper's setting: 1 mm² surface, neurons of 10–100 µm.
    fn default() -> Self {
        Self {
            width: Meter::from_milli(1.0),
            height: Meter::from_milli(1.0),
            neuron_count: 20,
            min_diameter: Meter::from_micro(10.0),
            max_diameter: Meter::from_micro(100.0),
            mean_rate_hz: 5.0,
            bursting_fraction: 0.3,
            coupling_mean: 2.0,
            coupling_spread: 0.5,
        }
    }
}

impl Culture {
    /// Creates an empty culture over the given surface.
    pub fn empty(width: Meter, height: Meter) -> Self {
        Self {
            width,
            height,
            neurons: Vec::new(),
        }
    }

    /// Places neurons at random per `config`, with junction templates from
    /// the nominal 60 nm cleft scaled by per-neuron coupling variation.
    pub fn random<R: Rng>(config: &CultureConfig, rng: &mut R) -> Self {
        let base_template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6));
        let mut neurons = Vec::with_capacity(config.neuron_count);
        for _ in 0..config.neuron_count {
            let x = Meter::new(rng.gen::<f64>() * config.width.value());
            let y = Meter::new(rng.gen::<f64>() * config.height.value());
            let d = config.min_diameter.value()
                + rng.gen::<f64>() * (config.max_diameter - config.min_diameter).value();
            let pattern = if rng.gen::<f64>() < config.bursting_fraction {
                FiringPattern::Bursting {
                    burst_rate_hz: config.mean_rate_hz / 5.0,
                    spikes_per_burst: 5,
                    intra_burst_hz: 100.0,
                }
            } else {
                FiringPattern::Poisson {
                    rate_hz: config.mean_rate_hz,
                }
            };
            // Coupling factor in mean·[1−spread, 1+spread].
            let coupling = config.coupling_mean
                * (1.0 + config.coupling_spread * (2.0 * rng.gen::<f64>() - 1.0));
            neurons.push(CulturedNeuron {
                x,
                y,
                diameter: Meter::new(d),
                pattern,
                template: base_template.clone().scaled(coupling.max(0.05)),
                spikes: Vec::new(),
            });
        }
        Self {
            width: config.width,
            height: config.height,
            neurons,
        }
    }

    /// Adds a neuron.
    pub fn push(&mut self, neuron: CulturedNeuron) {
        self.neurons.push(neuron);
    }

    /// The neurons.
    pub fn neurons(&self) -> &[CulturedNeuron] {
        &self.neurons
    }

    /// Surface width.
    pub fn width(&self) -> Meter {
        self.width
    }

    /// Surface height.
    pub fn height(&self) -> Meter {
        self.height
    }

    /// Generates spike trains for all neurons over `[0, duration)`.
    pub fn generate_spikes<R: Rng>(&mut self, duration: Seconds, rng: &mut R) {
        for n in &mut self.neurons {
            n.spikes = n.pattern.generate(duration, rng);
        }
    }

    /// Total cleft voltage at surface position `(x, y)` and time `t`.
    pub fn cleft_voltage_at(&self, x: Meter, y: Meter, t: Seconds) -> Volt {
        self.neurons
            .iter()
            .map(|n| n.cleft_voltage_at(x, y, t))
            .sum()
    }

    /// Total number of spikes across the culture.
    pub fn total_spikes(&self) -> usize {
        self.neurons.iter().map(|n| n.spikes.len()).sum()
    }

    /// Compiles per-point source lists for the given sample points into
    /// `table`, reusing its buffers (a warm table allocates nothing).
    ///
    /// Each point's list holds every neuron whose footprint weight at that
    /// point is at least [`MIN_FOOTPRINT`], in ascending neuron order, with
    /// the weight already resolved. Evaluating a point's list with
    /// [`Culture::cleft_voltage_from_sources`] is bit-identical to
    /// [`Culture::cleft_voltage_at`]: the pruned neurons are exactly those
    /// the full sum adds `+0.0` for, and IEEE-754 addition of `+0.0`
    /// preserves every accumulator bit (the accumulator starts at `+0.0`
    /// and can never become `-0.0`).
    pub fn compile_sources<I>(&self, points: I, table: &mut SourceTable)
    where
        I: IntoIterator<Item = (Meter, Meter)>,
    {
        table.offsets.clear();
        table.pairs.clear();
        table.offsets.push(0);
        // Conservative per-neuron cull radius: the footprint is monotone
        // decreasing outside the soma, so beyond radius + σ·√(−2·ln MIN)
        // it is strictly below MIN_FOOTPRINT and the exact test below
        // could only reject. A squared-distance compare (with a relative
        // safety margin against rounding) skips the sqrt/exp for the
        // overwhelming majority of (point, neuron) pairs without changing
        // a single emitted weight.
        let cull: Vec<(f64, f64, f64)> = self
            .neurons
            .iter()
            .map(|n| {
                let radius = n.radius().value();
                let cut =
                    (radius + radius * 0.5 * (-2.0 * MIN_FOOTPRINT.ln()).sqrt()) * (1.0 + 1e-9);
                (n.x.value(), n.y.value(), cut * cut)
            })
            .collect();
        for (x, y) in points {
            for ((idx, n), &(nx, ny, cut_sq)) in self.neurons.iter().enumerate().zip(&cull) {
                let dx = x.value() - nx;
                let dy = y.value() - ny;
                if dx * dx + dy * dy > cut_sq {
                    continue;
                }
                let w = n.footprint_at(x, y);
                if w >= MIN_FOOTPRINT {
                    table.pairs.push(SourcePair {
                        neuron: idx as u32,
                        weight: w,
                    });
                }
            }
            table.offsets.push(table.pairs.len() as u32);
        }
    }

    /// Total cleft voltage at compiled sample point `point` and time `t`,
    /// evaluated from the precompiled source lists. Bit-identical to
    /// [`Culture::cleft_voltage_at`] at the position the point was compiled
    /// from — see [`Culture::compile_sources`].
    pub fn cleft_voltage_from_sources(
        &self,
        table: &SourceTable,
        point: usize,
        t: Seconds,
    ) -> Volt {
        let mut v = Volt::ZERO;
        for pair in table.sources(point) {
            if let Some(n) = self.neurons.get(pair.neuron as usize) {
                v += n.temporal_at(t) * pair.weight;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn one_neuron_culture() -> Culture {
        let template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6));
        let mut c = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        c.push(CulturedNeuron {
            x: Meter::from_micro(500.0),
            y: Meter::from_micro(500.0),
            diameter: Meter::from_micro(40.0),
            pattern: FiringPattern::Regular {
                rate_hz: 10.0,
                phase: 0.0,
                jitter_s: 0.0,
            },
            template,
            spikes: vec![Seconds::from_milli(50.0)],
        });
        c
    }

    #[test]
    fn signal_present_under_soma_at_spike_time() {
        let c = one_neuron_culture();
        let v = c.cleft_voltage_at(
            Meter::from_micro(500.0),
            Meter::from_micro(500.0),
            Seconds::from_milli(50.3),
        );
        assert!(v.abs().value() > 20e-6, "v = {v}");
    }

    #[test]
    fn signal_absent_far_away_or_at_other_times() {
        let c = one_neuron_culture();
        // Far corner.
        let v_far = c.cleft_voltage_at(
            Meter::from_micro(50.0),
            Meter::from_micro(50.0),
            Seconds::from_milli(50.3),
        );
        assert_eq!(v_far, Volt::ZERO);
        // Before the spike.
        let v_before = c.cleft_voltage_at(
            Meter::from_micro(500.0),
            Meter::from_micro(500.0),
            Seconds::from_milli(40.0),
        );
        assert_eq!(v_before, Volt::ZERO);
    }

    #[test]
    fn footprint_is_flat_inside_and_decays_outside() {
        let c = one_neuron_culture();
        let n = &c.neurons()[0];
        assert_eq!(n.footprint(Meter::ZERO), 1.0);
        assert_eq!(n.footprint(Meter::from_micro(19.0)), 1.0);
        let just_out = n.footprint(Meter::from_micro(25.0));
        let far_out = n.footprint(Meter::from_micro(40.0));
        assert!(just_out < 1.0 && just_out > far_out);
    }

    #[test]
    fn random_culture_places_all_neurons_on_surface() {
        let mut rng = SmallRng::seed_from_u64(42);
        let cfg = CultureConfig::default();
        let c = Culture::random(&cfg, &mut rng);
        assert_eq!(c.neurons().len(), cfg.neuron_count);
        for n in c.neurons() {
            assert!(n.x.value() >= 0.0 && n.x <= cfg.width);
            assert!(n.y.value() >= 0.0 && n.y <= cfg.height);
            assert!(n.diameter >= cfg.min_diameter && n.diameter <= cfg.max_diameter);
        }
    }

    #[test]
    fn generate_spikes_fills_trains() {
        let mut rng = SmallRng::seed_from_u64(43);
        let mut c = Culture::random(&CultureConfig::default(), &mut rng);
        assert_eq!(c.total_spikes(), 0);
        c.generate_spikes(Seconds::new(2.0), &mut rng);
        assert!(c.total_spikes() > 10, "spikes = {}", c.total_spikes());
    }

    #[test]
    fn culture_generation_is_seed_deterministic() {
        let cfg = CultureConfig::default();
        let mut r1 = SmallRng::seed_from_u64(7);
        let mut r2 = SmallRng::seed_from_u64(7);
        let mut c1 = Culture::random(&cfg, &mut r1);
        let mut c2 = Culture::random(&cfg, &mut r2);
        c1.generate_spikes(Seconds::new(1.0), &mut r1);
        c2.generate_spikes(Seconds::new(1.0), &mut r2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn compiled_sources_are_bit_identical_to_full_sum() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut c = Culture::random(&CultureConfig::default(), &mut rng);
        c.generate_spikes(Seconds::new(0.2), &mut rng);
        let points: Vec<(Meter, Meter)> = (0..64)
            .map(|k| {
                (
                    Meter::from_micro(7.8 * (k % 8) as f64 * 16.0),
                    Meter::from_micro(7.8 * (k / 8) as f64 * 16.0),
                )
            })
            .collect();
        let mut table = SourceTable::default();
        c.compile_sources(points.iter().copied(), &mut table);
        assert_eq!(table.points(), points.len());
        for (p, &(x, y)) in points.iter().enumerate() {
            for step in 0..20 {
                let t = Seconds::from_milli(step as f64 * 10.0);
                let full = c.cleft_voltage_at(x, y, t);
                let fast = c.cleft_voltage_from_sources(&table, p, t);
                assert_eq!(
                    full.value().to_bits(),
                    fast.value().to_bits(),
                    "divergence at point {p}, t {t}"
                );
            }
        }
    }

    #[test]
    fn activity_window_is_conservative() {
        // A neuron reported inactive over a padded window must contribute
        // exactly zero at every instant inside the unpadded window.
        let c = one_neuron_culture();
        let n = &c.neurons()[0];
        let pad = n.activity_padding();
        for step in 0..200 {
            let from = Seconds::from_milli(step as f64);
            let to = from + Seconds::from_milli(1.0);
            if !n.active_in(from - pad, to + pad) {
                for sub in 0..10 {
                    let t = from + Seconds::from_micro(100.0 * sub as f64);
                    assert_eq!(n.temporal_at(t), Volt::ZERO, "t = {t}");
                }
            }
        }
        // Sanity: the window around the 50 ms spike does report active.
        assert!(n.active_in(
            Seconds::from_milli(50.0) - pad,
            Seconds::from_milli(51.0) + pad
        ));
    }

    #[test]
    fn overlapping_neurons_superpose() {
        let template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6));
        let mut c = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        for _ in 0..2 {
            c.push(CulturedNeuron {
                x: Meter::from_micro(500.0),
                y: Meter::from_micro(500.0),
                diameter: Meter::from_micro(40.0),
                pattern: FiringPattern::Silent,
                template: template.clone(),
                spikes: vec![Seconds::from_milli(10.0)],
            });
        }
        let v2 = c.cleft_voltage_at(
            Meter::from_micro(500.0),
            Meter::from_micro(500.0),
            Seconds::from_milli(10.3),
        );
        let single = one_neuron_culture();
        let v1 = single.cleft_voltage_at(
            Meter::from_micro(500.0),
            Meter::from_micro(500.0),
            Seconds::from_milli(50.3),
        );
        assert!((v2.value() / v1.value() - 2.0).abs() < 1e-9);
    }
}
