//! Auto-calibration of the DNA chip ("auto-calibration circuits" in the
//! periphery, paper Section 2).
//!
//! Each pixel's conversion gain depends on its actual C_int, comparator
//! offset and delay — all subject to device mismatch. The chip calibrates
//! itself by switching a known reference current (from the bandgap-derived
//! current reference tree) onto each pixel's integrator in place of the
//! electrode, measuring the count, and storing a per-pixel multiplicative
//! correction.

use super::pixel::DnaPixel;
use bsa_units::{Ampere, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-pixel gain-calibration engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainCalibration {
    /// Reference current injected during calibration.
    pub i_ref: Ampere,
    /// Calibration frame duration.
    pub frame_time: Seconds,
    /// Correction factors outside `[1/limit, limit]` mark a pixel as dead
    /// (open electrode, stuck comparator, …).
    pub dead_pixel_limit: f64,
}

impl Default for GainCalibration {
    /// 10 nA reference (mid-range, high count rate) over a 1 s frame;
    /// pixels needing more than ±30 % correction are flagged dead.
    fn default() -> Self {
        Self {
            i_ref: Ampere::from_nano(10.0),
            frame_time: Seconds::new(1.0),
            dead_pixel_limit: 1.3,
        }
    }
}

/// Outcome of calibrating a full array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Gain-correction factors applied, one per pixel.
    pub corrections: Vec<f64>,
    /// Relative current-estimate spread (σ/µ) across pixels *before*
    /// calibration.
    pub spread_before: f64,
    /// Relative spread after calibration (re-measured with noise).
    pub spread_after: f64,
    /// Pixels whose calibration failed or needed an out-of-limit
    /// correction — to be masked from assay interpretation.
    pub dead_pixels: Vec<usize>,
}

impl CalibrationReport {
    /// Spread improvement factor (before/after).
    pub fn improvement(&self) -> f64 {
        if self.spread_after == 0.0 {
            f64::INFINITY
        } else {
            self.spread_before / self.spread_after
        }
    }

    /// Fraction of usable (non-dead) pixels.
    pub fn yield_fraction(&self) -> f64 {
        if self.corrections.is_empty() {
            return 1.0;
        }
        1.0 - self.dead_pixels.len() as f64 / self.corrections.len() as f64
    }
}

impl GainCalibration {
    /// Escalated settings for retrying pixels that failed first-pass
    /// calibration: an 8× reference current (additive defects such as
    /// electrode leakage weigh proportionally less), a 4× integration
    /// window (more counts, less shot noise) and a squared — i.e.
    /// relaxed — out-of-family limit.
    pub fn escalated(&self) -> Self {
        Self {
            i_ref: self.i_ref * 8.0,
            frame_time: self.frame_time * 4.0,
            dead_pixel_limit: self.dead_pixel_limit.powi(2),
        }
    }

    /// Retries one pixel with these (typically [`escalated`](Self::escalated))
    /// settings. The pixel is probed at two currents an octave-and-a-half
    /// apart: a pixel whose count does not scale with its input (stuck
    /// counter, stuck comparator, open electrode) is unrecoverable. If the
    /// response scales and the required correction lies within
    /// `dead_pixel_limit`, the correction is stored and returned.
    pub fn retry_pixel<R: Rng>(&self, pixel: &mut DnaPixel, rng: &mut R) -> Option<f64> {
        pixel.set_gain_correction(1.0);
        let c_lo = pixel
            .convert(self.i_ref * 0.125, self.frame_time, rng)
            .count;
        let c_hi = pixel.convert(self.i_ref, self.frame_time, rng).count;
        if c_hi == 0 || c_hi < c_lo.saturating_mul(2) {
            return None;
        }
        let est = pixel.estimate_current(c_hi, self.frame_time);
        if est.value() <= 0.0 {
            return None;
        }
        let k = self.i_ref.value() / est.value();
        if k > self.dead_pixel_limit || k < 1.0 / self.dead_pixel_limit {
            return None;
        }
        pixel.set_gain_correction(k);
        Some(k)
    }

    /// Calibrates every pixel: injects the reference, estimates, stores
    /// `i_ref / estimate` as the pixel's correction factor, then
    /// re-measures to report the residual spread.
    pub fn run<R: Rng>(&self, pixels: &mut [DnaPixel], rng: &mut R) -> CalibrationReport {
        let mut before = Vec::with_capacity(pixels.len());
        let mut corrections = Vec::with_capacity(pixels.len());
        let mut dead_pixels = Vec::new();

        for (i, p) in pixels.iter_mut().enumerate() {
            p.set_gain_correction(1.0);
            let r = p.convert(self.i_ref, self.frame_time, rng);
            let est = p.estimate_current(r.count, self.frame_time);
            before.push(est.value());
            let k = if est.value() > 0.0 {
                self.i_ref.value() / est.value()
            } else {
                1.0
            };
            if r.count == 0 || k > self.dead_pixel_limit || k < 1.0 / self.dead_pixel_limit {
                dead_pixels.push(i);
            }
            p.set_gain_correction(k);
            corrections.push(k);
        }

        let mut after = Vec::with_capacity(pixels.len());
        for p in pixels.iter_mut() {
            let r = p.convert(self.i_ref, self.frame_time, rng);
            after.push(p.estimate_current(r.count, self.frame_time).value());
        }

        CalibrationReport {
            corrections,
            spread_before: rel_spread(&before),
            spread_after: rel_spread(&after),
            dead_pixels,
        }
    }
}

fn rel_spread(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (v.len() - 1) as f64;
    var.sqrt() / mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna_chip::pixel::{DnaPixelConfig, PixelVariation};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mismatched_array(n: usize, seed: u64) -> Vec<DnaPixel> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                DnaPixel::with_variation(
                    DnaPixelConfig::default(),
                    PixelVariation::sample(&mut rng),
                )
            })
            .collect()
    }

    #[test]
    fn calibration_tightens_spread_by_an_order_of_magnitude() {
        let mut pixels = mismatched_array(128, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let report = GainCalibration::default().run(&mut pixels, &mut rng);
        assert!(
            report.spread_before > 0.02,
            "uncalibrated spread = {}",
            report.spread_before
        );
        assert!(
            report.spread_after < 0.005,
            "calibrated spread = {}",
            report.spread_after
        );
        assert!(
            report.improvement() > 10.0,
            "improvement = {}",
            report.improvement()
        );
    }

    #[test]
    fn corrections_center_on_unity() {
        let mut pixels = mismatched_array(256, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let report = GainCalibration::default().run(&mut pixels, &mut rng);
        let mean: f64 = report.corrections.iter().sum::<f64>() / report.corrections.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean correction = {mean}");
    }

    #[test]
    fn calibration_transfers_across_currents() {
        // Calibrate at 10 nA, verify the estimate at 100 pA — the
        // correction is multiplicative and current-independent (up to dead
        // time, which estimate_current already removes).
        let mut pixels = mismatched_array(16, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        GainCalibration::default().run(&mut pixels, &mut rng);
        let i = Ampere::from_pico(100.0);
        let frame = Seconds::new(10.0);
        for p in &mut pixels {
            let count = p.convert_ideal(i, frame);
            let est = p.estimate_current(count, frame);
            let rel = (est.value() - i.value()).abs() / i.value();
            assert!(rel < 0.02, "rel = {rel}");
        }
    }

    #[test]
    fn nominal_pixels_need_no_correction() {
        let mut pixels: Vec<DnaPixel> = (0..8)
            .map(|_| DnaPixel::nominal(DnaPixelConfig::default()))
            .collect();
        let mut rng = SmallRng::seed_from_u64(7);
        let report = GainCalibration::default().run(&mut pixels, &mut rng);
        for k in &report.corrections {
            assert!((k - 1.0).abs() < 0.01, "k = {k}");
        }
    }

    #[test]
    fn healthy_array_has_full_yield() {
        let mut pixels = mismatched_array(128, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        let report = GainCalibration::default().run(&mut pixels, &mut rng);
        assert!(
            report.dead_pixels.is_empty(),
            "dead: {:?}",
            report.dead_pixels
        );
        assert_eq!(report.yield_fraction(), 1.0);
    }

    #[test]
    fn broken_pixel_is_flagged_dead() {
        let mut pixels = mismatched_array(16, 10);
        // Pixel 5: integration cap shorted to half its value — a gross
        // defect far beyond Pelgrom mismatch.
        pixels[5] = DnaPixel::with_variation(
            DnaPixelConfig::default(),
            PixelVariation {
                c_int_rel_err: -0.5,
                comparator_offset: bsa_units::Volt::ZERO,
                delay_rel_err: 0.0,
            },
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let report = GainCalibration::default().run(&mut pixels, &mut rng);
        assert_eq!(report.dead_pixels, vec![5]);
        assert!((report.yield_fraction() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn escalated_retry_recovers_drifted_pixel() {
        // 400 mV of comparator drift needs k ≈ 1.4 — outside the 1.3
        // first-pass limit, inside the escalated one.
        let mut p = DnaPixel::nominal(DnaPixelConfig::default());
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::ComparatorDrift {
            offset: bsa_units::Volt::from_milli(400.0),
        });
        p.set_faults(f);
        let cal = GainCalibration::default();
        let mut rng = SmallRng::seed_from_u64(12);
        let first = cal.run(std::slice::from_mut(&mut p), &mut rng);
        assert_eq!(first.dead_pixels, vec![0], "first pass must flag the drift");
        let k = cal.escalated().retry_pixel(&mut p, &mut rng);
        let k = k.expect("escalation should recover a drifted pixel");
        assert!((k - 1.4).abs() < 0.05, "k = {k}");
    }

    #[test]
    fn escalated_retry_rejects_dead_and_stuck_pixels() {
        let cal = GainCalibration::default().escalated();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut dead = DnaPixel::nominal(DnaPixelConfig::default());
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::DeadPixel);
        dead.set_faults(f);
        assert_eq!(cal.retry_pixel(&mut dead, &mut rng), None);

        let mut stuck = DnaPixel::nominal(DnaPixelConfig::default());
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::StuckCount { count: 1_000_000 });
        stuck.set_faults(f);
        assert_eq!(
            cal.retry_pixel(&mut stuck, &mut rng),
            None,
            "a frozen count does not scale with current"
        );
    }

    #[test]
    fn rel_spread_edge_cases() {
        assert_eq!(rel_spread(&[]), 0.0);
        assert_eq!(rel_spread(&[1.0]), 0.0);
        assert_eq!(rel_spread(&[1.0, 1.0, 1.0]), 0.0);
        assert!(rel_spread(&[1.0, 2.0]) > 0.0);
    }
}
