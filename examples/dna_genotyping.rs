#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! SNP genotyping: the workload the paper's DNA chip targets.
//!
//! Two allele-specific probes (wild-type and variant, differing at one
//! base) are spotted in replicate columns; samples representing the three
//! genotypes are applied, and the chip's currents call the genotype.
//!
//! ```bash
//! cargo run --release --example dna_genotyping
//! ```

use cmos_biosensor_arrays::chips::array::PixelAddress;
use cmos_biosensor_arrays::chips::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use cmos_biosensor_arrays::dsp::stats::median;
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::units::Molar;

/// Median estimated current over the sites in columns `[lo, hi)`.
fn column_median(
    readout: &cmos_biosensor_arrays::chips::dna_chip::AssayReadout,
    lo: usize,
    hi: usize,
) -> f64 {
    let g = readout.geometry();
    let v: Vec<f64> = g
        .iter()
        .filter(|a| a.col >= lo && a.col < hi)
        .map(|a| readout.estimated_currents[g.index_of(a).unwrap()].value())
        .collect();
    median(&v).unwrap_or(0.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Allele-specific 20-mer probes: one base apart (a SNP).
    let wild_type: DnaSequence = "TGCCATGGACTTCAGGCTAA".parse()?;
    let variant = wild_type.with_mismatches(1);

    // Stringent wash so a single-base difference discriminates.
    let mut config = DnaChipConfig::default();
    config.assay.wash_stringency = 100.0;

    println!("SNP genotyping on the 16×8 microarray");
    println!("  WT probe:      {wild_type}");
    println!("  variant probe: {variant}");
    println!();

    let genotypes: [(&str, Vec<(DnaSequence, Molar)>); 3] = [
        (
            "homozygous WT",
            vec![(wild_type.reverse_complement(), Molar::from_nano(100.0))],
        ),
        (
            "heterozygous",
            vec![
                (wild_type.reverse_complement(), Molar::from_nano(50.0)),
                (variant.reverse_complement(), Molar::from_nano(50.0)),
            ],
        ),
        (
            "homozygous variant",
            vec![(variant.reverse_complement(), Molar::from_nano(100.0))],
        ),
    ];

    for (name, targets) in genotypes {
        let mut chip = DnaChip::new(config.clone())?;
        // Columns 0–7: WT probe replicates; 8–15: variant probe replicates.
        for addr in chip.geometry().iter() {
            let probe = if addr.col < 8 { &wild_type } else { &variant };
            chip.spot(PixelAddress::new(addr.row, addr.col), probe.clone())?;
        }
        chip.auto_calibrate();

        let mut sample = SampleMix::new();
        for (t, c) in &targets {
            sample = sample.with_target(t.clone(), *c);
        }
        let readout = chip.run_assay(&sample);

        let wt_current = column_median(&readout, 0, 8);
        let var_current = column_median(&readout, 8, 16);
        let ratio = (wt_current / var_current).log10();
        let call = if ratio > 1.0 {
            "WT/WT"
        } else if ratio < -1.0 {
            "VAR/VAR"
        } else {
            "WT/VAR"
        };
        println!(
            "sample {name:>18}: WT sites {:>9}, variant sites {:>9} → genotype call {call}",
            cmos_biosensor_arrays::units::format_eng(wt_current, "A"),
            cmos_biosensor_arrays::units::format_eng(var_current, "A"),
        );
    }
    Ok(())
}
