//! Record population bursts of a synaptically coupled culture — the
//! network-level activity dissociated cultures show on MEAs, seen through
//! the 128×128 chip.
//!
//! ```bash
//! cargo run --release --example network_bursts
//! ```

use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::neuro::culture::{Culture, CultureConfig};
use cmos_biosensor_arrays::neuro::network::{NetworkConfig, SynapticNetwork};
use cmos_biosensor_arrays::units::Seconds;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a recurrent network (the culture's own dynamics).
    let mut rng = SmallRng::seed_from_u64(31);
    let net_cfg = NetworkConfig {
        neuron_count: 40,
        ..NetworkConfig::default()
    };
    let mut network = SynapticNetwork::random(net_cfg, &mut rng);
    let duration = Seconds::from_milli(400.0);
    let activity = network.run(duration, &mut rng);
    println!(
        "Network: {} neurons, {} spikes, burst synchrony {:.2}.",
        network.len(),
        activity.total_spikes(),
        activity.burst_synchrony(4)
    );

    // 2. Place the network's units on the chip surface and hand each its
    //    simulated spike train.
    let cfg = CultureConfig {
        neuron_count: network.len(),
        ..CultureConfig::default()
    };
    let culture = Culture::random(&cfg, &mut rng);
    // Overwrite the independent Poisson trains with the network's.
    let neurons = culture.neurons().len();
    let mut with_trains = Culture::empty(culture.width(), culture.height());
    for k in 0..neurons {
        let mut n = culture.neurons()[k].clone();
        n.spikes = activity.spike_trains[k].clone();
        with_trains.push(n);
    }

    // 3. Record with the chip and look at the population signal.
    let mut chip = NeuroChip::new(NeuroChipConfig::default())?;
    let frames = (duration.value() * chip.timing().frame_rate.value()).round() as usize;
    let rec = chip.record(&with_trains, Seconds::ZERO, frames);

    // Frame-wise total |activity| (input-referred), coarse-binned.
    let gain = rec.nominal_voltage_gain();
    let mut base: Vec<f64> = vec![0.0; rec.geometry().len()];
    for f in rec.frames() {
        for (b, s) in base.iter_mut().zip(f.samples()) {
            *b += s / rec.len() as f64;
        }
    }
    println!();
    println!("Chip-side population activity (20 ms bins, suprathreshold samples):");
    let bin_frames = 40; // 20 ms at 2 kfps
    let threshold = 120e-6; // input-referred volts, above the noise floor
    for (bin, chunk) in rec.frames().chunks(bin_frames).enumerate() {
        let mut events = 0usize;
        for f in chunk {
            for (s, b) in f.samples().iter().zip(base.iter()) {
                if ((s - b) / gain).abs() > threshold {
                    events += 1;
                }
            }
        }
        let bars = (events / 8).min(60);
        println!("{:>5.0} ms |{}", bin as f64 * 20.0, "#".repeat(bars));
    }
    println!();
    println!("Population bursts appear as synchronized activity bars; quiet bins are");
    println!("the inter-burst intervals.");
    Ok(())
}
