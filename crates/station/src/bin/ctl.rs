//! `bsa-ctl` — command-line client for a running `bsa-station`.
//!
//! ```text
//! bsa-ctl [--addr HOST:PORT | --local] stats
//! bsa-ctl [--addr HOST:PORT | --local] assay  [--seed N]
//! bsa-ctl [--addr HOST:PORT | --local] stream [--frames N] [--rows N] [--cols N]
//!                                              [--channels N] [--seed N]
//! ```
//!
//! `--local` spins up an in-process station on a loopback port and runs
//! the command against it — a one-command end-to-end smoke test.

use bsa_link::{CultureSpec, DnaChipSpec, NeuroChipSpec, TargetSpec};
use bsa_station::{Station, StationClient, StationConfig, StationHandle};
use bsa_units::Seconds;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: bsa-ctl [--addr HOST:PORT | --local] <stats | assay | stream> [options]\n\
     \n\
     commands:\n\
     stats                      print station counters\n\
     assay  [--seed N]          run a small DNA assay end to end\n\
     stream [--frames N] [--rows N] [--cols N] [--channels N] [--seed N]\n\
     \x20                          record and stream neuro frames\n\
     \n\
     connection:\n\
     --addr HOST:PORT           connect to a running station (default 127.0.0.1:7801)\n\
     --local                    run against an in-process station"
}

struct Options {
    addr: String,
    local: bool,
    command: String,
    frames: u32,
    rows: u16,
    cols: u16,
    channels: u16,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7801".into(),
        local: false,
        command: String::new(),
        frames: 64,
        rows: 32,
        cols: 32,
        channels: 8,
        seed: 0x0EE5_1281,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value_for("--addr")?,
            "--local" => opts.local = true,
            "--frames" => opts.frames = parse_num(&value_for("--frames")?, "--frames")?,
            "--rows" => opts.rows = parse_num(&value_for("--rows")?, "--rows")?,
            "--cols" => opts.cols = parse_num(&value_for("--cols")?, "--cols")?,
            "--channels" => opts.channels = parse_num(&value_for("--channels")?, "--channels")?,
            "--seed" => opts.seed = parse_num(&value_for("--seed")?, "--seed")?,
            "--help" | "-h" => return Err(String::new()),
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.command.is_empty() {
        return Err("missing command".into());
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse::<T>().map_err(|e| format!("{flag}: {e}"))
}

fn run(opts: &Options) -> Result<(), String> {
    // Keep the in-process station alive for the whole command.
    let local: Option<StationHandle> = if opts.local {
        Some(Station::bind(StationConfig::default()).map_err(|e| format!("local bind: {e}"))?)
    } else {
        None
    };
    let addr = local
        .as_ref()
        .map_or_else(|| opts.addr.clone(), |h| h.addr().to_string());
    let mut client =
        StationClient::connect(&addr, "bsa-ctl").map_err(|e| format!("connect {addr}: {e}"))?;

    match opts.command.as_str() {
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("sessions opened   {}", stats.sessions_opened);
            println!("sessions active   {}", stats.sessions_active);
            println!("chips attached    {}", stats.chips_attached);
            println!("requests          {}", stats.requests);
            println!("frames served     {}", stats.frames_served);
            println!("frames dropped    {}", stats.frames_dropped);
            println!("chunks sent       {}", stats.chunks_sent);
            println!("bytes sent        {}", stats.bytes_sent);
            println!("queue peak        {}", stats.queue_peak);
        }
        "assay" => {
            let attached = client
                .attach_dna(&DnaChipSpec {
                    rows: 0,
                    cols: 0,
                    seed: opts.seed,
                    frame_time_s: 0.0,
                })
                .map_err(|e| e.to_string())?;
            println!(
                "attached DNA chip {} ({}x{})",
                attached.chip, attached.rows, attached.cols
            );
            let cal = client.calibrate(attached.chip).map_err(|e| e.to_string())?;
            println!(
                "calibrated: {} healthy / {} out-of-family / {} dead",
                cal.healthy, cal.out_of_family, cal.dead
            );
            let probe = "ACGTACGTACGT";
            client
                .configure_assay(
                    attached.chip,
                    vec![probe.to_string()],
                    vec![TargetSpec {
                        sequence: probe.to_string(),
                        concentration_molar: 1e-9,
                    }],
                )
                .map_err(|e| e.to_string())?;
            let outcome = client
                .run_assay(attached.chip, true)
                .map_err(|e| e.to_string())?;
            let max = outcome.counts.iter().max().copied().unwrap_or(0);
            println!(
                "assay done: {} pixels, {} streamed readings, max count {}",
                outcome.counts.len(),
                outcome.streamed.len(),
                max
            );
        }
        "stream" => {
            let attached = client
                .attach_neuro(&NeuroChipSpec {
                    rows: opts.rows,
                    cols: opts.cols,
                    channels: opts.channels,
                    seed: opts.seed,
                    frame_rate_hz: 0.0,
                })
                .map_err(|e| e.to_string())?;
            println!(
                "attached neuro chip {} ({}x{})",
                attached.chip, attached.rows, attached.cols
            );
            let stream = client
                .stream_neuro(
                    attached.chip,
                    opts.frames,
                    0,
                    Seconds::new(0.0),
                    &CultureSpec {
                        seed: opts.seed,
                        neuron_count: 0,
                        spike_duration_s: opts.frames as f64 / 2000.0,
                    },
                )
                .map_err(|e| e.to_string())?;
            println!(
                "streamed {} frames in {} chunks ({} sent, {} dropped by backpressure)",
                stream.frames.len(),
                stream.chunks,
                stream.frames_sent,
                stream.frames_dropped
            );
        }
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
