#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! API-guideline conformance contracts (C-SEND-SYNC, C-DEBUG,
//! C-DEBUG-NONEMPTY, C-COMMON-TRAITS) for the chip crate's public surface.

use bsa_core::array::{ArrayGeometry, PixelAddress};
use bsa_core::dna_chip::{
    ConversionResult, DnaChip, DnaChipConfig, DnaPixel, DnaPixelConfig, PixelReading, SampleMix,
};
use bsa_core::neuro_chip::{
    ChainConfig, ChannelChain, NeuroChip, NeuroChipConfig, NeuroPixel, NeuroPixelConfig, Recording,
    ScanTiming,
};
use bsa_core::ChipError;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

#[test]
fn public_types_are_send_sync() {
    assert_send_sync::<DnaChip>();
    assert_send_sync::<NeuroChip>();
    assert_send_sync::<DnaChipConfig>();
    assert_send_sync::<NeuroChipConfig>();
    assert_send_sync::<DnaPixel>();
    assert_send_sync::<NeuroPixel>();
    assert_send_sync::<ChannelChain>();
    assert_send_sync::<Recording>();
    assert_send_sync::<ChipError>();
    assert_send_sync::<SampleMix>();
}

#[test]
fn public_types_are_clone_debug() {
    assert_clone_debug::<DnaChip>();
    assert_clone_debug::<NeuroChip>();
    assert_clone_debug::<DnaPixelConfig>();
    assert_clone_debug::<NeuroPixelConfig>();
    assert_clone_debug::<ChainConfig>();
    assert_clone_debug::<ScanTiming>();
    assert_clone_debug::<PixelReading>();
    assert_clone_debug::<ConversionResult>();
}

#[test]
fn debug_representations_are_nonempty() {
    let geometry = ArrayGeometry::dna_16x8();
    assert!(!format!("{geometry:?}").is_empty());
    let addr = PixelAddress::new(1, 2);
    assert!(!format!("{addr:?}").is_empty());
    let cfg = DnaChipConfig::default();
    assert!(format!("{cfg:?}").contains("DnaChipConfig"));
    let cfg = NeuroChipConfig::default();
    assert!(format!("{cfg:?}").contains("NeuroChipConfig"));
}

#[test]
fn default_configs_construct_valid_chips() {
    assert!(DnaChip::new(DnaChipConfig::default()).is_ok());
    assert!(NeuroChip::new(NeuroChipConfig::default()).is_ok());
}

#[test]
fn errors_display_lowercase_without_trailing_period() {
    let e = ChipError::AddressOutOfRange {
        row: 1,
        col: 2,
        rows: 8,
        cols: 16,
    };
    let msg = e.to_string();
    assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
    assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("pixel"));
}

#[test]
fn chips_can_move_across_threads() {
    let chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    let handle = std::thread::spawn(move || chip.geometry().len());
    assert_eq!(handle.join().unwrap(), 128);

    let chip = NeuroChip::new(NeuroChipConfig::default()).unwrap();
    let handle = std::thread::spawn(move || chip.timing().channels);
    assert_eq!(handle.join().unwrap(), 16);
}

#[test]
fn configs_roundtrip_through_clone_equality() {
    let a = DnaChipConfig::default();
    let b = a.clone();
    assert_eq!(a, b);
    let a = NeuroChipConfig::default();
    let b = a.clone();
    assert_eq!(a, b);
}
