// Experiment binaries abort on broken I/O or impossible configs by design.
#![allow(clippy::unwrap_used)]
//! Experiment E-F4: the full 16×8 DNA microarray chip (paper Fig. 4).
//!
//! Exercises the periphery around the pixel array: auto-calibration
//! against the on-chip current references, five-decade dynamic range of
//! the whole array, and integrity of the 6-pin serial readout.

use bsa_bench::{banner, eng, pct, sig, times, Table};
use bsa_core::dna_chip::{decode_frames, DnaChip, DnaChipConfig, PIN_COUNT};
use bsa_units::sweep::decades;
use bsa_units::Ampere;

fn main() {
    banner(
        "E-F4",
        "Fig. 4 (16×8 DNA microarray chip with periphery)",
        "8×16 sensor array, auto-calibration, D/A converters, 6-pin serial interface",
    );

    let config = DnaChipConfig::default();
    let mut chip = DnaChip::new(config).expect("default config valid");
    println!(
        "Chip: {}×{} = {} sensor sites, {}-pin interface, 0.5 µm/5 V process model.",
        chip.geometry().rows(),
        chip.geometry().cols(),
        chip.geometry().len(),
        PIN_COUNT
    );
    println!();

    // (a) Auto-calibration.
    let report = chip.auto_calibrate();
    let mut t = Table::new(
        "Auto-calibration: conversion-gain spread across the 128 pixels",
        &["quantity", "value"],
    );
    t.add_row(vec![
        "relative spread before calibration".into(),
        pct(report.spread_before),
    ]);
    t.add_row(vec![
        "relative spread after calibration".into(),
        pct(report.spread_after),
    ]);
    t.add_row(vec!["improvement".into(), times(report.improvement())]);
    t.add_row(vec![
        "pixel yield (dead-pixel screen)".into(),
        format!(
            "{} ({} dead)",
            pct(report.yield_fraction()),
            report.dead_pixels.len()
        ),
    ]);
    t.print();
    println!();

    // (b) Electrochemical DAC sweep.
    let mut t = Table::new(
        "Electrochemical D/A converter (bandgap-referenced)",
        &["code", "electrode voltage"],
    );
    for code in [0u32, 64, 128, 192, 255] {
        t.add_row(vec![
            code.to_string(),
            format!("{}", chip.electrode_voltage(code)),
        ]);
    }
    t.print();
    println!();

    // (c) Array-wide dynamic range: one decade per pair of columns.
    let n = chip.geometry().len();
    let ladder = decades(1e-12, 100e-9, 5);
    let currents: Vec<Ampere> = (0..n)
        .map(|k| Ampere::new(ladder[k % ladder.len()]))
        .collect();
    let counts = chip
        .measure_currents(&currents)
        .expect("one current per pixel");
    let estimates = chip
        .estimate_currents(&counts)
        .expect("one count per pixel");
    let mut t = Table::new(
        "Array dynamic range: recovered vs applied current (median per decade)",
        &["applied", "median recovered", "median |rel err|"],
    );
    for target in &ladder {
        let mut errs: Vec<f64> = Vec::new();
        let mut recs: Vec<f64> = Vec::new();
        for (i, c) in currents.iter().enumerate() {
            if (c.value() - target).abs() / target < 1e-9 {
                recs.push(estimates[i].value());
                errs.push((estimates[i].value() - target).abs() / target);
            }
        }
        recs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t.add_row(vec![
            eng(*target, "A"),
            eng(recs[recs.len() / 2], "A"),
            pct(errs[errs.len() / 2]),
        ]);
    }
    t.print();
    println!();

    // (d) Serial interface integrity over the full array.
    let readout = chip.run_assay(&bsa_core::dna_chip::SampleMix::new());
    let bits = chip.serial_readout(&readout);
    let decoded = decode_frames(&bits).expect("stream decodes");
    let intact = decoded
        .iter()
        .zip(readout.to_readings().iter())
        .all(|(a, b)| a == b);
    println!(
        "Serial readout: {} bits for {} sites, decoded losslessly: {intact}",
        bits.len(),
        decoded.len()
    );
    println!(
        "Bits per site: {} (sync + address + 24-bit count + checksum).",
        bits.len() / decoded.len()
    );
    let _ = sig(0.0, 1);
}
