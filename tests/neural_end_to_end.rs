#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! End-to-end integration: neuron models → junction → neural chip → DSP.

use cmos_biosensor_arrays::chips::array::{ArrayGeometry, PixelAddress};
use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::dsp::frames::FrameStack;
use cmos_biosensor_arrays::dsp::spike::{score_detections, SpikeDetector};
use cmos_biosensor_arrays::neuro::culture::{Culture, CulturedNeuron};
use cmos_biosensor_arrays::neuro::firing::FiringPattern;
use cmos_biosensor_arrays::neuro::junction::{ApTemplate, CleftJunction};
use cmos_biosensor_arrays::units::{Meter, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_chip() -> NeuroChip {
    let cfg = NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        channels: 4,
        ..NeuroChipConfig::default()
    };
    NeuroChip::new(cfg).unwrap()
}

fn neuron_at(chip: &NeuroChip, row: usize, col: usize, spikes: Vec<Seconds>) -> CulturedNeuron {
    let (x, y) = chip
        .config()
        .geometry
        .position_of(PixelAddress::new(row, col));
    let template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6)).scaled(3.0);
    CulturedNeuron {
        x,
        y,
        diameter: Meter::from_micro(40.0),
        pattern: FiringPattern::Silent,
        template,
        spikes,
    }
}

fn input_referred_stack(chip: &mut NeuroChip, culture: &Culture, frames: usize) -> FrameStack {
    let rec = chip.record(culture, Seconds::ZERO, frames);
    let gain = rec.nominal_voltage_gain();
    FrameStack::new(
        rec.geometry().rows(),
        rec.geometry().cols(),
        rec.frames()
            .iter()
            .map(|f| f.samples().iter().map(|s| s / gain).collect())
            .collect(),
    )
    .detrended()
}

#[test]
fn spike_train_recovered_at_the_soma_pixel() {
    let mut chip = small_chip();
    // Regular 20 Hz train for 200 ms = 4 spikes, offset to land mid-frame.
    let spikes: Vec<Seconds> = (0..4)
        .map(|k| Seconds::from_milli(30.0 + 50.0 * k as f64))
        .collect();
    let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    culture.push(neuron_at(&chip, 8, 8, spikes.clone()));

    let frames = 400; // 200 ms at 2 kfps
    let stack = input_referred_stack(&mut chip, &culture, frames);
    let series = stack.pixel_series(8, 8);
    let detections = SpikeDetector::default().detect(&series);
    // Detections may align to the AP's broad repolarization phase, up to
    // ~2 ms (4 frames) after the upstroke.
    let truth: Vec<usize> = spikes
        .iter()
        .map(|s| (s.value() * 2000.0) as usize)
        .collect();
    let score = score_detections(&detections, &truth, 5);
    assert!(
        score.recall() >= 0.75,
        "recall = {} (detections {detections:?})",
        score.recall()
    );
    assert!(
        score.precision() >= 0.5,
        "precision = {}",
        score.precision()
    );
}

#[test]
fn two_neurons_resolved_at_distinct_pixels() {
    let mut chip = small_chip();
    let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    culture.push(neuron_at(&chip, 3, 3, vec![Seconds::from_milli(30.0)]));
    culture.push(neuron_at(&chip, 12, 12, vec![Seconds::from_milli(80.0)]));

    let stack = input_referred_stack(&mut chip, &culture, 240);
    let a = stack.pixel_series(3, 3);
    let b = stack.pixel_series(12, 12);
    // Each neuron's transient peaks in its own pixel at its own time.
    let peak_frame = |s: &[f64]| -> usize {
        s.iter()
            .enumerate()
            .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
            .unwrap()
            .0
    };
    let fa = peak_frame(&a);
    let fb = peak_frame(&b);
    assert!((55..75).contains(&fa), "neuron A peak frame {fa}");
    assert!((155..175).contains(&fb), "neuron B peak frame {fb}");
}

#[test]
fn calibration_ablation_buries_spikes() {
    let mut chip = small_chip();
    let spikes: Vec<Seconds> = (0..3)
        .map(|k| Seconds::from_milli(30.0 + 50.0 * k as f64))
        .collect();
    let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    culture.push(neuron_at(&chip, 8, 8, spikes));

    // Uncalibrated recording: raw offsets at the output dwarf the signal.
    let rec_uncal = chip.record_uncalibrated(&culture, Seconds::ZERO, 100);
    let frame = &rec_uncal.frames()[0];
    let mean = frame.samples().iter().sum::<f64>() / frame.samples().len() as f64;
    let spread = (frame
        .samples()
        .iter()
        .map(|x| (x - mean).powi(2))
        .sum::<f64>()
        / frame.samples().len() as f64)
        .sqrt();
    // Signal at the output for a ~1 mV cleft transient:
    let signal_scale = rec_uncal.nominal_voltage_gain() * 1e-3;
    assert!(
        spread > 4.0 * signal_scale,
        "uncalibrated offset spread {spread} must bury the {signal_scale} signal"
    );
}

#[test]
fn recording_is_deterministic_per_seed() {
    let make = || {
        let mut chip = small_chip();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = cmos_biosensor_arrays::neuro::culture::CultureConfig {
            neuron_count: 3,
            ..Default::default()
        };
        let mut culture = Culture::random(&cfg, &mut rng);
        culture.generate_spikes(Seconds::from_milli(50.0), &mut rng);
        chip.record(&culture, Seconds::ZERO, 20)
    };
    let a = make();
    let b = make();
    assert_eq!(a.frames(), b.frames());
}

#[test]
fn rolling_shutter_orders_row_samples() {
    let chip = small_chip();
    let t = chip.timing();
    let t_first = t.sample_time(0, PixelAddress::new(0, 0));
    let t_last = t.sample_time(0, PixelAddress::new(15, 15));
    assert!(t_last > t_first);
    assert!(t_last.value() < t.frame_period.value());
}
