//! Error type for chip construction and operation.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or operating a chip model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChipError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A pixel address was outside the array.
    AddressOutOfRange {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// A serial bit stream could not be decoded.
    SerialDecode {
        /// What was wrong.
        reason: String,
    },
    /// An underlying circuit model rejected its parameters.
    Circuit(bsa_circuit::CircuitError),
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid chip configuration: {reason}"),
            Self::AddressOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "pixel ({row}, {col}) outside {rows}×{cols} array"
            ),
            Self::SerialDecode { reason } => write!(f, "serial decode failed: {reason}"),
            Self::Circuit(e) => write!(f, "circuit model error: {e}"),
        }
    }
}

impl Error for ChipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bsa_circuit::CircuitError> for ChipError {
    fn from(e: bsa_circuit::CircuitError) -> Self {
        Self::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ChipError::AddressOutOfRange {
            row: 10,
            col: 20,
            rows: 8,
            cols: 16,
        };
        assert_eq!(e.to_string(), "pixel (10, 20) outside 8×16 array");
        let e = ChipError::SerialDecode {
            reason: "bad sync".into(),
        };
        assert!(e.to_string().contains("bad sync"));
    }

    #[test]
    fn wraps_circuit_error_with_source() {
        let ce = bsa_circuit::CircuitError::NonFinite { name: "x" };
        let e = ChipError::from(ce);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ChipError>();
    }
}
