//! Sensor-array geometry and addressing shared by both chips.

use crate::error::ChipError;
use bsa_units::Meter;
use serde::{Deserialize, Serialize};

/// Address of one pixel in a sensor array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PixelAddress {
    /// Row index (0-based).
    pub row: usize,
    /// Column index (0-based).
    pub col: usize,
}

impl PixelAddress {
    /// Creates an address.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

impl std::fmt::Display for PixelAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// Rectangular array geometry: dimensions and pixel pitch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    rows: usize,
    cols: usize,
    pitch: Meter,
}

impl ArrayGeometry {
    /// The DNA chip's 16×8 sensor array (paper Fig. 4; 16 columns × 8 rows)
    /// at 250 µm site pitch.
    pub fn dna_16x8() -> Self {
        Self {
            rows: 8,
            cols: 16,
            pitch: Meter::from_micro(250.0),
        }
    }

    /// The neural chip's 128×128 array at 7.8 µm pitch within 1 mm × 1 mm
    /// (paper Section 3, ref [19]).
    pub fn neuro_128x128() -> Self {
        Self {
            rows: 128,
            cols: 128,
            pitch: Meter::from_micro(7.8),
        }
    }

    /// Creates a custom geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] if either dimension is zero or
    /// the pitch is non-positive.
    pub fn new(rows: usize, cols: usize, pitch: Meter) -> Result<Self, ChipError> {
        if rows == 0 || cols == 0 {
            return Err(ChipError::InvalidConfig {
                reason: format!("array dimensions must be nonzero, got {rows}×{cols}"),
            });
        }
        if pitch.value() <= 0.0 || !pitch.is_finite() {
            return Err(ChipError::InvalidConfig {
                reason: format!("pitch must be positive, got {pitch}"),
            });
        }
        Ok(Self { rows, cols, pitch })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pixel pitch.
    pub fn pitch(&self) -> Meter {
        self.pitch
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` for a degenerate zero-pixel array (cannot be constructed via
    /// [`ArrayGeometry::new`], provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Array width (cols × pitch).
    pub fn width(&self) -> Meter {
        self.pitch * self.cols as f64
    }

    /// Array height (rows × pitch).
    pub fn height(&self) -> Meter {
        self.pitch * self.rows as f64
    }

    /// Flat index of an address (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] if the address is outside
    /// the array.
    pub fn index_of(&self, addr: PixelAddress) -> Result<usize, ChipError> {
        if addr.row >= self.rows || addr.col >= self.cols {
            return Err(ChipError::AddressOutOfRange {
                row: addr.row,
                col: addr.col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(addr.row * self.cols + addr.col)
    }

    /// Address of a flat index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn address_of(&self, index: usize) -> PixelAddress {
        assert!(index < self.len(), "index {index} out of range");
        PixelAddress::new(index / self.cols, index % self.cols)
    }

    /// Physical center position `(x, y)` of a pixel, with pixel (0, 0)
    /// centered at half a pitch from the origin.
    pub fn position_of(&self, addr: PixelAddress) -> (Meter, Meter) {
        (
            self.pitch * (addr.col as f64 + 0.5),
            self.pitch * (addr.row as f64 + 0.5),
        )
    }

    /// Iterator over all addresses in row-major scan order.
    pub fn iter(&self) -> impl Iterator<Item = PixelAddress> + '_ {
        let cols = self.cols;
        (0..self.len()).map(move |i| PixelAddress::new(i / cols, i % cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let dna = ArrayGeometry::dna_16x8();
        assert_eq!(dna.len(), 128);
        let neuro = ArrayGeometry::neuro_128x128();
        assert_eq!(neuro.len(), 16384);
        // 128 × 7.8 µm ≈ 1 mm.
        assert!((neuro.width().as_milli() - 0.9984).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(ArrayGeometry::new(0, 4, Meter::from_micro(1.0)).is_err());
        assert!(ArrayGeometry::new(4, 0, Meter::from_micro(1.0)).is_err());
        assert!(ArrayGeometry::new(4, 4, Meter::ZERO).is_err());
    }

    #[test]
    fn index_round_trip() {
        let g = ArrayGeometry::dna_16x8();
        for i in 0..g.len() {
            let addr = g.address_of(i);
            assert_eq!(g.index_of(addr).unwrap(), i);
        }
    }

    #[test]
    fn index_rejects_out_of_range() {
        let g = ArrayGeometry::dna_16x8();
        assert!(g.index_of(PixelAddress::new(8, 0)).is_err());
        assert!(g.index_of(PixelAddress::new(0, 16)).is_err());
        assert!(g.index_of(PixelAddress::new(7, 15)).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_of_rejects_out_of_range() {
        ArrayGeometry::dna_16x8().address_of(128);
    }

    #[test]
    fn scan_order_is_row_major() {
        let g = ArrayGeometry::new(2, 3, Meter::from_micro(1.0)).unwrap();
        let order: Vec<(usize, usize)> = g.iter().map(|a| (a.row, a.col)).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn positions_are_cell_centers() {
        let g = ArrayGeometry::neuro_128x128();
        let (x, y) = g.position_of(PixelAddress::new(0, 0));
        assert!((x.as_micro() - 3.9).abs() < 1e-9);
        assert!((y.as_micro() - 3.9).abs() < 1e-9);
        let (x, _) = g.position_of(PixelAddress::new(0, 127));
        assert!((x.as_micro() - (127.5 * 7.8)).abs() < 1e-9);
    }

    #[test]
    fn display_address() {
        assert_eq!(PixelAddress::new(3, 4).to_string(), "(3, 4)");
    }
}
