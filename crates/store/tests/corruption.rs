//! Corruption soundness for segment files, mirroring the wire-level
//! suite in `crates/link/tests/roundtrip.rs`: every single-byte
//! corruption, every truncation and arbitrary garbage must surface as a
//! typed [`StoreError`] — never a panic, and never a silently wrong
//! frame. This is the on-disk analogue of the CRC-8 contract the chips
//! already enforce on their serial words.

#![allow(clippy::unwrap_used)] // tests unwrap idiomatically

use bsa_link::ChipKind;
use bsa_link::PixelCount;
use bsa_store::{
    encode_dna_reading, encode_neuro_frame, fnv1a64, frame_payload_len, Recorder, SegmentMeta,
    SegmentReader, StoreError,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("bsa-store-cx-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Builds a small but fully featured segment (multi-frame, multi-epoch)
/// and returns its raw bytes plus how many frames it holds.
fn build_segment(kind: ChipKind) -> (Vec<u8>, u64) {
    let root = temp_root("build");
    let (rows, cols) = (2u16, 3u16);
    let spec = format!("spec {{ kind: {kind:?}, rows: {rows}, cols: {cols} }}");
    let meta = SegmentMeta {
        chip: 7,
        kind,
        rows,
        cols,
        config_hash: fnv1a64(spec.as_bytes()),
        spec,
    };
    let payload_len = frame_payload_len(kind, rows, cols);
    let mut rec = Recorder::create(&root, "probe", &meta, payload_len, 16).unwrap();
    let frames = 4u64;
    for f in 0..frames {
        let payload = match kind {
            ChipKind::Neuro => {
                let samples: Vec<f64> = (0..usize::from(rows) * usize::from(cols))
                    .map(|i| f64::from_bits(0x3FF0_0000_0000_0000 ^ (f * 131 + i as u64)))
                    .collect();
                encode_neuro_frame(&samples)
            }
            ChipKind::Dna => encode_dna_reading(&PixelCount {
                row: f as u16,
                col: (f * 2) as u16,
                count: f * 1009 + 1,
            }),
        };
        rec.offer((f / 2) as u32, payload).unwrap();
    }
    let summary = rec.finish().unwrap();
    assert_eq!(summary.frames_written, frames);
    let bytes = std::fs::read(root.join("probe.seg")).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    (bytes, frames)
}

/// Opens the segment and reads every frame; first typed error wins.
fn read_all(path: &Path) -> Result<Vec<(u64, u32, Vec<u8>)>, StoreError> {
    let mut reader = SegmentReader::open(path)?;
    let mut out = Vec::new();
    for i in 0..reader.frames() {
        let frame = reader.frame(i)?;
        out.push((frame.index, frame.epoch, frame.payload.to_vec()));
    }
    Ok(out)
}

fn assert_corruption_detected(kind: ChipKind) {
    let (good, frames) = build_segment(kind);
    let root = temp_root("flip");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join("corrupt.seg");

    // Sanity: the pristine image reads back all frames.
    std::fs::write(&path, &good).unwrap();
    assert_eq!(read_all(&path).unwrap().len() as u64, frames);

    // Exhaustive single-byte corruption: low bit, high bit, full byte.
    // Every file byte is covered by a CRC-8 trailer or pinned by a
    // structural equation, so each flip must yield a typed error.
    let stride = if cfg!(miri) { 13 } else { 1 };
    for pos in (0..good.len()).step_by(stride) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = good.clone();
            bad[pos] ^= mask;
            std::fs::write(&path, &bad).unwrap();
            let outcome = read_all(&path);
            assert!(
                outcome.is_err(),
                "{kind:?}: flip mask {mask:#04x} at byte {pos}/{} went undetected",
                good.len()
            );
        }
    }

    // Truncation at every prefix length is detected, including torn
    // in-progress recordings (header only, no footer).
    for len in (0..good.len()).step_by(stride) {
        std::fs::write(&path, &good[..len]).unwrap();
        assert!(
            read_all(&path).is_err(),
            "{kind:?}: truncation to {len}/{} bytes went undetected",
            good.len()
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn neuro_single_byte_corruption_always_fails_typed() {
    assert_corruption_detected(ChipKind::Neuro);
}

#[test]
fn dna_single_byte_corruption_always_fails_typed() {
    assert_corruption_detected(ChipKind::Dna);
}

#[test]
fn error_taxonomy_is_specific() {
    let (good, _) = build_segment(ChipKind::Neuro);
    let root = temp_root("taxonomy");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join("t.seg");

    // Header magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        read_all(&path),
        Err(StoreError::BadMagic { .. } | StoreError::BadCrc { .. })
    ));

    // Footer magic (last four bytes).
    let mut bad = good.clone();
    let n = bad.len();
    bad[n - 1] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(read_all(&path), Err(StoreError::BadMagic { .. })));

    // Empty file.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(read_all(&path), Err(StoreError::Truncated { .. })));

    let _ = std::fs::remove_dir_all(&root);
}

/// A footer that declares an absurd frame count or index offset must be
/// rejected with a typed size error *before* the reader sizes any buffer
/// from it — the declared values here imply multi-exabyte allocations,
/// so reaching `vec![0; …]` would abort the process instead of erroring.
#[test]
fn oversized_declared_footer_fields_rejected_before_allocation() {
    let (good, _) = build_segment(ChipKind::Neuro);
    let root = temp_root("oversize");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join("o.seg");
    let n = good.len();
    // Footer tail layout: frame_count u64 | index_off u64 | epochs u32 |
    // crc u8 | magic [u8;4]  (FOOTER_TAIL_LEN = 25 bytes).
    let count_at = n - 25;
    let off_at = n - 17;

    // Declared frame count far beyond what the file could hold.
    let mut bad = good.clone();
    bad[count_at..count_at + 8].copy_from_slice(&(u64::MAX / 16).to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        read_all(&path),
        Err(StoreError::Truncated {
            what: "footer frame count",
            ..
        })
    ));

    // Declared index offset past the end of the file.
    let mut bad = good.clone();
    bad[off_at..off_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        read_all(&path),
        Err(StoreError::Truncated {
            what: "footer index offset",
            ..
        })
    ));

    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 64 },
        .. ProptestConfig::default()
    })]

    /// Arbitrary garbage never panics the reader and never yields frames.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let root = temp_root("fuzz");
        std::fs::create_dir_all(&root).unwrap();
        let path = root.join("junk.seg");
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(read_all(&path).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A valid segment with a random byte XORed by a random non-zero
    /// mask is always rejected typed.
    #[test]
    fn random_flips_are_rejected(pos_seed in any::<u64>(), mask in 1u8..=255) {
        let (good, _) = build_segment(ChipKind::Neuro);
        let pos = (pos_seed % good.len() as u64) as usize;
        let mut bad = good;
        bad[pos] ^= mask;
        let root = temp_root("pflip");
        std::fs::create_dir_all(&root).unwrap();
        let path = root.join("p.seg");
        std::fs::write(&path, &bad).unwrap();
        prop_assert!(read_all(&path).is_err());
        let _ = std::fs::remove_dir_all(&root);
    }
}
