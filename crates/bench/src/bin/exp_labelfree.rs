//! Extension experiment E-X1: labelled redox-cycling vs the label-free
//! alternatives (paper §2: "Alternative label-free principles are under
//! development. They focus on the effect of impedance or mass changes at
//! the sensors' surfaces after hybridization [7–11]").
//!
//! Compares detection limits of the three principles on the same
//! hybridized surface and shows why the chip generation the paper
//! presents uses the labelled redox-cycling route.

use bsa_bench::{banner, eng, sig, Table};
use bsa_electrochem::impedance::ImpedanceSensor;
use bsa_electrochem::mass::FbarSensor;
use bsa_electrochem::redox::RedoxCyclingModel;
use bsa_units::Hertz;

fn main() {
    banner(
        "E-X1",
        "§2 label-free discussion (refs [7–11])",
        "impedance and mass detection are label-free alternatives to redox cycling",
    );

    let redox = RedoxCyclingModel::default();
    let imp = ImpedanceSensor::default();
    let fbar = FbarSensor::default();

    // (a) Signal vs coverage for the three principles.
    let mut t = Table::new(
        "Signal vs duplex coverage θ",
        &["θ", "redox current", "impedance ΔC/C", "FBAR Δf"],
    );
    for theta in [0.0001, 0.001, 0.01, 0.1, 0.5, 1.0] {
        t.add_row(vec![
            sig(theta, 2),
            eng(redox.sensor_current(theta).value(), "A"),
            format!("{:.3} %", imp.relative_signal(theta) * 100.0),
            eng(fbar.frequency_shift(theta).value(), "Hz"),
        ]);
    }
    t.print();
    println!();

    // (b) Detection limits.
    // Redox: the coverage whose faradaic current is 3× the pA-scale
    // background floor.
    let redox_limit = {
        let floor = redox.sensor_current(0.0).value();
        let mut lo: f64 = 1e-8;
        let mut hi: f64 = 1.0;
        for _ in 0..80 {
            let mid = (lo * hi).sqrt();
            if redox.sensor_current(mid).value() > 3.0 * floor {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (lo * hi).sqrt()
    };
    let mut t = Table::new(
        "Minimum detectable coverage (SNR = 3)",
        &["principle", "θ_min", "needs label?"],
    );
    t.add_row(vec![
        "redox cycling (this chip)".into(),
        format!("{redox_limit:.1e}"),
        "yes (enzyme)".into(),
    ]);
    t.add_row(vec![
        "interfacial impedance".into(),
        format!("{:.1e}", imp.minimum_detectable_coverage()),
        "no".into(),
    ]);
    t.add_row(vec![
        "FBAR mass shift".into(),
        format!("{:.1e}", fbar.minimum_detectable_coverage()),
        "no".into(),
    ]);
    t.print();
    println!();
    println!(
        "Redox cycling resolves ~{:.0e} coverage — orders below the label-free",
        redox_limit
    );
    println!("routes — at the cost of the enzyme label; the label-free principles trade");
    println!("sensitivity for a simpler assay, matching the paper's \"under development\"");
    println!("framing.");
    println!();

    // (c) Impedance spectra before/after hybridization (the measurement a
    // label-free chip generation would digitize).
    let mut t = Table::new(
        "Interfacial impedance |Z| before/after full hybridization",
        &["frequency", "|Z| bare", "|Z| hybridized", "change"],
    );
    for f in [10.0, 100.0, 1e3, 1e4, 1e5] {
        let z0 = imp.impedance_at(Hertz::new(f), 0.0);
        let z1 = imp.impedance_at(Hertz::new(f), 1.0);
        t.add_row(vec![
            eng(f, "Hz"),
            eng(z0.magnitude, "Ω"),
            eng(z1.magnitude, "Ω"),
            format!("{:+.2} %", (z1.magnitude / z0.magnitude - 1.0) * 100.0),
        ]);
    }
    t.print();
}
