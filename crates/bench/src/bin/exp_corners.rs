//! Extension experiment E-X2: process corners and temperature.
//!
//! The paper's chips must work across fab corners and operating
//! temperature; this experiment sweeps both and shows that (a) the
//! bandgap-referenced periphery and (b) the auto-calibration make the
//! DNA chip's current readout corner- and temperature-insensitive, while
//! an uncalibrated readout shifts visibly.

use bsa_bench::{banner, eng, pct, Table};
use bsa_circuit::mismatch::ProcessCorner;
use bsa_circuit::mosfet::{Mosfet, MosfetParams};
use bsa_circuit::reference::BandgapReference;
use bsa_core::dna_chip::{DnaPixel, DnaPixelConfig, PixelVariation};
use bsa_units::{Ampere, Kelvin, Seconds, Volt};

fn main() {
    banner(
        "E-X2",
        "§2 periphery (bandgap/current references, auto-calibration)",
        "readout must be corner- and temperature-insensitive",
    );

    // (a) Raw device current across corners at fixed bias — what the
    // periphery has to fight.
    let mut t = Table::new(
        "Sensor-FET current at fixed bias across process corners",
        &["corner", "I_D (V_G = 1.2 V)", "vs TT"],
    );
    let i_tt = Mosfet::new(MosfetParams::n05um(10.0, 2.0)).drain_current(
        Volt::new(1.2),
        Volt::ZERO,
        Volt::new(2.5),
    );
    for corner in ProcessCorner::ALL {
        let params = corner.apply(MosfetParams::n05um(10.0, 2.0));
        let i = Mosfet::new(params).drain_current(Volt::new(1.2), Volt::ZERO, Volt::new(2.5));
        t.add_row(vec![
            format!("{corner:?}"),
            eng(i.value(), "A"),
            format!("{:+.1} %", (i.value() / i_tt.value() - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!();

    // (b) Bandgap over temperature: the reference the DACs divide from.
    let bg = BandgapReference::typical_5v();
    let mut t = Table::new(
        "Bandgap reference over temperature (5 V supply)",
        &["temperature", "V_ref", "vs 300 K"],
    );
    let v300 = bg.output(Kelvin::new(300.0), Volt::new(5.0));
    for temp in [273.0, 300.0, 310.0, 330.0, 350.0] {
        let v = bg.output(Kelvin::new(temp), Volt::new(5.0));
        t.add_row(vec![
            eng(temp, "K"),
            format!("{v}"),
            eng((v - v300).value(), "V"),
        ]);
    }
    t.print();
    println!(
        "Box tempco 273–350 K: {:.1} ppm/K.",
        bg.tempco_ppm_per_k(Kelvin::new(273.0), Kelvin::new(350.0), Volt::new(5.0))
    );
    println!();

    // (c) Converter gain error across corners, uncalibrated vs calibrated.
    // Corners shift C_int (oxide thickness) and the comparator offset; we
    // model a corner as a systematic pixel variation.
    let mut t = Table::new(
        "DNA-pixel current recovery across corners (1 nA applied)",
        &["corner", "uncalibrated error", "calibrated error"],
    );
    let i = Ampere::from_nano(1.0);
    let frame = Seconds::new(10.0);
    for (name, c_err, v_off_mv) in [
        ("TT", 0.0, 0.0),
        ("FF (thin ox: +3 % C, −15 mV)", 0.03, -15.0),
        ("SS (thick ox: −3 % C, +15 mV)", -0.03, 15.0),
    ] {
        let var = PixelVariation {
            c_int_rel_err: c_err,
            comparator_offset: Volt::from_milli(v_off_mv),
            delay_rel_err: 0.0,
        };
        let mut p = DnaPixel::with_variation(DnaPixelConfig::default(), var);
        let count = p.convert_ideal(i, frame);
        let est = p.estimate_current(count, frame);
        let uncal = (est.value() - i.value()).abs() / i.value();
        // Calibrate against the on-chip 10 nA reference.
        let i_ref = Ampere::from_nano(10.0);
        let ref_count = p.convert_ideal(i_ref, frame);
        let k = i_ref.value() / p.estimate_current(ref_count, frame).value();
        p.set_gain_correction(k);
        let est2 = p.estimate_current(count, frame);
        let cal = (est2.value() - i.value()).abs() / i.value();
        t.add_row(vec![name.to_string(), pct(uncal), pct(cal)]);
    }
    t.print();
    println!();
    println!("Auto-calibration collapses the corner-induced conversion-gain shift to the");
    println!("quantization floor — the reason the periphery carries calibration circuits.");
}
