//! Experiment E-F3: the in-pixel sawtooth current-to-frequency converter
//! (paper Fig. 3).
//!
//! Reproduces (a) the sawtooth transient at the integration node, (b) the
//! frequency-vs-current transfer over the full 1 pA … 100 nA range, and
//! (c) the accuracy of off-chip current recovery from the counted pulses.

use bsa_bench::{banner, eng, Table};
use bsa_core::dna_chip::{DnaPixel, DnaPixelConfig};
use bsa_units::sweep::decades;
use bsa_units::{Ampere, Seconds};

fn main() {
    banner(
        "E-F3",
        "Fig. 3 (sawtooth current-to-frequency conversion)",
        "measured frequency approximately proportional to sensor current, 1 pA – 100 nA",
    );

    let config = DnaPixelConfig::default();
    println!(
        "Converter design: C_int = {}, ΔV = {}, dead time = {}",
        config.c_int,
        config.delta_v,
        (config.comparator_delay + config.reset_width)
    );
    println!();

    // (a) Sawtooth transient for three representative currents.
    let pixel = DnaPixel::nominal(config.clone());
    let mut saw = Table::new(
        "Fig. 3 timing diagram: sawtooth ramps in a 100 µs window",
        &["sensor current", "ramps in window", "ramp period"],
    );
    for i_na in [10.0, 30.0, 100.0] {
        let i = Ampere::from_nano(i_na);
        let w = pixel
            .transient(i, Seconds::from_micro(100.0), Seconds::from_nano(10.0))
            .expect("nominal pixel transient");
        let mid = pixel.config().v_start.value() + 0.5 * pixel.config().delta_v.value();
        let ramps = w.rising_crossings(mid);
        saw.add_row(vec![
            eng(i.value(), "A"),
            ramps.to_string(),
            eng(pixel.period(i).value(), "s"),
        ]);
    }
    saw.print();
    println!();

    // (b) + (c) Transfer curve over five decades.
    let mut pixel = DnaPixel::nominal(config);
    let mut t = Table::new(
        "Transfer: frequency and recovered current vs sensor current",
        &[
            "I_sensor",
            "f ideal (I/Q)",
            "f actual",
            "linearity dev",
            "count (10 s)",
            "I recovered",
            "rel err",
        ],
    );
    let q = 100e-15; // C_int·ΔV
    let frame = Seconds::new(10.0);
    let mut worst_mid_dev: f64 = 0.0;
    for i_val in decades(1e-12, 100e-9, 5) {
        let i = Ampere::new(i_val);
        let f_ideal = i_val / q;
        let f_actual = pixel.frequency(i).value();
        let dev = (f_actual - f_ideal) / f_ideal;
        if (1e-11..1e-8).contains(&i_val) {
            worst_mid_dev = worst_mid_dev.max(dev.abs());
        }
        let count = pixel.convert_ideal(i, frame);
        let est = pixel.estimate_current(count, frame);
        let rel = (est.value() - i_val).abs() / i_val;
        t.add_row(vec![
            eng(i_val, "A"),
            eng(f_ideal, "Hz"),
            eng(f_actual, "Hz"),
            format!("{:.2} %", dev * 100.0),
            count.to_string(),
            eng(est.value(), "A"),
            format!("{:.2} %", rel * 100.0),
        ]);
    }
    t.print();
    println!();
    println!(
        "Shape check: proportional over the mid decades (worst deviation {:.3} %),",
        worst_mid_dev * 100.0
    );
    println!("dead-time compression appears only at the top of the range — as in the paper.");
}
