// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Electrochemistry substrate for the DNA-microarray chip.
//!
//! Section 2 of Thewes et al. (DATE 2005) describes the chip-side of an
//! electrochemical DNA assay; this crate provides the solution-side physics
//! that the paper's authors had on a lab bench:
//!
//! * [`sequence`] — DNA sequences, complementarity, GC content;
//! * [`hybridization`] — duplex stability and Langmuir binding kinetics,
//!   including the match/mismatch contrast of paper Fig. 2 d)–g);
//! * [`assay`] — the full protocol: probe immobilization → analyte
//!   application/hybridization → washing (Fig. 2 phases a)–c));
//! * [`enzyme`] — enzyme-label turnover producing the electrochemically
//!   active compound measured by the chip;
//! * [`electrode`] — interdigitated gold sensor-electrode geometry;
//! * [`redox`] — redox-cycling current generation ("currents between 1 pA
//!   and 100 nA per sensor", refs [12, 13] of the paper), plus the
//!   single-electrode baseline it is compared against;
//! * [`redundancy`] — replicated-spot layouts and majority voting, the
//!   assay-level defense against dead or out-of-family sensor sites;
//! * [`impedance`] / [`mass`] — the label-free alternatives the paper
//!   lists as "under development" (refs [7–11]): interfacial-impedance and
//!   FBAR mass-shift detection.
//!
//! # Examples
//!
//! End-to-end: a matching probe/target pair produces orders of magnitude
//! more current than a 3-base mismatch:
//!
//! ```
//! use bsa_electrochem::assay::{AssayConditions, SpottedSite};
//! use bsa_electrochem::sequence::DnaSequence;
//! use bsa_units::Molar;
//!
//! let probe: DnaSequence = "ACGTACGTACGTACGTACGT".parse()?;
//! let target = probe.reverse_complement();
//!
//! let cond = AssayConditions::default();
//! let site = SpottedSite::new(probe);
//! let result = site.run(&target, Molar::from_nano(100.0), &cond);
//! assert!(result.final_coverage > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assay;
pub mod electrode;
pub mod enzyme;
pub mod hybridization;
pub mod impedance;
pub mod mass;
pub mod panel;
pub mod redox;
pub mod redundancy;
pub mod sequence;
