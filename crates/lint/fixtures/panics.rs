//! Seeded panic-freedom violations (lint fixture — lexed, never compiled).
//! tilde-comment markers name the expected violation on that line.

pub fn config_or_die(raw: &str) -> Config {
    let parsed = raw.parse().unwrap(); //~ panic.unwrap
    validate(parsed).expect("config must be valid") //~ panic.expect
}

pub fn pick(values: &[f64], idx: usize) -> f64 {
    values[idx] //~ panic.indexing
}

pub fn first_window(samples: &[f64]) -> &[f64] {
    &samples[..WINDOW] //~ panic.indexing
}

pub fn midpoint_pair(m: &Matrix) -> f64 {
    m.rows[0][1] //~ panic.indexing //~ panic.indexing
}

pub fn unsupported(mode: Mode) -> f64 {
    match mode {
        Mode::Linear => 1.0,
        Mode::Log => panic!("log mode is not wired up"), //~ panic.macro
        Mode::Auto => unreachable!(), //~ panic.macro
    }
}

pub fn later() -> f64 {
    todo!() //~ panic.macro
}

pub fn full_range_and_totals_are_fine(samples: &[f64]) -> f64 {
    let all = &samples[..];
    let head = samples.get(0).copied().unwrap_or(0.0);
    let arr = [head; 4];
    assert!(!samples.is_empty(), "caller contract");
    all.iter().sum::<f64>() + arr.iter().sum::<f64>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let x: Option<f64> = Some(1.0);
        let v = [1.0, 2.0];
        assert_eq!(x.unwrap(), v[0]);
        if false {
            panic!("fine in tests");
        }
    }
}
