#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Criterion bench for experiment E-F6c (paper §3): full-array frame
//! recording at 2 kframes/s, on sub-arrays and the full 128×128 chip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_core::array::ArrayGeometry;
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Meter, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn culture(n: usize) -> Culture {
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = CultureConfig {
        neuron_count: n,
        mean_rate_hz: 20.0,
        ..CultureConfig::default()
    };
    let mut c = Culture::random(&cfg, &mut rng);
    c.generate_spikes(Seconds::from_milli(100.0), &mut rng);
    c
}

fn bench_subarray_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6c_record");
    group.sample_size(10);
    let cult = culture(5);
    for (label, rows) in [("16x16", 16usize), ("32x32", 32)] {
        group.bench_with_input(
            BenchmarkId::new("record_10_frames", label),
            &rows,
            |b, &rows| {
                let cfg = NeuroChipConfig {
                    geometry: ArrayGeometry::new(rows, rows, Meter::from_micro(7.8)).unwrap(),
                    channels: 4,
                    ..NeuroChipConfig::default()
                };
                let mut chip = NeuroChip::new(cfg).unwrap();
                b.iter(|| black_box(chip.record(&cult, Seconds::ZERO, 10).len()));
            },
        );
    }
    group.finish();
}

fn bench_full_array_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6c_full_array");
    group.sample_size(10);
    let cult = culture(12);
    group.bench_function("record_one_128x128_frame", |b| {
        let mut chip = NeuroChip::new(NeuroChipConfig::default()).unwrap();
        b.iter(|| black_box(chip.record(&cult, Seconds::ZERO, 1).len()));
    });
    group.finish();
}

fn bench_offset_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6c_offset_map");
    group.sample_size(10);
    group.bench_function("offset_map_128x128", |b| {
        let mut chip = NeuroChip::new(NeuroChipConfig::default()).unwrap();
        chip.calibrate(Seconds::ZERO);
        b.iter(|| black_box(chip.offset_map(Seconds::ZERO).len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_subarray_frames,
    bench_full_array_frame,
    bench_offset_map
);
criterion_main!(benches);
