#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Cross-model consistency: the three point-neuron models and the
//! junction agree on the qualitative physiology the chip relies on.

use bsa_neuro::hh::HodgkinHuxley;
use bsa_neuro::izhikevich::{Izhikevich, IzhikevichParams};
use bsa_neuro::junction::{ApTemplate, CleftJunction};
use bsa_neuro::lif::{Lif, LifParams};
use bsa_units::{Meter, Seconds};

/// Spikes per second of an HH neuron under constant drive.
fn hh_rate(drive: f64) -> f64 {
    let mut n = HodgkinHuxley::new();
    let dt = Seconds::new(25e-6);
    // Settle.
    for _ in 0..4000 {
        n.step(0.0, dt);
    }
    let steps = 40_000; // 1 s
    let spikes = (0..steps).filter(|_| n.step(drive, dt).spike_onset).count();
    spikes as f64
}

#[test]
fn all_models_show_threshold_behaviour() {
    // Sub- vs supra-threshold drive separates quiet from firing in every
    // model.
    assert_eq!(hh_rate(1.0), 0.0);
    assert!(hh_rate(12.0) > 10.0);

    let mut lif = Lif::new(LifParams::default());
    let quiet = (0..50_000)
        .filter(|_| lif.step(0.05, Seconds::new(1e-4)))
        .count();
    assert_eq!(quiet, 0);
    let mut lif = Lif::new(LifParams::default());
    let firing = (0..50_000)
        .filter(|_| lif.step(0.5, Seconds::new(1e-4)))
        .count();
    assert!(firing > 10);

    let mut izh = Izhikevich::new(IzhikevichParams::regular_spiking());
    assert!(izh
        .run(1.0, Seconds::new(0.5e-3), Seconds::new(1.0))
        .is_empty());
    let mut izh = Izhikevich::new(IzhikevichParams::regular_spiking());
    assert!(!izh
        .run(10.0, Seconds::new(0.5e-3), Seconds::new(1.0))
        .is_empty());
}

#[test]
fn all_models_rate_increases_with_drive() {
    assert!(hh_rate(20.0) > hh_rate(8.0));

    let lif = Lif::new(LifParams::default());
    assert!(lif.rate_for(0.5) > lif.rate_for(0.25));

    let r1 = Izhikevich::new(IzhikevichParams::regular_spiking())
        .run(6.0, Seconds::new(0.5e-3), Seconds::new(1.0))
        .len();
    let r2 = Izhikevich::new(IzhikevichParams::regular_spiking())
        .run(14.0, Seconds::new(0.5e-3), Seconds::new(1.0))
        .len();
    assert!(r2 > r1);
}

#[test]
fn junction_amplitude_scales_with_every_knob_the_right_way() {
    let dt = Seconds::new(10e-6);
    let amp = |h_nm: f64, r_um: f64, mu: f64| {
        let j = CleftJunction::new(Meter::from_nano(h_nm), Meter::from_micro(r_um), 0.7)
            .unwrap()
            .with_channel_density_ratio(mu);
        ApTemplate::from_hh(&j, dt).amplitude().value()
    };
    let nominal = amp(60.0, 10.0, 0.3);
    assert!(amp(30.0, 10.0, 0.3) > nominal, "tighter cleft → bigger");
    assert!(amp(60.0, 20.0, 0.3) > nominal, "bigger contact → bigger");
    assert!(
        amp(60.0, 10.0, 0.0) > nominal,
        "more channel asymmetry → bigger"
    );
    // µ = 1: uniform cell, no signal (the classic null result).
    assert!(
        amp(60.0, 10.0, 1.0) < nominal / 50.0,
        "uniform cell ≈ silent"
    );
}

#[test]
fn hh_spike_shape_drives_a_millisecond_junction_transient() {
    let j = CleftJunction::nominal();
    let t = ApTemplate::from_hh(&j, Seconds::new(10e-6));
    // The transient is over within the 8 ms template.
    assert!(t.duration().value() <= 8.1e-3);
    // Most of the energy sits within ±2 ms of the upstroke.
    let within: f64 = (-200..200)
        .map(|k| t.sample_at(Seconds::new(k as f64 * 1e-5)).value().powi(2))
        .sum();
    let total: f64 = t.samples().iter().map(|v| v.value().powi(2)).sum();
    assert!(
        within / total > 0.5,
        "energy concentration = {}",
        within / total
    );
}
