//! `bsa-ctl` — command-line client for a running `bsa-station`.
//!
//! ```text
//! bsa-ctl [--addr HOST:PORT | --local] stats
//! bsa-ctl [--addr HOST:PORT | --local] assay  [--seed N]
//! bsa-ctl [--addr HOST:PORT | --local] stream [--frames N] [--rows N] [--cols N]
//!                                              [--channels N] [--seed N]
//! bsa-ctl [--addr HOST:PORT | --local --store DIR] record [--name NAME] [--frames N] ...
//! bsa-ctl [--addr HOST:PORT | --local --store DIR] recordings
//! bsa-ctl [--addr HOST:PORT | --local --store DIR] replay [--name NAME] [--chunk N]
//! ```
//!
//! `--local` spins up an in-process station on a loopback port and runs
//! the command against it — a one-command end-to-end smoke test. With
//! `--store DIR` the local station persists recordings to `DIR`, so a
//! `record` in one invocation can be `replay`ed by the next.
//!
//! `record` starts a recording, streams neuro frames through it, and
//! stops it — exercising the full start/tee/stop path in one command.

use bsa_link::{CultureSpec, DnaChipSpec, NeuroChipSpec, TargetSpec};
use bsa_station::{Station, StationClient, StationConfig, StationHandle};
use bsa_units::Seconds;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: bsa-ctl [--addr HOST:PORT | --local] <stats | assay | stream | record | recordings | replay> [options]\n\
     \n\
     commands:\n\
     stats                      print station counters\n\
     assay  [--seed N]          run a small DNA assay end to end\n\
     stream [--frames N] [--rows N] [--cols N] [--channels N] [--seed N]\n\
     \x20                          record and stream neuro frames\n\
     record [--name NAME] [--frames N] [--rows N] [--cols N] [--channels N] [--seed N]\n\
     \x20                          start a store recording, stream through it, stop it\n\
     recordings                 list the station's stored recordings\n\
     replay [--name NAME] [--chunk N]\n\
     \x20                          replay a stored recording as a stream\n\
     \n\
     connection:\n\
     --addr HOST:PORT           connect to a running station (default 127.0.0.1:7801)\n\
     --local                    run against an in-process station\n\
     --store DIR                store directory for the --local station"
}

struct Options {
    addr: String,
    local: bool,
    store: Option<String>,
    command: String,
    name: String,
    chunk: u32,
    frames: u32,
    rows: u16,
    cols: u16,
    channels: u16,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7801".into(),
        local: false,
        store: None,
        command: String::new(),
        name: "recording".into(),
        chunk: 0,
        frames: 64,
        rows: 32,
        cols: 32,
        channels: 8,
        seed: 0x0EE5_1281,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value_for("--addr")?,
            "--local" => opts.local = true,
            "--store" => opts.store = Some(value_for("--store")?),
            "--name" => opts.name = value_for("--name")?,
            "--chunk" => opts.chunk = parse_num(&value_for("--chunk")?, "--chunk")?,
            "--frames" => opts.frames = parse_num(&value_for("--frames")?, "--frames")?,
            "--rows" => opts.rows = parse_num(&value_for("--rows")?, "--rows")?,
            "--cols" => opts.cols = parse_num(&value_for("--cols")?, "--cols")?,
            "--channels" => opts.channels = parse_num(&value_for("--channels")?, "--channels")?,
            "--seed" => opts.seed = parse_num(&value_for("--seed")?, "--seed")?,
            "--help" | "-h" => return Err(String::new()),
            cmd if !cmd.starts_with('-') && opts.command.is_empty() => {
                opts.command = cmd.to_string();
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if opts.command.is_empty() {
        return Err("missing command".into());
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse::<T>().map_err(|e| format!("{flag}: {e}"))
}

fn run(opts: &Options) -> Result<(), String> {
    // Keep the in-process station alive for the whole command.
    let local: Option<StationHandle> = if opts.local {
        let config = StationConfig {
            store_root: opts.store.as_ref().map(Into::into),
            ..StationConfig::default()
        };
        Some(Station::bind(config).map_err(|e| format!("local bind: {e}"))?)
    } else {
        None
    };
    let addr = local
        .as_ref()
        .map_or_else(|| opts.addr.clone(), |h| h.addr().to_string());
    let mut client =
        StationClient::connect(&addr, "bsa-ctl").map_err(|e| format!("connect {addr}: {e}"))?;

    match opts.command.as_str() {
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("sessions opened   {}", stats.sessions_opened);
            println!("sessions active   {}", stats.sessions_active);
            println!("chips attached    {}", stats.chips_attached);
            println!("requests          {}", stats.requests);
            println!("frames served     {}", stats.frames_served);
            println!("frames dropped    {}", stats.frames_dropped);
            println!("chunks sent       {}", stats.chunks_sent);
            println!("bytes sent        {}", stats.bytes_sent);
            println!("queue peak        {}", stats.queue_peak);
        }
        "assay" => {
            let attached = client
                .attach_dna(&DnaChipSpec {
                    rows: 0,
                    cols: 0,
                    seed: opts.seed,
                    frame_time_s: 0.0,
                })
                .map_err(|e| e.to_string())?;
            println!(
                "attached DNA chip {} ({}x{})",
                attached.chip, attached.rows, attached.cols
            );
            let cal = client.calibrate(attached.chip).map_err(|e| e.to_string())?;
            println!(
                "calibrated: {} healthy / {} out-of-family / {} dead",
                cal.healthy, cal.out_of_family, cal.dead
            );
            let probe = "ACGTACGTACGT";
            client
                .configure_assay(
                    attached.chip,
                    vec![probe.to_string()],
                    vec![TargetSpec {
                        sequence: probe.to_string(),
                        concentration_molar: 1e-9,
                    }],
                )
                .map_err(|e| e.to_string())?;
            let outcome = client
                .run_assay(attached.chip, true)
                .map_err(|e| e.to_string())?;
            let max = outcome.counts.iter().max().copied().unwrap_or(0);
            println!(
                "assay done: {} pixels, {} streamed readings, max count {}",
                outcome.counts.len(),
                outcome.streamed.len(),
                max
            );
        }
        "stream" => {
            let attached = client
                .attach_neuro(&NeuroChipSpec {
                    rows: opts.rows,
                    cols: opts.cols,
                    channels: opts.channels,
                    seed: opts.seed,
                    frame_rate_hz: 0.0,
                })
                .map_err(|e| e.to_string())?;
            println!(
                "attached neuro chip {} ({}x{})",
                attached.chip, attached.rows, attached.cols
            );
            let stream = client
                .stream_neuro(
                    attached.chip,
                    opts.frames,
                    0,
                    Seconds::new(0.0),
                    &CultureSpec {
                        seed: opts.seed,
                        neuron_count: 0,
                        spike_duration_s: opts.frames as f64 / 2000.0,
                    },
                )
                .map_err(|e| e.to_string())?;
            println!(
                "streamed {} frames in {} chunks ({} sent, {} dropped by backpressure)",
                stream.frames.len(),
                stream.chunks,
                stream.frames_sent,
                stream.frames_dropped
            );
        }
        "record" => {
            let attached = client
                .attach_neuro(&NeuroChipSpec {
                    rows: opts.rows,
                    cols: opts.cols,
                    channels: opts.channels,
                    seed: opts.seed,
                    frame_rate_hz: 0.0,
                })
                .map_err(|e| e.to_string())?;
            client
                .start_recording(attached.chip, &opts.name)
                .map_err(|e| e.to_string())?;
            println!(
                "recording {:?} started on neuro chip {} ({}x{})",
                opts.name, attached.chip, attached.rows, attached.cols
            );
            let stream = client
                .stream_neuro(
                    attached.chip,
                    opts.frames,
                    0,
                    Seconds::new(0.0),
                    &CultureSpec {
                        seed: opts.seed,
                        neuron_count: 0,
                        spike_duration_s: opts.frames as f64 / 2000.0,
                    },
                )
                .map_err(|e| e.to_string())?;
            let summary = client
                .stop_recording(attached.chip)
                .map_err(|e| e.to_string())?;
            println!(
                "recorded {} frames ({} streamed to client, {} dropped to disk, {} bytes)",
                summary.frames_written,
                stream.frames.len(),
                summary.frames_dropped,
                summary.bytes_written
            );
        }
        "recordings" => {
            let entries = client.recordings().map_err(|e| e.to_string())?;
            if entries.is_empty() {
                println!("no recordings");
            }
            for e in entries {
                println!(
                    "{}  {:?} {}x{}  {} frames  {} bytes  config {:#018x}",
                    e.name, e.kind, e.rows, e.cols, e.frames, e.bytes, e.config_hash
                );
            }
        }
        "replay" => {
            let replayed = client
                .replay(&opts.name, opts.chunk)
                .map_err(|e| e.to_string())?;
            println!(
                "replayed {:?}: {:?}, {} frames + {} readings in {} chunks ({} sent, {} dropped)",
                opts.name,
                replayed.kind,
                replayed.frames.len(),
                replayed.readings.len(),
                replayed.chunks,
                replayed.frames_sent,
                replayed.frames_dropped
            );
        }
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
