//! The complete DNA-microarray assay protocol.
//!
//! Paper Fig. 2 walks through the three phases each sensor site sees:
//! a)–c) probe immobilization, d)–e) analyte application and hybridization,
//! f)–g) washing. This module sequences those phases over a
//! [`SpottedSite`] and reports the resulting surface coverage, which
//! [`crate::redox`] converts into the sensor current the chip measures.

use crate::hybridization::HybridizationModel;
use crate::sequence::DnaSequence;
use bsa_units::{Kelvin, Molar, Seconds};
use serde::{Deserialize, Serialize};

/// Protocol parameters common to a whole chip run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssayConditions {
    /// Hybridization model (thermodynamics + kinetics).
    pub model: HybridizationModel,
    /// Hybridization temperature.
    pub temperature: Kelvin,
    /// Hybridization duration.
    pub hybridization_time: Seconds,
    /// Washing duration.
    pub wash_time: Seconds,
    /// Washing stringency (multiplies off-rates during the wash).
    pub wash_stringency: f64,
    /// Fraction of probes that survived immobilization in active
    /// orientation (immobilization yield).
    pub immobilization_yield: f64,
}

impl Default for AssayConditions {
    /// A standard overnight-style assay compressed to one hour of
    /// hybridization and a five-minute stringent wash at 35 °C — just below
    /// the perfect-match melting point, so stringency discriminates single
    /// mismatches.
    fn default() -> Self {
        Self {
            model: HybridizationModel::default(),
            temperature: Kelvin::new(308.0),
            hybridization_time: Seconds::new(3600.0),
            wash_time: Seconds::new(300.0),
            wash_stringency: 50.0,
            immobilization_yield: 0.85,
        }
    }
}

/// A single spotted sensor site carrying one probe species.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpottedSite {
    probe: DnaSequence,
}

impl SpottedSite {
    /// Creates a site spotted with `probe`.
    pub fn new(probe: DnaSequence) -> Self {
        Self { probe }
    }

    /// The immobilized probe sequence.
    pub fn probe(&self) -> &DnaSequence {
        &self.probe
    }

    /// Runs the full protocol against a target at concentration `c` and
    /// returns per-phase coverages.
    pub fn run(&self, target: &DnaSequence, c: Molar, cond: &AssayConditions) -> AssayResult {
        // Phase 1: immobilization — yield caps achievable coverage.
        let active = cond.immobilization_yield.clamp(0.0, 1.0);

        // Phase 2: hybridization from empty surface.
        let hybridized = cond.model.coverage_after(
            &self.probe,
            target,
            c,
            cond.temperature,
            0.0,
            cond.hybridization_time,
        ) * active;

        // Phase 3: stringent wash in pure buffer.
        let washed = cond.model.coverage_after_wash(
            &self.probe,
            target,
            cond.temperature,
            hybridized,
            cond.wash_time,
            cond.wash_stringency,
        );

        AssayResult {
            mismatches: self.probe.mismatches_with(target),
            coverage_after_hybridization: hybridized,
            final_coverage: washed,
        }
    }
}

/// Per-site outcome of an assay run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssayResult {
    /// Mismatch count between probe and target at the best alignment.
    pub mismatches: usize,
    /// Coverage θ right after hybridization (before the wash).
    pub coverage_after_hybridization: f64,
    /// Coverage θ after the washing step — what the readout sees.
    pub final_coverage: f64,
}

impl AssayResult {
    /// Fraction of hybridized material removed by the wash.
    pub fn wash_loss(&self) -> f64 {
        if self.coverage_after_hybridization == 0.0 {
            0.0
        } else {
            1.0 - self.final_coverage / self.coverage_after_hybridization
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (SpottedSite, DnaSequence, AssayConditions) {
        // Seed chosen to draw a representative mid-GC 20-mer: its perfect
        // match survives the stringent wash while mismatches do not.
        let mut rng = SmallRng::seed_from_u64(2);
        let probe = DnaSequence::random(20, &mut rng);
        let target = probe.reverse_complement();
        (SpottedSite::new(probe), target, AssayConditions::default())
    }

    #[test]
    fn perfect_match_survives_protocol() {
        let (site, target, cond) = setup();
        let r = site.run(&target, Molar::from_nano(100.0), &cond);
        assert_eq!(r.mismatches, 0);
        assert!(
            r.final_coverage > 0.5,
            "match coverage = {}",
            r.final_coverage
        );
    }

    #[test]
    fn mismatches_are_washed_away() {
        let (site, target, cond) = setup();
        let r3 = site.run(&target.with_mismatches(3), Molar::from_nano(100.0), &cond);
        assert!(
            r3.final_coverage < 1e-3,
            "3-mismatch coverage = {}",
            r3.final_coverage
        );
    }

    #[test]
    fn discrimination_ratio_exceeds_two_orders() {
        let (site, target, cond) = setup();
        let c = Molar::from_nano(100.0);
        let m0 = site.run(&target, c, &cond).final_coverage;
        let m2 = site
            .run(&target.with_mismatches(2), c, &cond)
            .final_coverage;
        assert!(
            m0 / m2.max(1e-30) > 100.0,
            "discrimination = {}",
            m0 / m2.max(1e-30)
        );
    }

    #[test]
    fn coverage_grows_with_concentration() {
        let (site, target, cond) = setup();
        let lo = site
            .run(&target, Molar::from_pico(10.0), &cond)
            .final_coverage;
        let hi = site
            .run(&target, Molar::from_micro(1.0), &cond)
            .final_coverage;
        assert!(hi > lo);
    }

    #[test]
    fn immobilization_yield_caps_coverage() {
        let (site, target, mut cond) = setup();
        cond.immobilization_yield = 0.5;
        let r = site.run(&target, Molar::from_micro(10.0), &cond);
        assert!(r.final_coverage <= 0.5 + 1e-12);
    }

    #[test]
    fn harsher_wash_removes_more() {
        let (site, target, mut cond) = setup();
        let c = Molar::from_nano(100.0);
        let t1 = target.with_mismatches(1);
        cond.wash_stringency = 10.0;
        let gentle = site.run(&t1, c, &cond).final_coverage;
        cond.wash_stringency = 500.0;
        let harsh = site.run(&t1, c, &cond).final_coverage;
        assert!(harsh < gentle);
    }

    #[test]
    fn wash_loss_metric() {
        let (site, target, cond) = setup();
        let r = site.run(&target.with_mismatches(2), Molar::from_nano(100.0), &cond);
        assert!(r.wash_loss() > 0.9, "wash loss = {}", r.wash_loss());
        let r0 = site.run(&target, Molar::from_nano(100.0), &cond);
        assert!(r0.wash_loss() < 0.2, "match wash loss = {}", r0.wash_loss());
    }

    #[test]
    fn zero_concentration_gives_zero_coverage() {
        let (site, target, cond) = setup();
        let r = site.run(&target, Molar::ZERO, &cond);
        assert_eq!(r.final_coverage, 0.0);
        assert_eq!(r.wash_loss(), 0.0);
    }
}
