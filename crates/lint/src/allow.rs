//! The checked-in violation allowlist (`lint.allow.toml`).
//!
//! Each entry grants a *per-file, per-rule budget* with a written
//! justification. The budget is exact, not an upper bound: if the actual
//! count exceeds `max` the check fails (a violation crept in), and if it
//! drops below `max` the check also fails with a "stale budget" message —
//! the allowlist must be tightened in the same PR that removes a
//! violation, so the file can only ever shrink.
//!
//! The parser handles exactly the subset of TOML this file uses
//! (`[[allow]]` tables with string/integer keys); the workspace vendors no
//! TOML crate and the format is deliberately kept trivial.

use crate::rules::{Violation, RULE_IDS};
use std::collections::BTreeMap;
use std::fmt;

/// One allowlist entry: a per-file, per-rule violation budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// Rule identifier from [`RULE_IDS`].
    pub rule: String,
    /// Exact number of violations granted.
    pub max: usize,
    /// Why these violations are acceptable (shown in reports).
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A parse or validation problem in the allowlist itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    /// 1-based line in `lint.allow.toml` (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AllowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the allowlist from TOML text.
    pub fn parse(text: &str) -> Result<Self, AllowError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(usize, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((lineno, PartialEntry::default()));
                continue;
            }
            if line.starts_with('[') {
                return Err(AllowError {
                    line: lineno,
                    message: format!("unexpected table `{line}`; only [[allow]] is supported"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(AllowError {
                    line: lineno,
                    message: "key outside an [[allow]] table".to_string(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "file" => partial.file = Some(parse_string(value, lineno)?),
                "rule" => partial.rule = Some(parse_string(value, lineno)?),
                "reason" => partial.reason = Some(parse_string(value, lineno)?),
                "max" => {
                    partial.max = Some(value.parse().map_err(|_| AllowError {
                        line: lineno,
                        message: format!("`max` must be a non-negative integer, got `{value}`"),
                    })?)
                }
                other => {
                    return Err(AllowError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected file/rule/max/reason)"),
                    })
                }
            }
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }

        // Validate rule ids and reject duplicate (file, rule) pairs, which
        // would make the budget ambiguous.
        let mut seen = BTreeMap::new();
        for e in &entries {
            if !RULE_IDS.contains(&e.rule.as_str()) {
                return Err(AllowError {
                    line: 0,
                    message: format!(
                        "unknown rule `{}` for `{}` (known: {})",
                        e.rule,
                        e.file,
                        RULE_IDS.join(", ")
                    ),
                });
            }
            if seen.insert((e.file.clone(), e.rule.clone()), ()).is_some() {
                return Err(AllowError {
                    line: 0,
                    message: format!("duplicate entry for ({}, {})", e.file, e.rule),
                });
            }
        }
        Ok(Self { entries })
    }

    /// Serializes back to the canonical TOML layout (used by `tighten`).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# Violation budgets for `cargo run -p bsa-lint -- check`.\n\
             # Budgets are exact: the check fails if a file exceeds OR undershoots\n\
             # its budget, so this file can only ever shrink. Never add entries to\n\
             # silence a new violation - fix the code instead.\n\
             #\n\
             # Total-budget trajectory: 158 at introduction, 156 after the semantic\n\
             # layer, 155 after the fast-path rework, 143 after the intraprocedural\n\
             # interval prover, 133 after the interprocedural function-summary\n\
             # prover and wire-taint pass.\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "\n[[allow]]\nfile = \"{}\"\nrule = \"{}\"\nmax = {}\nreason = \"{}\"\n",
                e.file, e.rule, e.max, e.reason
            ));
        }
        out
    }

    /// Total granted budget across all entries — the number CI compares
    /// against the baseline to assert the allowlist only shrank.
    pub fn total_budget(&self) -> usize {
        self.entries.iter().map(|e| e.max).sum()
    }

    /// Looks up the budget for a (file, rule) pair.
    pub fn budget_for(&self, file: &str, rule: &str) -> Option<&AllowEntry> {
        self.entries
            .iter()
            .find(|e| e.file == file && e.rule == rule)
    }
}

#[derive(Default)]
struct PartialEntry {
    file: Option<String>,
    rule: Option<String>,
    max: Option<usize>,
    reason: Option<String>,
}

impl PartialEntry {
    fn finish(self, line: usize) -> Result<AllowEntry, AllowError> {
        let missing = |what: &str| AllowError {
            line,
            message: format!("[[allow]] entry missing `{what}`"),
        };
        let entry = AllowEntry {
            file: self.file.ok_or_else(|| missing("file"))?,
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            max: self.max.ok_or_else(|| missing("max"))?,
            reason: self.reason.ok_or_else(|| missing("reason"))?,
        };
        if entry.max == 0 {
            return Err(AllowError {
                line,
                message: format!(
                    "({}, {}) has max = 0; delete the entry instead",
                    entry.file, entry.rule
                ),
            });
        }
        if entry.reason.trim().len() < 10 {
            return Err(AllowError {
                line,
                message: format!(
                    "({}, {}) needs a real justification, not `{}`",
                    entry.file, entry.rule, entry.reason
                ),
            });
        }
        Ok(entry)
    }
}

/// Strips a `#`-comment, respecting (the only) quoted-string context.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, AllowError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| AllowError {
            line,
            message: format!("expected a double-quoted string, got `{value}`"),
        })?;
    Ok(inner.replace("\\\"", "\""))
}

/// Outcome of reconciling violations against the allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reconciliation {
    /// Violations not covered by any budget, or in excess of one.
    pub unallowed: Vec<Violation>,
    /// Budgets larger than the actual count: `(entry, actual)`.
    pub stale: Vec<(AllowEntry, usize)>,
}

impl Reconciliation {
    /// `true` when the check should pass.
    pub fn clean(&self) -> bool {
        self.unallowed.is_empty() && self.stale.is_empty()
    }
}

/// Reconciles raw violations against the allowlist budgets.
pub fn reconcile(violations: &[Violation], allow: &Allowlist) -> Reconciliation {
    // Count per (file, rule).
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for v in violations {
        *counts.entry((v.file.as_str(), v.rule)).or_default() += 1;
    }

    let mut rec = Reconciliation::default();
    for v in violations {
        let count = counts[&(v.file.as_str(), v.rule)];
        match allow.budget_for(&v.file, v.rule) {
            Some(entry) if count <= entry.max => {}
            _ => rec.unallowed.push(v.clone()),
        }
    }
    for entry in &allow.entries {
        let actual = counts
            .get(&(entry.file.as_str(), entry.rule.as_str()))
            .copied()
            .unwrap_or(0);
        if actual < entry.max {
            rec.stale.push((entry.clone(), actual));
        }
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, rule: &'static str, line: usize) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
        }
    }

    const SAMPLE: &str = r#"
# comment
[[allow]]
file = "crates/core/src/a.rs"
rule = "panic.expect"
max = 2
reason = "validated compile-time constants"  # trailing comment

[[allow]]
file = "crates/dsp/src/b.rs"
rule = "panic.indexing"
max = 3
reason = "indices derive from the slice length"
"#;

    #[test]
    fn parses_sample() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].max, 2);
        assert_eq!(a.total_budget(), 5);
        assert!(a
            .budget_for("crates/dsp/src/b.rs", "panic.indexing")
            .is_some());
    }

    #[test]
    fn round_trips_through_to_toml() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        let b = Allowlist::parse(&a.to_toml()).expect("round-trips");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_unknown_rule_and_duplicates_and_zero_max() {
        let bad_rule = "[[allow]]\nfile = \"f.rs\"\nrule = \"nope\"\nmax = 1\nreason = \"long enough reason\"\n";
        assert!(Allowlist::parse(bad_rule).is_err());
        let dup = format!("{SAMPLE}\n[[allow]]\nfile = \"crates/core/src/a.rs\"\nrule = \"panic.expect\"\nmax = 1\nreason = \"another justification\"\n");
        assert!(Allowlist::parse(&dup).is_err());
        let zero = "[[allow]]\nfile = \"f.rs\"\nrule = \"panic.unwrap\"\nmax = 0\nreason = \"long enough reason\"\n";
        assert!(Allowlist::parse(zero).is_err());
    }

    #[test]
    fn rejects_flimsy_reason() {
        let flimsy =
            "[[allow]]\nfile = \"f.rs\"\nrule = \"panic.unwrap\"\nmax = 1\nreason = \"ok\"\n";
        assert!(Allowlist::parse(flimsy).is_err());
    }

    #[test]
    fn within_budget_is_clean() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        let violations = vec![
            v("crates/core/src/a.rs", "panic.expect", 1),
            v("crates/core/src/a.rs", "panic.expect", 9),
            v("crates/dsp/src/b.rs", "panic.indexing", 2),
            v("crates/dsp/src/b.rs", "panic.indexing", 3),
            v("crates/dsp/src/b.rs", "panic.indexing", 4),
        ];
        let rec = reconcile(&violations, &a);
        assert!(rec.clean(), "{rec:?}");
    }

    #[test]
    fn over_budget_reports_all_violations_for_that_pair() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        let violations = vec![
            v("crates/core/src/a.rs", "panic.expect", 1),
            v("crates/core/src/a.rs", "panic.expect", 2),
            v("crates/core/src/a.rs", "panic.expect", 3),
        ];
        let rec = reconcile(&violations, &a);
        assert_eq!(rec.unallowed.len(), 3);
        // The untouched indexing budget (actual 0 < max 3) is stale; the
        // over-budget entry is not.
        assert_eq!(rec.stale.len(), 1);
    }

    #[test]
    fn uncovered_violation_is_unallowed() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        let violations = vec![v("crates/neuro/src/c.rs", "panic.unwrap", 7)];
        let rec = reconcile(&violations, &a);
        assert_eq!(rec.unallowed.len(), 1);
        assert!(!rec.clean());
    }

    #[test]
    fn stale_budget_fails_the_check() {
        let a = Allowlist::parse(SAMPLE).expect("parses");
        let violations = vec![
            v("crates/core/src/a.rs", "panic.expect", 1),
            // b.rs budget of 3 now only has 1 actual: stale.
            v("crates/dsp/src/b.rs", "panic.indexing", 2),
        ];
        let rec = reconcile(&violations, &a);
        assert!(rec.unallowed.is_empty());
        assert_eq!(rec.stale.len(), 2);
        assert!(!rec.clean());
    }
}
