// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-station` — a multi-chip acquisition server for the simulated
//! biosensor arrays of Thewes et al. (DATE 2005).
//!
//! The station hosts a registry of simulated DNA microarray and
//! neural-recording chips (`bsa-core`) behind the versioned binary wire
//! protocol defined in [`bsa_link`], over plain `std::net` TCP with one
//! thread per connection. Clients attach chips, configure assays, inject
//! fault plans, and stream acquisition data; a bounded per-session
//! outbound queue applies backpressure by dropping stream chunks for
//! slow consumers (with exact dropped-frame accounting) rather than
//! buffering without bound.
//!
//! # Determinism boundary
//!
//! Chip execution is deterministic: the same wire spec and seed produce
//! bit-identical frames, because the station builds chips through the
//! same configuration path an in-process caller would use and issues a
//! single `record()` per stream. Wall-clock time exists only *around*
//! the chips — session read timeouts, socket lifecycle — never inside
//! them; this is why `bsa-lint`'s `det.*` rules cover the chip crates
//! but deliberately exclude this one (see DESIGN.md §10).
//!
//! # Quickstart
//!
//! ```no_run
//! use bsa_station::{Station, StationConfig};
//!
//! let handle = Station::bind(StationConfig::default())?;
//! println!("listening on {}", handle.addr());
//! handle.wait(); // serve until shut down
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod registry;
pub mod server;
mod session;
mod stats;

pub use client::{
    AssayOutcome, AttachedChip, CalibrationCounts, ClientConfig, ClientError, NeuroStream,
    RecordingSummary, Replayed, StationClient,
};
pub use registry::{
    culture_from_spec, dna_config_from_spec, injection_plan_from_spec, neuro_config_from_spec,
    yield_summary, MAX_PIXELS,
};
pub use server::{Station, StationConfig, StationHandle};
