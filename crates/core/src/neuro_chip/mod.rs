//! The 128×128 neural-recording chip (paper Section 3, Figs. 5–6).
//!
//! Each 7.8 µm pixel couples the cleft potential capacitively onto the
//! gate of a sensor transistor M1. Because the signals (100 µV – 5 mV) are
//! far below MOSFET parameter variation, each pixel is calibrated by
//! forcing the current of source M2 through M1 (switch S1) and storing the
//! resulting gate voltage; in readout, difference currents between M1 and
//! M2 are amplified through a calibrated gain chain (×100 and ×7 on-chip,
//! 8-to-1 multiplexer, ×4 and ×2 off-chip) over 16 parallel channels at a
//! full frame rate of 2 ksamples/s.

mod chain;
mod frame;
mod linear;
mod pixel;
mod scan;

pub use chain::{ChainConfig, ChannelChain, GainStage};
pub use frame::{Frame, NeuroChip, NeuroChipConfig, Recording, ScanTiming};
pub use pixel::{NeuroPixel, NeuroPixelConfig, PixelLinearization};

pub use crate::scan::{channel_stream_seed, ArenaStats, FrameArena, ScanMode, ScanOptions};
