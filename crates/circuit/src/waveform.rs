//! Uniformly sampled waveforms and transient-simulation timing.

use crate::error::{require_positive, CircuitError};
use bsa_units::{Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// A uniformly sampled real-valued waveform.
///
/// Used for analog node voltages in transient runs (e.g. the sawtooth at
/// the DNA pixel's integration node, paper Fig. 3 timing diagram) and for
/// the per-pixel time series of the neural array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    dt: Seconds,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates an empty waveform with the given sample interval.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `dt` is not strictly positive.
    pub fn new(dt: Seconds) -> Result<Self, CircuitError> {
        require_positive("sample interval", dt.value())?;
        Ok(Self {
            dt,
            samples: Vec::new(),
        })
    }

    /// Creates a waveform from existing samples.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `dt` is not strictly positive.
    pub fn from_samples(dt: Seconds, samples: Vec<f64>) -> Result<Self, CircuitError> {
        require_positive("sample interval", dt.value())?;
        Ok(Self { dt, samples })
    }

    /// Sample interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Sample rate 1/dt.
    pub fn sample_rate(&self) -> Hertz {
        self.dt.recip()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration, len·dt.
    pub fn duration(&self) -> Seconds {
        self.dt * self.samples.len() as f64
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// The raw sample slice.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consumes the waveform, returning its samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Linear interpolation at absolute time `t`; clamps beyond the ends.
    pub fn sample_at(&self, t: Seconds) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let x = (t.value() / self.dt.value()).max(0.0);
        let i = x.floor() as usize;
        if i + 1 >= self.samples.len() {
            return self.samples.last().copied().unwrap_or(0.0);
        }
        let frac = x - i as f64;
        let a = self.samples.get(i).copied().unwrap_or(0.0);
        let b = self.samples.get(i + 1).copied().unwrap_or(a);
        a * (1.0 - frac) + b * frac
    }

    /// Minimum sample (0.0 for an empty waveform).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample (0.0 for an empty waveform).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Arithmetic mean (0.0 for an empty waveform).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Root-mean-square value.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            (self.samples.iter().map(|x| x * x).sum::<f64>() / self.samples.len() as f64).sqrt()
        }
    }

    /// Peak-to-peak span.
    pub fn peak_to_peak(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max() - self.min()
        }
    }

    /// Counts rising crossings of `level`.
    pub fn rising_crossings(&self, level: f64) -> usize {
        self.samples
            .windows(2)
            .filter(|w| w[0] <= level && w[1] > level)
            .count()
    }
}

/// Fixed-step transient clock.
///
/// Iterates simulation time deterministically: `for t in clock.iter() { … }`
/// visits `steps` instants spaced by `dt` starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientClock {
    dt: Seconds,
    steps: usize,
}

impl TransientClock {
    /// Creates a clock covering `duration` with step `dt` (rounding the
    /// step count up so the whole duration is covered).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `dt` or `duration` is not positive.
    pub fn new(dt: Seconds, duration: Seconds) -> Result<Self, CircuitError> {
        require_positive("time step", dt.value())?;
        require_positive("duration", duration.value())?;
        // Snap near-integer ratios before ceiling so 1 ms / 1 µs is exactly
        // 1000 steps despite float rounding.
        let ratio = duration.value() / dt.value();
        let steps = if (ratio - ratio.round()).abs() < 1e-9 * ratio.max(1.0) {
            ratio.round() as usize
        } else {
            ratio.ceil() as usize
        };
        Ok(Self { dt, steps })
    }

    /// The time step.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Number of steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Iterator over simulation instants 0, dt, 2·dt, …
    pub fn iter(&self) -> impl Iterator<Item = Seconds> + '_ {
        let dt = self.dt;
        (0..self.steps).map(move |k| dt * k as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_samples(
            Seconds::from_micro(1.0),
            (0..=10).map(|k| k as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_zero_dt() {
        assert!(Waveform::new(Seconds::ZERO).is_err());
    }

    #[test]
    fn duration_and_rate() {
        let w = ramp();
        assert_eq!(w.len(), 11);
        assert!((w.duration().as_micro() - 11.0).abs() < 1e-9);
        assert!((w.sample_rate().value() - 1e6).abs() < 1e-3);
    }

    #[test]
    fn interpolation_between_samples() {
        let w = ramp();
        let v = w.sample_at(Seconds::from_micro(2.5));
        assert!((v - 2.5).abs() < 1e-12);
    }

    #[test]
    fn interpolation_clamps_at_ends() {
        let w = ramp();
        assert_eq!(w.sample_at(Seconds::new(-1.0)), 0.0);
        assert_eq!(w.sample_at(Seconds::new(1.0)), 10.0);
    }

    #[test]
    fn statistics() {
        let w = Waveform::from_samples(Seconds::new(1.0), vec![-1.0, 1.0, -1.0, 1.0]).unwrap();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rms(), 1.0);
        assert_eq!(w.peak_to_peak(), 2.0);
        assert_eq!(w.max(), 1.0);
    }

    #[test]
    fn empty_waveform_statistics_are_zero() {
        let w = Waveform::new(Seconds::new(1.0)).unwrap();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rms(), 0.0);
        assert_eq!(w.peak_to_peak(), 0.0);
        assert_eq!(w.sample_at(Seconds::new(1.0)), 0.0);
    }

    #[test]
    fn rising_crossings_counts_sawtooth_periods() {
        // Three sawtooth ramps 0→1.
        let mut samples = Vec::new();
        for _ in 0..3 {
            samples.extend((0..10).map(|k| k as f64 / 10.0));
        }
        let w = Waveform::from_samples(Seconds::new(1e-6), samples).unwrap();
        assert_eq!(w.rising_crossings(0.55), 3);
    }

    #[test]
    fn clock_covers_duration() {
        let c = TransientClock::new(Seconds::from_micro(1.0), Seconds::from_milli(1.0)).unwrap();
        assert_eq!(c.steps(), 1000);
        let times: Vec<Seconds> = c.iter().collect();
        assert_eq!(times.len(), 1000);
        assert_eq!(times[0], Seconds::ZERO);
        assert!((times[999].as_micro() - 999.0).abs() < 1e-9);
    }

    #[test]
    fn clock_rounds_partial_steps_up() {
        let c = TransientClock::new(Seconds::new(0.3), Seconds::new(1.0)).unwrap();
        assert_eq!(c.steps(), 4);
    }
}
