//! Duplex stability and hybridization kinetics.
//!
//! Hybridization of surface-bound probes with solution targets follows
//! Langmuir kinetics:
//!
//! ```text
//! dθ/dt = k_on·C·(1 − θ) − k_off·θ
//! ```
//!
//! with equilibrium coverage `θ_eq = C / (C + K_d)`, `K_d = k_off/k_on`.
//! The dissociation rate depends exponentially on duplex stability: each
//! mismatch destabilizes the duplex by ≈ ΔΔG of 1–3 kcal/mol, which is what
//! makes the match/mismatch contrast of paper Fig. 2 d)–g) possible, and
//! each matched base (more strongly for G·C pairs) stabilizes it.

use crate::sequence::DnaSequence;
use bsa_units::consts::GAS_CONSTANT;
use bsa_units::{Kelvin, Molar, Seconds};
use serde::{Deserialize, Serialize};

/// Thermodynamic/kinetic parameters of the hybridization model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridizationModel {
    /// Association rate constant k_on in 1/(M·s). Diffusion-limited
    /// surface hybridization: ~1e4 … 1e6.
    pub k_on: f64,
    /// Free energy per matched A·T pair in kcal/mol (negative = binding).
    pub dg_at_kcal: f64,
    /// Free energy per matched G·C pair in kcal/mol.
    pub dg_gc_kcal: f64,
    /// Destabilization per mismatch in kcal/mol (positive).
    pub ddg_mismatch_kcal: f64,
    /// Duplex initiation penalty in kcal/mol (positive).
    pub dg_init_kcal: f64,
    /// Reference dissociation prefactor in 1/s.
    pub k_off_prefactor: f64,
    /// Melting entropy per matched pair in kcal/(mol·K): raises ΔG by this
    /// much per kelvin above the reference temperature per matched base.
    pub entropy_per_match_kcal_per_k: f64,
    /// Temperature at which the per-base free energies are specified.
    pub reference_temp: Kelvin,
}

impl Default for HybridizationModel {
    /// Parameters tuned to give: K_d(perfect 20-mer) ≪ 1 nM, K_d rising by
    /// roughly an order of magnitude per mismatch — the regime reported for
    /// microarray assays.
    fn default() -> Self {
        Self {
            k_on: 1e5,
            dg_at_kcal: -1.0,
            dg_gc_kcal: -1.6,
            ddg_mismatch_kcal: 2.2,
            dg_init_kcal: 3.0,
            k_off_prefactor: 1e9,
            entropy_per_match_kcal_per_k: 0.02,
            reference_temp: bsa_units::consts::ROOM_TEMPERATURE,
        }
    }
}

impl HybridizationModel {
    /// Duplex free energy ΔG (kcal/mol) from precomputed alignment counts
    /// — the primitive behind [`HybridizationModel::duplex_dg_kcal`], for
    /// callers that evaluate many temperatures for one alignment (melting
    /// curves, panel design).
    pub fn dg_kcal_from_counts(
        &self,
        matches: usize,
        mismatches: usize,
        gc_frac: f64,
        t: Kelvin,
    ) -> f64 {
        let dg_per_match = gc_frac * self.dg_gc_kcal + (1.0 - gc_frac) * self.dg_at_kcal;
        let dg_ref = self.dg_init_kcal
            + matches as f64 * dg_per_match
            + mismatches as f64 * self.ddg_mismatch_kcal;
        let dt = t.value() - self.reference_temp.value();
        dg_ref + dt * self.entropy_per_match_kcal_per_k * matches as f64
    }

    /// Duplex free energy ΔG (kcal/mol) for `probe` bound to `target` at
    /// its best alignment and temperature `t`. More negative = more stable;
    /// the entropy term raises ΔG with temperature, so duplexes melt.
    pub fn duplex_dg_kcal(&self, probe: &DnaSequence, target: &DnaSequence, t: Kelvin) -> f64 {
        let matches = probe.complementary_matches(target);
        let mismatches = probe.mismatches_with(target);
        // Apportion matched pairs by the probe's GC content.
        self.dg_kcal_from_counts(matches, mismatches, probe.gc_content(), t)
    }

    /// Dissociation rate k_off (1/s) at temperature `t`.
    ///
    /// k_off = prefactor · exp(ΔG/(R·T)) — a stable duplex (ΔG ≪ 0)
    /// dissociates slowly. Clamped to the prefactor for unstable duplexes.
    pub fn k_off(&self, probe: &DnaSequence, target: &DnaSequence, t: Kelvin) -> f64 {
        let dg_j = self.duplex_dg_kcal(probe, target, t) * 4184.0;
        let rate = self.k_off_prefactor * (dg_j / (GAS_CONSTANT * t.value())).exp();
        rate.min(self.k_off_prefactor)
    }

    /// Equilibrium dissociation constant K_d = k_off/k_on in mol/L.
    pub fn k_d(&self, probe: &DnaSequence, target: &DnaSequence, t: Kelvin) -> Molar {
        Molar::new(self.k_off(probe, target, t) / self.k_on)
    }

    /// Equilibrium surface coverage θ_eq ∈ [0, 1] at target concentration
    /// `c`.
    pub fn equilibrium_coverage(
        &self,
        probe: &DnaSequence,
        target: &DnaSequence,
        c: Molar,
        t: Kelvin,
    ) -> f64 {
        let kd = self.k_d(probe, target, t).value();
        c.value() / (c.value() + kd)
    }

    /// Coverage after hybridizing for `dt` starting from `theta0`:
    /// the analytic solution of the Langmuir ODE,
    /// θ(t) = θ_eq + (θ₀ − θ_eq)·exp(−(k_on·C + k_off)·t).
    pub fn coverage_after(
        &self,
        probe: &DnaSequence,
        target: &DnaSequence,
        c: Molar,
        t: Kelvin,
        theta0: f64,
        dt: Seconds,
    ) -> f64 {
        let k_off = self.k_off(probe, target, t);
        let k_obs = self.k_on * c.value() + k_off;
        let theta_eq = if k_obs > 0.0 {
            self.k_on * c.value() / k_obs
        } else {
            0.0
        };
        let decayed = (-k_obs * dt.value()).exp();
        (theta_eq + (theta0 - theta_eq) * decayed).clamp(0.0, 1.0)
    }

    /// Coverage remaining after washing in pure buffer (C = 0) for `dt`,
    /// with washing stringency multiplying the dissociation rate (flow,
    /// elevated temperature and low salt all accelerate off-rates).
    pub fn coverage_after_wash(
        &self,
        probe: &DnaSequence,
        target: &DnaSequence,
        t: Kelvin,
        theta0: f64,
        dt: Seconds,
        stringency: f64,
    ) -> f64 {
        let k_off = self.k_off(probe, target, t) * stringency.max(0.0);
        (theta0 * (-k_off * dt.value()).exp()).clamp(0.0, 1.0)
    }

    /// Melting temperature estimate at reference concentration 1 µM: the
    /// temperature where half the probes are occupied at equilibrium,
    /// i.e. K_d(T_m) = 1 µM.
    pub fn melting_temperature(&self, probe: &DnaSequence, target: &DnaSequence) -> Kelvin {
        let c_ref = 1e-6;
        // The alignment is temperature-independent: compute it once.
        let matches = probe.complementary_matches(target);
        let mismatches = probe.mismatches_with(target);
        let gc = probe.gc_content();
        // f(T) = ΔG(T)/(R·T) − ln(k_on·C_ref / prefactor); root is T_m.
        let f = |t: f64| {
            let dg_j = self.dg_kcal_from_counts(matches, mismatches, gc, Kelvin::new(t)) * 4184.0;
            dg_j / (GAS_CONSTANT * t) - (self.k_on * c_ref / self.k_off_prefactor).ln()
        };
        let (mut lo, mut hi) = (200.0, 500.0);
        if f(lo).signum() == f(hi).signum() {
            // Duplex never stable (or always) in range: report the bound.
            return Kelvin::new(if f(lo) > 0.0 { lo } else { hi });
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if f(mid).signum() == f(lo).signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Kelvin::new(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsa_units::consts::ROOM_TEMPERATURE;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pair(mismatches: usize) -> (DnaSequence, DnaSequence) {
        let mut rng = SmallRng::seed_from_u64(99);
        let probe = DnaSequence::random(20, &mut rng);
        let target = probe.reverse_complement().with_mismatches(mismatches);
        (probe, target)
    }

    #[test]
    fn perfect_duplex_is_stable() {
        let m = HybridizationModel::default();
        let (p, t) = pair(0);
        assert!(m.duplex_dg_kcal(&p, &t, ROOM_TEMPERATURE) < -15.0);
    }

    #[test]
    fn each_mismatch_destabilizes() {
        let m = HybridizationModel::default();
        let mut last = f64::NEG_INFINITY;
        for n in 0..5 {
            let (p, t) = pair(n);
            let dg = m.duplex_dg_kcal(&p, &t, ROOM_TEMPERATURE);
            assert!(dg > last, "mismatch {n} must raise ΔG");
            last = dg;
        }
    }

    #[test]
    fn melting_temperatures_are_physical() {
        // A perfect 20-mer at 1 µM melts somewhere in 300–400 K.
        let m = HybridizationModel::default();
        let (p, t) = pair(0);
        let tm = m.melting_temperature(&p, &t);
        assert!(tm.value() > 300.0 && tm.value() < 420.0, "Tm = {tm}");
    }

    #[test]
    fn kd_rises_orders_of_magnitude_per_mismatch() {
        let m = HybridizationModel::default();
        let (p0, t0) = pair(0);
        let (p3, t3) = pair(3);
        let kd0 = m.k_d(&p0, &t0, ROOM_TEMPERATURE).value();
        let kd3 = m.k_d(&p3, &t3, ROOM_TEMPERATURE).value();
        assert!(
            kd3 / kd0 > 1e3,
            "3 mismatches should raise K_d ≥ 1000×: {kd0} → {kd3}"
        );
    }

    #[test]
    fn equilibrium_coverage_saturates_with_concentration() {
        let m = HybridizationModel::default();
        let (p, t) = pair(0);
        let th_low = m.equilibrium_coverage(&p, &t, Molar::from_pico(1.0), ROOM_TEMPERATURE);
        let th_high = m.equilibrium_coverage(&p, &t, Molar::from_micro(1.0), ROOM_TEMPERATURE);
        assert!(th_low < th_high);
        assert!(th_high > 0.99);
        assert!((0.0..=1.0).contains(&th_low));
    }

    #[test]
    fn coverage_after_converges_to_equilibrium() {
        let m = HybridizationModel::default();
        let (p, t) = pair(1);
        let c = Molar::from_nano(10.0);
        let eq = m.equilibrium_coverage(&p, &t, c, ROOM_TEMPERATURE);
        let th = m.coverage_after(&p, &t, c, ROOM_TEMPERATURE, 0.0, Seconds::new(1e7));
        assert!((th - eq).abs() < 1e-6, "θ = {th}, θ_eq = {eq}");
    }

    #[test]
    fn coverage_is_monotone_in_time() {
        let m = HybridizationModel::default();
        let (p, t) = pair(0);
        let c = Molar::from_nano(100.0);
        let mut last = 0.0;
        for k in 1..=10 {
            let th = m.coverage_after(
                &p,
                &t,
                c,
                ROOM_TEMPERATURE,
                0.0,
                Seconds::new(60.0 * k as f64),
            );
            assert!(th >= last);
            last = th;
        }
    }

    #[test]
    fn washing_removes_mismatched_faster() {
        let m = HybridizationModel::default();
        let (p0, t0) = pair(0);
        let (p2, t2) = pair(2);
        let wash = Seconds::new(300.0);
        let kept0 = m.coverage_after_wash(&p0, &t0, ROOM_TEMPERATURE, 0.9, wash, 100.0);
        let kept2 = m.coverage_after_wash(&p2, &t2, ROOM_TEMPERATURE, 0.9, wash, 100.0);
        assert!(kept0 > kept2, "match retains more: {kept0} vs {kept2}");
    }

    #[test]
    fn melting_temperature_drops_with_mismatches() {
        let m = HybridizationModel::default();
        let (p0, t0) = pair(0);
        let (p4, t4) = pair(4);
        let tm0 = m.melting_temperature(&p0, &t0);
        let tm4 = m.melting_temperature(&p4, &t4);
        assert!(tm0 > tm4, "Tm(match) = {tm0}, Tm(4 mm) = {tm4}");
    }

    #[test]
    fn longer_probes_melt_higher() {
        let m = HybridizationModel::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let p15 = DnaSequence::random(15, &mut rng);
        let p40 = DnaSequence::random(40, &mut rng);
        let tm15 = m.melting_temperature(&p15, &p15.reverse_complement());
        let tm40 = m.melting_temperature(&p40, &p40.reverse_complement());
        assert!(tm40 > tm15);
    }

    #[test]
    fn k_off_clamped_for_unstable_duplex() {
        let m = HybridizationModel::default();
        let mut rng = SmallRng::seed_from_u64(6);
        let probe = DnaSequence::random(20, &mut rng);
        let unrelated = DnaSequence::random(20, &mut rng);
        let k = m.k_off(&probe, &unrelated, ROOM_TEMPERATURE);
        assert!(k <= m.k_off_prefactor);
        assert!(k > 0.0);
    }

    #[test]
    fn higher_temperature_accelerates_off_rate() {
        let m = HybridizationModel::default();
        let (p, t) = pair(0);
        let cold = m.k_off(&p, &t, Kelvin::new(290.0));
        let hot = m.k_off(&p, &t, Kelvin::new(340.0));
        assert!(hot > cold);
    }
}
