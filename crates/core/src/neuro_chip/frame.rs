//! Full-array frame scanning at 2 kframes/s.
//!
//! "chips with 128×128 positions within a total sensor area of 1 mm×1 mm
//! … Full frame rate is 2k samples/s." Rows are selected sequentially
//! (switch S2); within a row, the 128 columns leave the chip over 16
//! parallel channels, each serving 8 columns through an 8-to-1 multiplexer
//! — a rolling-shutter scan whose per-pixel timing this module reproduces.

use super::chain::{ChainConfig, ChannelChain};
use super::linear::{scan_chunk_linear, LinearState};
use super::pixel::{NeuroPixel, NeuroPixelConfig};
use super::scan::{clipped, scan_chunk, ScanPlan};
use crate::array::{ArrayGeometry, PixelAddress};
use crate::error::ChipError;
use crate::health::{HealthMonitor, PixelHealth, SerialLinkStats, YieldReport};
use crate::scan::{
    channel_stream_seed, resolve_threads, ArenaStats, FrameArena, ScanMode, ScanOptions,
};
use bsa_faults::CompiledFaults;
use bsa_neuro::culture::Culture;
use bsa_units::{Hertz, Seconds, Siemens, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Upper bound on the number of frames scanned per fan-out chunk: large
/// enough to amortize worker spawn-up, small enough to keep the stripe
/// scratch modest and recalibration points exact.
const MAX_CHUNK_FRAMES: usize = 32;

/// Scan-timing bookkeeping derived from the frame rate and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanTiming {
    /// Full-frame rate.
    pub frame_rate: Hertz,
    /// Duration of one frame.
    pub frame_period: Seconds,
    /// Duration of one row slot.
    pub row_period: Seconds,
    /// Per-pixel dwell time on a channel (row period / columns-per-channel).
    pub pixel_dwell: Seconds,
    /// Number of parallel output channels.
    pub channels: usize,
    /// Columns served by each channel (the mux ratio).
    pub columns_per_channel: usize,
}

impl ScanTiming {
    /// Computes the timing for a geometry, frame rate and channel count.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::InvalidConfig`] if the column count is not an
    /// integer multiple of the channel count or the frame rate is not
    /// positive.
    pub fn new(
        geometry: ArrayGeometry,
        frame_rate: Hertz,
        channels: usize,
    ) -> Result<Self, ChipError> {
        if frame_rate.value() <= 0.0 {
            return Err(ChipError::InvalidConfig {
                reason: "frame rate must be positive".into(),
            });
        }
        if channels == 0 || !geometry.cols().is_multiple_of(channels) {
            return Err(ChipError::InvalidConfig {
                reason: format!(
                    "{} columns cannot be split over {} channels",
                    geometry.cols(),
                    channels
                ),
            });
        }
        let frame_period = frame_rate.recip();
        let row_period = Seconds::new(frame_period.value() / geometry.rows() as f64);
        let columns_per_channel = geometry.cols() / channels;
        let pixel_dwell = Seconds::new(row_period.value() / columns_per_channel as f64);
        Ok(Self {
            frame_rate,
            frame_period,
            row_period,
            pixel_dwell,
            channels,
            columns_per_channel,
        })
    }

    /// Absolute sample time of a pixel within frame `frame`: rolling
    /// shutter over rows, mux sequence over the channel's columns.
    pub fn sample_time(&self, frame: usize, addr: PixelAddress) -> Seconds {
        let slot = addr.col % self.columns_per_channel;
        Seconds::new(
            frame as f64 * self.frame_period.value()
                + addr.row as f64 * self.row_period.value()
                + slot as f64 * self.pixel_dwell.value(),
        )
    }
}

/// Configuration of a neural-recording chip instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuroChipConfig {
    /// Array geometry (default: the paper's 128×128 at 7.8 µm).
    pub geometry: ArrayGeometry,
    /// Full-frame rate (paper: 2 kHz).
    pub frame_rate: Hertz,
    /// Parallel output channels (paper: 16).
    pub channels: usize,
    /// Pixel design values.
    pub pixel: NeuroPixelConfig,
    /// Per-channel signal-chain design values.
    pub chain: ChainConfig,
    /// Recalibration interval (the paper's periodic row-parallel,
    /// column-sequential calibration).
    pub recalibration_interval: Seconds,
    /// Die seed for mismatch and noise.
    pub seed: u64,
}

impl Default for NeuroChipConfig {
    fn default() -> Self {
        Self {
            geometry: ArrayGeometry::neuro_128x128(),
            frame_rate: Hertz::from_kilo(2.0),
            channels: 16,
            pixel: NeuroPixelConfig::default(),
            chain: ChainConfig::default(),
            recalibration_interval: Seconds::from_milli(50.0),
            seed: 0x0EE5_1281,
        }
    }
}

/// One recorded frame: output-referred voltages in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    rows: usize,
    cols: usize,
    samples: Vec<f64>,
}

impl Frame {
    /// Sample at an address (volts at the chain output).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the frame.
    pub fn at(&self, addr: PixelAddress) -> f64 {
        assert!(addr.row < self.rows && addr.col < self.cols);
        self.samples[addr.row * self.cols + addr.col]
    }

    /// Raw row-major samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Frame rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Frame columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// A multi-frame recording.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    geometry: ArrayGeometry,
    timing: ScanTiming,
    frames: Vec<Frame>,
    /// Mean pixel→output conversion (V out per V of cleft signal), for
    /// input-referred analysis.
    nominal_voltage_gain: f64,
}

impl Recording {
    /// The frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Scan timing of the recording.
    pub fn timing(&self) -> ScanTiming {
        self.timing
    }

    /// Array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Output-referred time series of one pixel across frames.
    pub fn pixel_series(&self, addr: PixelAddress) -> Vec<f64> {
        self.frames.iter().map(|f| f.at(addr)).collect()
    }

    /// Input-referred (cleft-voltage) time series of one pixel: output
    /// divided by the nominal end-to-end voltage gain.
    pub fn pixel_series_input_referred(&self, addr: PixelAddress) -> Vec<f64> {
        let g = self.nominal_voltage_gain;
        self.frames.iter().map(|f| f.at(addr) / g).collect()
    }

    /// The nominal end-to-end voltage gain used for input referral.
    pub fn nominal_voltage_gain(&self) -> f64 {
        self.nominal_voltage_gain
    }
}

/// Median of a slice (0.0 when empty).
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    let mid = sorted.len() / 2;
    let (_, m, _) = sorted.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    *m
}

/// A neural-recording chip instance (one die).
#[derive(Debug, Clone)]
pub struct NeuroChip {
    config: NeuroChipConfig,
    timing: ScanTiming,
    pixels: Vec<NeuroPixel>,
    channels: Vec<ChannelChain>,
    calibrated: bool,
    faults: CompiledFaults,
    health: HealthMonitor,
    /// Precomputed per-channel scan order (rebuilt on fault injection).
    plan: ScanPlan,
    /// Per-channel frame-noise RNG streams, re-seeded at the start of
    /// every record call so results depend only on seed and config.
    stream_rngs: Vec<SmallRng>,
    /// Frame-buffer pool backing allocation-free steady-state recording.
    arena: FrameArena,
    /// Linearized fast-path coefficient tables (SoA), invalidated whenever
    /// calibration or fault state changes and rebuilt lazily at the next
    /// fast-path chunk.
    linear: LinearState,
}

impl NeuroChip {
    /// Instantiates a die with sampled mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] if the configuration is invalid.
    pub fn new(config: NeuroChipConfig) -> Result<Self, ChipError> {
        let timing = ScanTiming::new(config.geometry, config.frame_rate, config.channels)?;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let pixels: Vec<NeuroPixel> = (0..config.geometry.len())
            .map(|_| NeuroPixel::sample(config.pixel.clone(), &mut rng))
            .collect::<Result<_, _>>()?;
        let channels: Vec<ChannelChain> = (0..config.channels)
            .map(|_| ChannelChain::sample(config.chain.clone(), &mut rng))
            .collect();
        let faults = CompiledFaults::none(config.geometry.rows(), config.geometry.cols());
        let plan = ScanPlan::build(
            config.geometry,
            timing.row_period,
            timing.pixel_dwell,
            config.channels,
            &faults,
            &pixels,
        );
        let stream_rngs = (0..config.channels)
            .map(|ch| SmallRng::seed_from_u64(channel_stream_seed(config.seed, ch)))
            .collect();
        Ok(Self {
            timing,
            pixels,
            channels,
            calibrated: false,
            faults,
            health: HealthMonitor::all_healthy(config.geometry),
            plan,
            stream_rngs,
            arena: FrameArena::new(),
            linear: LinearState::default(),
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NeuroChipConfig {
        &self.config
    }

    /// Scan timing.
    pub fn timing(&self) -> ScanTiming {
        self.timing
    }

    /// Whether pixel and gain-stage calibration have run.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// The pixel at an address.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for bad addresses.
    pub fn pixel(&self, addr: PixelAddress) -> Result<&NeuroPixel, ChipError> {
        Ok(&self.pixels[self.config.geometry.index_of(addr)?])
    }

    /// Injects a compiled fault map into the die: every pixel takes on its
    /// planned defects, lost multiplexer channels go silent, and
    /// [`calibrate`](Self::calibrate)'s self-test reclassifies pixel
    /// health. Serial-bit-error faults are inert here (the neural chip
    /// streams analog samples, not serial words).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::FaultGeometryMismatch`] if the map was compiled
    /// for a different array geometry.
    pub fn inject_faults(&mut self, faults: &CompiledFaults) -> Result<(), ChipError> {
        let g = self.config.geometry;
        if faults.rows() != g.rows() || faults.cols() != g.cols() {
            return Err(ChipError::FaultGeometryMismatch {
                map: (faults.rows(), faults.cols()),
                chip: (g.rows(), g.cols()),
            });
        }
        for (pixel, &f) in self.pixels.iter_mut().zip(faults.pixels().iter()) {
            pixel.set_faults(f);
        }
        self.faults = faults.clone();
        // Clip limits and lost channels are baked into the scan plan and
        // the linearized tables.
        self.plan = ScanPlan::build(
            self.config.geometry,
            self.timing.row_period,
            self.timing.pixel_dwell,
            self.config.channels,
            &self.faults,
            &self.pixels,
        );
        self.linear.invalidate();
        Ok(())
    }

    /// The fault map currently injected (fault-free for a pristine die).
    pub fn faults(&self) -> &CompiledFaults {
        &self.faults
    }

    /// Per-pixel health as established by the last
    /// [`calibrate`](Self::calibrate) self-test.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// The multiplexer channels currently lost to injected faults, sorted.
    pub fn lost_channels(&self) -> &[usize] {
        self.faults.lost_channels()
    }

    /// Calibrates all pixels (rows in parallel, columns in sequence, as in
    /// the paper) and all channel gain stages, at absolute time `now`,
    /// then self-tests every pixel and updates [`health`](Self::health):
    /// a pixel with no response to a capacitively applied test amplitude
    /// is dead; one whose calibration residual is grossly out of family,
    /// or whose output would clip inside the ±5 mV signal window, is
    /// flagged out-of-family.
    pub fn calibrate(&mut self, now: Seconds) {
        for p in &mut self.pixels {
            p.calibrate(now);
        }
        for c in &mut self.channels {
            c.calibrate();
        }
        self.self_test(now);
        self.calibrated = true;
        // Operating points moved: the fast path must re-linearize.
        self.linear.invalidate();
    }

    /// Classifies every pixel from a two-point capacitive self-test.
    fn self_test(&mut self, now: Seconds) {
        let test = Volt::from_milli(1.0);
        let mut residuals = Vec::with_capacity(self.pixels.len());
        let mut responses = Vec::with_capacity(self.pixels.len());
        for p in &self.pixels {
            let base = p.read(Volt::ZERO, now);
            residuals.push(base.value().abs());
            responses.push((p.read(test, now) - base).value().abs());
        }
        // A healthy pixel converts 1 mV to tens of nA of ΔI; 1 nA floors
        // the threshold so an (improbable) all-dead array still classifies.
        let dead_threshold = (0.2 * median(&responses)).max(1e-9);
        // Residuals after calibration are injection-offset sized (tens of
        // nA); a µA-class residual means something besides mismatch leaks
        // into the pixel.
        let residual_limit = 500e-9;
        // Output swing a full-scale 5 mV signal produces at this channel
        // gain — a clip limit inside it truncates real spikes.
        let full_scale_out = 5.0 * 1e-3 * self.nominal_voltage_gain();

        let cols_per_ch = self.timing.columns_per_channel;
        let cols = self.config.geometry.cols();
        let mut health = HealthMonitor::all_healthy(self.config.geometry);
        for (i, p) in self.pixels.iter().enumerate() {
            let channel = (i % cols) / cols_per_ch;
            let state = if self.faults.channel_lost(channel) {
                // Unobservable through a lost multiplexer channel: mask it.
                PixelHealth::Dead
            } else if responses[i] < dead_threshold {
                PixelHealth::Dead
            } else if residuals[i] > residual_limit
                || p.faults()
                    .clip_limit
                    .is_some_and(|l| l.value() < full_scale_out)
            {
                PixelHealth::OutOfFamily
            } else {
                PixelHealth::Healthy
            };
            health.set_state(i, state);
        }
        self.health = health;
    }

    /// Summarizes the die: pixel health from the last self-test, lost
    /// channels and injected fault counts. The neural chip has no serial
    /// word link, so serial statistics are always zero.
    pub fn yield_report(&self) -> YieldReport {
        YieldReport::new(
            &self.health,
            self.faults.lost_channels().to_vec(),
            self.config.channels,
            self.faults.injected_counts().clone(),
            SerialLinkStats::default(),
        )
    }

    /// Mean pixel conversion gain × chain gain × transimpedance: the
    /// nominal cleft-voltage → output-voltage gain.
    pub fn nominal_voltage_gain(&self) -> f64 {
        let gm: f64 = self
            .pixels
            .iter()
            .take(16)
            .map(|p| p.conversion_gain(Seconds::ZERO).value())
            .sum::<f64>()
            / 16.0_f64.min(self.pixels.len() as f64);
        Siemens::new(gm).value()
            * self.channels[0].nominal_current_gain()
            * self.config.chain.conversion_resistance.value()
    }

    /// Records `frames` full frames from a culture starting at `t0`,
    /// recalibrating at the configured interval, with default scan
    /// options (all available worker threads).
    ///
    /// Pixels are sampled at their true rolling-shutter times; each
    /// channel's settling state evolves down its column sequence.
    pub fn record(&mut self, culture: &Culture, t0: Seconds, frames: usize) -> Recording {
        self.record_with(culture, t0, frames, ScanOptions::default())
    }

    /// [`record`](Self::record) with explicit scan options. Results are
    /// identical for every thread count: frame noise comes from
    /// deterministic per-channel RNG streams, so scheduling never touches
    /// the sample values.
    pub fn record_with(
        &mut self,
        culture: &Culture,
        t0: Seconds,
        frames: usize,
        opts: ScanOptions,
    ) -> Recording {
        self.scan_recording(culture, t0, frames, opts, true)
    }

    /// Records without ever calibrating — the baseline the paper's
    /// calibration scheme is designed to beat. (Forces an uncalibrated
    /// state; any prior calibration is discarded. Injected faults stay.)
    pub fn record_uncalibrated(
        &mut self,
        culture: &Culture,
        t0: Seconds,
        frames: usize,
    ) -> Recording {
        self.record_uncalibrated_with(culture, t0, frames, ScanOptions::default())
    }

    /// [`record_uncalibrated`](Self::record_uncalibrated) with explicit
    /// scan options.
    pub fn record_uncalibrated_with(
        &mut self,
        culture: &Culture,
        t0: Seconds,
        frames: usize,
        opts: ScanOptions,
    ) -> Recording {
        for p in &mut self.pixels {
            p.clear_calibration();
        }
        self.calibrated = false;
        self.linear.invalidate();
        self.scan_recording(culture, t0, frames, opts, false)
    }

    /// The shared scan core behind [`record`](Self::record) and
    /// [`record_uncalibrated`](Self::record_uncalibrated): chunks the
    /// frame sequence at recalibration points, fans each chunk's channels
    /// out over the scan workers into a channel-major stripe buffer, then
    /// gathers the stripes into row-major frames drawn from the arena.
    fn scan_recording(
        &mut self,
        culture: &Culture,
        t0: Seconds,
        frames: usize,
        opts: ScanOptions,
        recalibrate: bool,
    ) -> Recording {
        let geometry = self.config.geometry;
        let timing = self.timing;
        let nominal_gain = self.nominal_voltage_gain();
        let threads = resolve_threads(self.config.channels, opts);
        let frame_period = timing.frame_period.value();
        let interval = self.config.recalibration_interval.value();
        let rows = geometry.rows();
        let cols = geometry.cols();
        let cpc = timing.columns_per_channel;
        let frame_len = rows * cpc;

        // Every record call restarts the per-channel noise streams, so a
        // recording depends only on (seed, config, culture, t0, frames).
        for (ch, rng) in self.stream_rngs.iter_mut().enumerate() {
            *rng = SmallRng::seed_from_u64(channel_stream_seed(self.config.seed, ch));
        }

        let fast = opts.mode == ScanMode::Linearized;
        if fast {
            // Source lists depend only on geometry and culture positions:
            // compile once per call, reuse for every chunk.
            self.linear.compile_culture(&self.plan, culture);
        }

        let mut out = Vec::with_capacity(frames);
        let mut last_cal = Seconds::new(f64::NEG_INFINITY);
        let mut frame_starts: Vec<f64> = Vec::with_capacity(MAX_CHUNK_FRAMES);

        let mut f0 = 0usize;
        while f0 < frames {
            let chunk_t0 = t0.value() + f0 as f64 * frame_period;
            if recalibrate && (chunk_t0 - last_cal.value()) >= interval {
                self.calibrate(Seconds::new(chunk_t0));
                last_cal = Seconds::new(chunk_t0);
            }
            if fast && !self.linear.is_fresh() {
                // Re-linearize at the chunk start — for a recalibrating
                // record this is exactly the calibration instant, so the
                // expansion point matches the fresh operating points.
                self.linear.rebuild(
                    &self.plan,
                    &self.pixels,
                    &self.channels,
                    timing.pixel_dwell,
                    Seconds::new(chunk_t0),
                );
            }

            // The chunk runs until the next recalibration would be due (or
            // the cap), so calibration happens at exactly the same frames
            // as a per-frame check would produce.
            frame_starts.clear();
            frame_starts.push(chunk_t0);
            while frame_starts.len() < MAX_CHUNK_FRAMES && f0 + frame_starts.len() < frames {
                let fs = t0.value() + (f0 + frame_starts.len()) as f64 * frame_period;
                if recalibrate && (fs - last_cal.value()) >= interval {
                    break;
                }
                frame_starts.push(fs);
            }
            let chunk = frame_starts.len();

            // Channel-major scratch: [channel][frame][row][slot]. Taken
            // from the arena so its capacity persists across chunks and
            // record calls.
            let mut stripe = std::mem::take(&mut self.arena.stripe);
            stripe.clear();
            stripe.resize(self.config.channels * chunk * frame_len, 0.0);
            if fast {
                scan_chunk_linear(
                    &self.plan,
                    &mut self.linear,
                    &mut self.stream_rngs,
                    culture,
                    &frame_starts,
                    timing.frame_period,
                    &mut stripe,
                    threads,
                );
            } else {
                scan_chunk(
                    &self.plan,
                    &self.pixels,
                    &mut self.channels,
                    &mut self.stream_rngs,
                    culture,
                    timing.pixel_dwell,
                    &frame_starts,
                    &mut stripe,
                    threads,
                );
            }

            // Gather: each channel's slots within a row are a contiguous
            // run of columns (col = ch·cpc + slot), so the stripe unpacks
            // into row-major frames with one copy per (channel, row).
            for fi in 0..chunk {
                let mut samples = self.arena.acquire(geometry.len());
                for ch in 0..self.config.channels {
                    let block = &stripe[(ch * chunk + fi) * frame_len..][..frame_len];
                    for row in 0..rows {
                        samples[row * cols + ch * cpc..][..cpc]
                            .copy_from_slice(&block[row * cpc..][..cpc]);
                    }
                }
                out.push(Frame {
                    rows,
                    cols,
                    samples,
                });
            }
            self.arena.stripe = stripe;
            f0 += chunk;
        }

        Recording {
            geometry,
            timing,
            frames: out,
            nominal_voltage_gain: nominal_gain,
        }
    }

    /// Rebuilds the linearized fast-path coefficient tables around the
    /// operating point at `now`. Recording does this automatically at
    /// every recalibration boundary; this entry point exists so stage
    /// timings can be measured in isolation (and tables pre-warmed).
    pub fn relinearize(&mut self, now: Seconds) {
        self.linear.rebuild(
            &self.plan,
            &self.pixels,
            &self.channels,
            self.timing.pixel_dwell,
            now,
        );
    }

    /// Compiles the fast path's per-pixel culture source lists and returns
    /// the total number of `(neuron, weight)` pairs retained. Recording
    /// does this automatically once per call; this entry point exists for
    /// stage timing and diagnostics.
    pub fn compile_culture_sources(&mut self, culture: &Culture) -> usize {
        self.linear.compile_culture(&self.plan, culture)
    }

    /// The worker-thread count `opts` resolves to on this die (the value
    /// recorded by benchmarks instead of the `None` = "auto" request).
    pub fn resolved_scan_threads(&self, opts: ScanOptions) -> usize {
        resolve_threads(self.config.channels, opts)
    }

    /// Returns a finished recording's frame buffers to the arena so the
    /// next record call reuses them instead of allocating.
    pub fn recycle(&mut self, recording: Recording) {
        for f in recording.frames {
            self.arena.release(f.samples);
        }
    }

    /// Frame-arena pool statistics (fresh allocations vs pooled reuses).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Electrical test mode: measures each pixel's conversion gain
    /// (output volts per volt of cleft signal) by applying a known test
    /// amplitude capacitively — the gain map production test programs
    /// record before shipping a die. Requires a calibrated chip for
    /// meaningful numbers.
    pub fn gain_map(&mut self, test_amplitude: Volt, now: Seconds) -> Vec<f64> {
        let cols_per_ch = self.timing.columns_per_channel;
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x6A1);
        let mut out = vec![0.0; self.config.geometry.len()];
        // Long dwell + two reads (0 and test amplitude) per pixel.
        let dwell = Seconds::from_micro(10.0);
        for row in 0..self.config.geometry.rows() {
            for slot in 0..cols_per_ch {
                for ch_idx in 0..self.channels.len() {
                    let col = ch_idx * cols_per_ch + slot;
                    let idx = row * self.config.geometry.cols() + col;
                    if self.faults.channel_lost(ch_idx) {
                        out[idx] = 0.0;
                        continue;
                    }
                    let clip = self.pixels[idx].faults().clip_limit;
                    self.channels[ch_idx].reset_settling();
                    let i0 = self.pixels[idx].read(Volt::ZERO, now);
                    let v0 = clipped(
                        clip,
                        self.channels[ch_idx].process_sample(i0, dwell, &mut rng),
                    );
                    self.channels[ch_idx].reset_settling();
                    let i1 = self.pixels[idx].read(test_amplitude, now);
                    let v1 = clipped(
                        clip,
                        self.channels[ch_idx].process_sample(i1, dwell, &mut rng),
                    );
                    out[idx] = (v1 - v0) / test_amplitude.value();
                }
            }
        }
        out
    }

    /// Per-pixel zero-input offsets at the chain output (one instantaneous
    /// read of every pixel with no signal), for mismatch/calibration
    /// studies.
    pub fn offset_map(&mut self, now: Seconds) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0xBEEF);
        let cols_per_ch = self.timing.columns_per_channel;
        let mut out = vec![0.0; self.config.geometry.len()];
        for row in 0..self.config.geometry.rows() {
            for ch in &mut self.channels {
                ch.reset_settling();
            }
            for slot in 0..cols_per_ch {
                for ch_idx in 0..self.channels.len() {
                    let col = ch_idx * cols_per_ch + slot;
                    let idx = row * self.config.geometry.cols() + col;
                    if self.faults.channel_lost(ch_idx) {
                        out[idx] = 0.0;
                        continue;
                    }
                    let i_diff = self.pixels[idx].read(Volt::ZERO, now);
                    let v = self.channels[ch_idx].process_sample(
                        i_diff,
                        Seconds::from_micro(10.0),
                        &mut rng,
                    );
                    out[idx] = clipped(self.pixels[idx].faults().clip_limit, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsa_neuro::culture::{Culture, CultureConfig};
    use bsa_units::{Ampere, Meter};

    fn small_config() -> NeuroChipConfig {
        NeuroChipConfig {
            geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
            channels: 4,
            ..NeuroChipConfig::default()
        }
    }

    #[test]
    fn paper_timing_numbers() {
        let t = ScanTiming::new(ArrayGeometry::neuro_128x128(), Hertz::from_kilo(2.0), 16).unwrap();
        // Frame 500 µs, row 3.9 µs, dwell 488 ns, 8 columns per channel.
        assert!((t.frame_period.as_micro() - 500.0).abs() < 1e-9);
        assert!((t.row_period.as_micro() - 3.90625).abs() < 1e-6);
        assert_eq!(t.columns_per_channel, 8);
        assert!((t.pixel_dwell.as_nano() - 488.28).abs() < 0.1);
    }

    #[test]
    fn timing_rejects_bad_channel_split() {
        assert!(
            ScanTiming::new(ArrayGeometry::neuro_128x128(), Hertz::from_kilo(2.0), 10).is_err()
        );
        assert!(ScanTiming::new(ArrayGeometry::neuro_128x128(), Hertz::ZERO, 16).is_err());
    }

    #[test]
    fn sample_times_are_rolling_shutter() {
        let t = ScanTiming::new(ArrayGeometry::neuro_128x128(), Hertz::from_kilo(2.0), 16).unwrap();
        let t00 = t.sample_time(0, PixelAddress::new(0, 0));
        let t10 = t.sample_time(0, PixelAddress::new(1, 0));
        let t01 = t.sample_time(0, PixelAddress::new(0, 1));
        let t08 = t.sample_time(0, PixelAddress::new(0, 8));
        assert!(t10 > t00, "later rows sample later");
        assert!(t01 > t00, "later mux slots sample later");
        // Column 8 is slot 0 of channel 1: same time as column 0.
        assert_eq!(t08, t00);
        let next_frame = t.sample_time(1, PixelAddress::new(0, 0));
        assert!((next_frame.value() - 500e-6).abs() < 1e-12);
    }

    #[test]
    fn quiet_culture_records_near_zero_after_calibration() {
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let rec = chip.record(&culture, Seconds::ZERO, 5);
        assert_eq!(rec.len(), 5);
        assert!(chip.is_calibrated());
        // Residual output spread ≪ the output swing a 1 mV signal causes.
        let gain = rec.nominal_voltage_gain();
        for f in rec.frames() {
            for s in f.samples() {
                assert!(
                    s.abs() < gain * 2e-3,
                    "zero-signal output {s} vs 2 mV-equivalent {}",
                    gain * 2e-3
                );
            }
        }
    }

    #[test]
    fn uncalibrated_offsets_dominate() {
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let cal = chip.record(&culture, Seconds::ZERO, 1);
        let uncal = chip.record_uncalibrated(&culture, Seconds::ZERO, 1);
        let spread = |fr: &Frame| {
            let m = fr.samples().iter().sum::<f64>() / fr.samples().len() as f64;
            (fr.samples().iter().map(|x| (x - m).powi(2)).sum::<f64>() / fr.samples().len() as f64)
                .sqrt()
        };
        let s_cal = spread(&cal.frames()[0]);
        let s_uncal = spread(&uncal.frames()[0]);
        assert!(
            s_uncal > 10.0 * s_cal,
            "uncal {s_uncal} vs cal {s_cal}: calibration must win by ≫10×"
        );
    }

    #[test]
    fn spiking_neuron_appears_at_its_pixel() {
        use bsa_neuro::firing::FiringPattern;
        use bsa_neuro::junction::{ApTemplate, CleftJunction};

        let mut chip = NeuroChip::new(small_config()).unwrap();
        let geometry = chip.config().geometry;
        // Place one neuron over pixel (8, 8).
        let (x, y) = geometry.position_of(PixelAddress::new(8, 8));
        // A well-coupled neuron (tight cleft): 3× the nominal template,
        // still inside the paper's 100 µV – 5 mV window.
        let template =
            ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6)).scaled(3.0);
        let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        // Pixel (8, 8) of the 16×16 test array samples at 250 µs within
        // each 500 µs frame (row 8 of 16); place the spike so that sample
        // lands ~150 µs after the upstroke, inside the AP's main phase.
        culture.push(bsa_neuro::culture::CulturedNeuron {
            x,
            y,
            diameter: Meter::from_micro(30.0),
            pattern: FiringPattern::Silent,
            template,
            spikes: vec![Seconds::from_micro(2100.0)],
        });

        let rec = chip.record(&culture, Seconds::ZERO, 12); // 6 ms
                                                            // Remove each pixel's static offset (injection residual) the way
                                                            // any real readout pipeline does, then look for the transient.
        let detrended_peak = |series: &[f64]| {
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            series
                .iter()
                .map(|x| (x - mean).abs())
                .fold(0.0f64, f64::max)
        };
        let series = rec.pixel_series_input_referred(PixelAddress::new(8, 8));
        let peak = detrended_peak(&series);
        assert!(
            peak > 100e-6,
            "spike must appear ≥100 µV input-referred, got {peak}"
        );
        // A far-away pixel stays quiet.
        let far = rec.pixel_series_input_referred(PixelAddress::new(1, 1));
        let far_peak = detrended_peak(&far);
        assert!(far_peak < peak / 3.0, "far pixel {far_peak} vs {peak}");
    }

    #[test]
    fn offset_map_has_one_entry_per_pixel() {
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let map = chip.offset_map(Seconds::ZERO);
        assert_eq!(map.len(), 256);
    }

    #[test]
    fn gain_map_is_uniform_after_calibration() {
        let mut chip = NeuroChip::new(small_config()).unwrap();
        chip.calibrate(Seconds::ZERO);
        let map = chip.gain_map(Volt::from_milli(1.0), Seconds::ZERO);
        assert_eq!(map.len(), 256);
        let mean = map.iter().sum::<f64>() / map.len() as f64;
        let sd = (map.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / map.len() as f64).sqrt();
        // Nominal cleft-to-output gain is ~120 V/V; residual spread comes
        // from gm variation M1 calibration cannot equalize.
        assert!(mean > 50.0 && mean < 300.0, "mean gain = {mean}");
        assert!(sd / mean < 0.15, "gain spread = {}", sd / mean);
        assert!(map.iter().all(|g| *g > 0.0), "all pixels respond");
    }

    #[test]
    fn pixel_accessor_bounds_check() {
        let chip = NeuroChip::new(small_config()).unwrap();
        assert!(chip.pixel(PixelAddress::new(0, 0)).is_ok());
        assert!(chip.pixel(PixelAddress::new(16, 0)).is_err());
    }

    #[test]
    fn recording_accessors() {
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let rec = chip.record(&culture, Seconds::ZERO, 3);
        assert!(!rec.is_empty());
        assert_eq!(rec.pixel_series(PixelAddress::new(0, 0)).len(), 3);
        assert_eq!(rec.geometry().len(), 256);
        assert!(rec.nominal_voltage_gain() > 0.0);
    }

    #[test]
    fn self_test_masks_injected_dead_pixels() {
        use crate::health::{DegradationMode, PixelHealth};
        use bsa_faults::{FaultKind, InjectionPlan};
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let faults = InjectionPlan::new(21)
            .at(3, 4, FaultKind::DeadPixel)
            .at(10, 12, FaultKind::DeadPixel)
            .compile(16, 16);
        chip.inject_faults(&faults).unwrap();
        chip.calibrate(Seconds::ZERO);
        let h = chip.health();
        assert_eq!(
            h.state_at(PixelAddress::new(3, 4)).unwrap(),
            PixelHealth::Dead
        );
        assert_eq!(
            h.state_at(PixelAddress::new(10, 12)).unwrap(),
            PixelHealth::Dead
        );
        assert_eq!(h.dead_indices().len(), 2);
        let report = chip.yield_report();
        assert_eq!(report.dead, 2);
        assert_eq!(report.degradation, DegradationMode::Degraded);
    }

    #[test]
    fn lost_channel_goes_silent_and_is_masked() {
        use crate::health::PixelHealth;
        use bsa_faults::InjectionPlan;
        let mut chip = NeuroChip::new(small_config()).unwrap();
        // 16 columns over 4 channels: channel 1 serves columns 4–7.
        let faults = InjectionPlan::new(22).lose_channel(1).compile(16, 16);
        chip.inject_faults(&faults).unwrap();
        let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let rec = chip.record(&culture, Seconds::ZERO, 2);
        for row in 0..16 {
            for col in 4..8 {
                assert_eq!(rec.frames()[0].at(PixelAddress::new(row, col)), 0.0);
                assert_eq!(
                    chip.health().state_at(PixelAddress::new(row, col)).unwrap(),
                    PixelHealth::Dead
                );
            }
        }
        // A column on a live channel still responds and stays healthy.
        assert_eq!(
            chip.health().state_at(PixelAddress::new(0, 0)).unwrap(),
            PixelHealth::Healthy
        );
        let report = chip.yield_report();
        assert_eq!(report.lost_channels, vec![1]);
        assert_eq!(report.dead, 64);
    }

    #[test]
    fn gain_clipping_clamps_output_and_flags_pixel() {
        use crate::health::PixelHealth;
        use bsa_faults::{FaultKind, InjectionPlan};
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let clip = Volt::from_milli(50.0); // well inside the 5 mV window's swing
        let faults = InjectionPlan::new(23)
            .at(2, 2, FaultKind::GainClipping { limit: clip })
            .compile(16, 16);
        chip.inject_faults(&faults).unwrap();
        chip.calibrate(Seconds::ZERO);
        assert_eq!(
            chip.health().state_at(PixelAddress::new(2, 2)).unwrap(),
            PixelHealth::OutOfFamily
        );
        // A 5 mV test tone cannot exceed the clip at the output: the two
        // clipped reads differ by at most 2 × the limit.
        let map = chip.gain_map(Volt::from_milli(5.0), Seconds::ZERO);
        let idx = 2 * 16 + 2;
        assert!(
            map[idx] * 5e-3 <= 2.0 * clip.value() + 1e-12,
            "clipped gain = {}",
            map[idx]
        );
        let healthy_gain = map[0];
        assert!(
            map[idx] < 0.5 * healthy_gain,
            "clipped {} vs healthy {healthy_gain}",
            map[idx]
        );
    }

    #[test]
    fn leaky_pixel_is_flagged_out_of_family() {
        use crate::health::PixelHealth;
        use bsa_faults::{FaultKind, InjectionPlan};
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let faults = InjectionPlan::new(24)
            .at(
                5,
                5,
                FaultKind::LeakyElectrode {
                    leakage: Ampere::from_micro(2.0),
                },
            )
            .compile(16, 16);
        chip.inject_faults(&faults).unwrap();
        chip.calibrate(Seconds::ZERO);
        assert_eq!(
            chip.health().state_at(PixelAddress::new(5, 5)).unwrap(),
            PixelHealth::OutOfFamily,
            "a µA-class residual is far out of the injection-offset family"
        );
    }

    #[test]
    fn neuro_fault_geometry_is_checked() {
        use bsa_faults::InjectionPlan;
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let wrong = InjectionPlan::new(1).compile(8, 16);
        assert!(matches!(
            chip.inject_faults(&wrong),
            Err(ChipError::FaultGeometryMismatch { .. })
        ));
    }

    #[test]
    fn clean_neuro_die_reports_full_performance() {
        use crate::health::DegradationMode;
        let mut chip = NeuroChip::new(small_config()).unwrap();
        chip.calibrate(Seconds::ZERO);
        let report = chip.yield_report();
        assert_eq!(report.degradation, DegradationMode::FullPerformance);
        assert_eq!(report.total_channels, 4);
        assert!(report.is_clean());
    }

    #[test]
    fn random_culture_smoke_test() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = CultureConfig {
            neuron_count: 5,
            ..CultureConfig::default()
        };
        let mut culture = Culture::random(&cfg, &mut rng);
        culture.generate_spikes(Seconds::from_milli(20.0), &mut rng);
        let mut chip = NeuroChip::new(small_config()).unwrap();
        let rec = chip.record(&culture, Seconds::ZERO, 10);
        assert_eq!(rec.len(), 10);
        assert!(rec
            .frames()
            .iter()
            .all(|f| f.samples().iter().all(|s| s.is_finite())));
    }
}
