//! Station-wide counters, shared across the accept loop and every
//! session thread as plain atomics (no locks on the hot streaming path).

use bsa_link::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counter block behind an `Arc`. All updates are `Relaxed`: the
/// counters are monotonic telemetry, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct StationStats {
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_active: AtomicU64,
    pub(crate) chips_attached: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) frames_served: AtomicU64,
    pub(crate) frames_dropped: AtomicU64,
    pub(crate) chunks_sent: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) queue_depth: AtomicU64,
    pub(crate) queue_peak: AtomicU64,
}

impl StationStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements a gauge, saturating at zero.
    pub(crate) fn sub(counter: &AtomicU64, n: u64) {
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically claims a session slot: increments `sessions_active`
    /// only if it is currently below `max`. Returns `false` (and leaves
    /// the gauge untouched) when the station is full. A single CAS loop
    /// — not load-then-add — so concurrent accepts can never over-admit
    /// past the limit.
    pub(crate) fn try_open_session(&self, max: u64) -> bool {
        let mut cur = self.sessions_active.load(Ordering::Relaxed);
        loop {
            if cur >= max {
                return false;
            }
            match self.sessions_active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the outbound-queue depth gauge and folds it into the peak.
    pub(crate) fn queue_enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn queue_exit(&self) {
        Self::sub(&self.queue_depth, 1);
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            chips_attached: self.chips_attached.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            frames_served: self.frames_served.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            chunks_sent: self.chunks_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_open_session_respects_the_limit_sequentially() {
        let stats = StationStats::default();
        assert!(stats.try_open_session(2));
        assert!(stats.try_open_session(2));
        assert!(!stats.try_open_session(2));
        assert_eq!(stats.sessions_active.load(Ordering::Relaxed), 2);
        assert_eq!(stats.sessions_opened.load(Ordering::Relaxed), 2);
        StationStats::sub(&stats.sessions_active, 1);
        assert!(stats.try_open_session(2));
        assert!(!stats.try_open_session(2));
    }

    #[test]
    fn try_open_session_never_over_admits_under_contention() {
        use std::sync::Barrier;

        const MAX: u64 = 8;
        const THREADS: usize = 16;
        let stats = std::sync::Arc::new(StationStats::default());
        let barrier = std::sync::Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let stats = std::sync::Arc::clone(&stats);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    stats.try_open_session(MAX)
                })
            })
            .collect();
        let admitted = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .filter(|&opened| opened)
            .count();
        assert_eq!(admitted as u64, MAX);
        assert_eq!(stats.sessions_active.load(Ordering::Relaxed), MAX);
        assert_eq!(stats.sessions_opened.load(Ordering::Relaxed), MAX);
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let stats = StationStats::default();
        stats.queue_enter();
        stats.queue_enter();
        stats.queue_exit();
        stats.queue_enter();
        let snap = stats.snapshot();
        assert_eq!(snap.queue_peak, 2);
        stats.queue_exit();
        stats.queue_exit();
        stats.queue_exit(); // extra exit saturates at zero
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0);
    }
}
