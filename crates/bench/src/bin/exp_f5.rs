//! Experiment E-F5: the cell–chip junction (paper Fig. 5).
//!
//! Sweeps the point-contact model: cleft height vs seal resistance and
//! action-potential amplitude at the sensor, and checks that the 7.8 µm
//! pixel pitch covers every neuron position for the paper's 10–100 µm
//! neuron diameters.

use bsa_bench::{banner, eng, sig, Table};
use bsa_neuro::junction::{ApTemplate, CleftJunction};
use bsa_units::{Meter, Seconds};

fn main() {
    banner(
        "E-F5",
        "Fig. 5 (capacitively probed cleft under a neuron)",
        "~60 nm cleft; sensor signals 100 µV – 5 mV; 7.8 µm pitch monitors every cell position",
    );

    let dt = Seconds::new(10e-6);

    // (a) Cleft-height sweep at fixed 20 µm contact.
    let mut t = Table::new(
        "Cleft height vs seal resistance and AP amplitude at the sensor",
        &["cleft height", "R_seal", "AP peak-to-peak at sensor"],
    );
    for h_nm in [20.0, 40.0, 60.0, 100.0, 200.0] {
        let j = CleftJunction::new(Meter::from_nano(h_nm), Meter::from_micro(10.0), 0.7)
            .expect("valid junction");
        let template = ApTemplate::from_hh(&j, dt);
        t.add_row(vec![
            eng(h_nm * 1e-9, "m"),
            eng(j.seal_resistance().value(), "Ω"),
            eng(template.amplitude().value(), "V"),
        ]);
    }
    t.print();
    println!();

    // (b) Contact-size sweep at the nominal 60 nm cleft.
    let mut t = Table::new(
        "Contact radius vs AP amplitude (60 nm cleft)",
        &["contact radius", "attached area", "AP peak-to-peak"],
    );
    let mut amplitudes = Vec::new();
    for r_um in [3.0, 5.0, 10.0, 20.0, 40.0] {
        let j = CleftJunction::new(Meter::from_nano(60.0), Meter::from_micro(r_um), 0.7)
            .expect("valid junction");
        let template = ApTemplate::from_hh(&j, dt);
        amplitudes.push(template.amplitude().value());
        t.add_row(vec![
            eng(r_um * 1e-6, "m"),
            format!("{:.0} µm²", j.contact_area().value() * 1e12),
            eng(template.amplitude().value(), "V"),
        ]);
    }
    t.print();
    println!();
    let lo = amplitudes.iter().cloned().fold(f64::MAX, f64::min);
    let hi = amplitudes.iter().cloned().fold(0.0, f64::max);
    println!(
        "Amplitude window across physiological geometry: {} – {} (paper: 100 µV – 5 mV).",
        eng(lo, "V"),
        eng(hi, "V")
    );
    println!();

    // (c) Pitch coverage: worst-case number of pixels receiving ≥50 % of
    // the junction signal (soma footprint plus its Gaussian skirt,
    // σ = r/2) for a neuron of diameter d, over all grid placements.
    let pitch = 7.8e-6;
    let mut t = Table::new(
        "Pixel coverage vs neuron diameter (7.8 µm pitch, ≥50 % coupling)",
        &["neuron diameter", "worst-case coupled pixels", "monitored"],
    );
    for d_um in [10.0, 20.0, 50.0, 100.0] {
        let d = d_um * 1e-6;
        let r = d / 2.0;
        // ≥50 % coupling reach: w(d) = exp(−½((d−r)/(r/2))²) ≥ 0.5.
        let reach_50 = r * (1.0 + 0.5 * (2.0f64.ln() * 2.0).sqrt());
        // Worst case over sub-pixel offsets of the soma center.
        let mut worst = usize::MAX;
        let steps = 20;
        for ox in 0..steps {
            for oy in 0..steps {
                let cx = ox as f64 / steps as f64 * pitch;
                let cy = oy as f64 / steps as f64 * pitch;
                let mut covered = 0usize;
                let span = (reach_50 / pitch).ceil() as i64 + 1;
                for gx in -span..=span {
                    for gy in -span..=span {
                        let px = gx as f64 * pitch;
                        let py = gy as f64 * pitch;
                        if ((px - cx).powi(2) + (py - cy).powi(2)).sqrt() <= reach_50 {
                            covered += 1;
                        }
                    }
                }
                worst = worst.min(covered);
            }
        }
        t.add_row(vec![
            eng(d, "m"),
            worst.to_string(),
            (worst >= 1).to_string(),
        ]);
    }
    t.print();
    println!();
    println!("Every neuron of ≥10 µm diameter covers at least one pixel at any position —");
    println!("the paper's claim that the pitch monitors each cell independent of position.");
    let _ = sig(0.0, 1);
}
