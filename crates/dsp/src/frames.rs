//! Frame-stack processing for the 128×128 neural array.
//!
//! A recording is a stack of frames (row-major pixel samples). Analysis
//! removes each pixel's static baseline (offsets survive even after
//! on-chip calibration: charge-injection residuals, channel gain spread)
//! and produces per-pixel activity statistics used to localize neurons on
//! the surface.

use crate::stats::median;
use serde::{Deserialize, Serialize};

/// A stack of equally sized frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameStack {
    rows: usize,
    cols: usize,
    /// One Vec per frame, row-major.
    frames: Vec<Vec<f64>>,
}

impl FrameStack {
    /// Creates a stack from frames.
    ///
    /// # Panics
    ///
    /// Panics if any frame's length differs from `rows·cols`.
    pub fn new(rows: usize, cols: usize, frames: Vec<Vec<f64>>) -> Self {
        for (k, f) in frames.iter().enumerate() {
            assert_eq!(
                f.len(),
                rows * cols,
                "frame {k} has {} samples, expected {}",
                f.len(),
                rows * cols
            );
        }
        Self { rows, cols, frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if the stack has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Rows per frame.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per frame.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One frame's row-major samples.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn frame(&self, index: usize) -> &[f64] {
        &self.frames[index]
    }

    /// Time series of one pixel across the stack.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of range.
    pub fn pixel_series(&self, row: usize, col: usize) -> Vec<f64> {
        assert!(row < self.rows && col < self.cols);
        let idx = row * self.cols + col;
        self.frames.iter().map(|f| f[idx]).collect()
    }

    /// Per-pixel median across frames — the static baseline map.
    pub fn baseline_map(&self) -> Vec<f64> {
        if self.frames.is_empty() {
            return vec![0.0; self.rows * self.cols];
        }
        (0..self.rows * self.cols)
            .map(|idx| {
                let series: Vec<f64> = self.frames.iter().map(|f| f[idx]).collect();
                // Frames are non-empty here (guarded above).
                median(&series).unwrap_or(0.0)
            })
            .collect()
    }

    /// Returns a baseline-subtracted copy of the stack.
    #[must_use]
    pub fn detrended(&self) -> Self {
        let base = self.baseline_map();
        let frames = self
            .frames
            .iter()
            .map(|f| f.iter().zip(base.iter()).map(|(x, b)| x - b).collect())
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            frames,
        }
    }

    /// Per-pixel peak |deviation from baseline| — the activity map used to
    /// localize firing neurons under the array.
    pub fn activity_map(&self) -> Vec<f64> {
        let base = self.baseline_map();
        (0..self.rows * self.cols)
            .map(|idx| {
                self.frames
                    .iter()
                    .map(|f| (f[idx] - base[idx]).abs())
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Per-pixel standard deviation around the baseline.
    pub fn std_map(&self) -> Vec<f64> {
        let base = self.baseline_map();
        (0..self.rows * self.cols)
            .map(|idx| {
                if self.frames.len() < 2 {
                    return 0.0;
                }
                let var = self
                    .frames
                    .iter()
                    .map(|f| (f[idx] - base[idx]).powi(2))
                    .sum::<f64>()
                    / (self.frames.len() - 1) as f64;
                var.sqrt()
            })
            .collect()
    }

    /// Centroid (row, col) of the top-activity region: activity-weighted
    /// mean over pixels above `fraction`·max activity. Returns `None` for
    /// an all-zero map.
    pub fn activity_centroid(&self, fraction: f64) -> Option<(f64, f64)> {
        let act = self.activity_map();
        let max = act.iter().cloned().fold(0.0, f64::max);
        if max <= 0.0 {
            return None;
        }
        let thr = fraction.clamp(0.0, 1.0) * max;
        let mut wsum = 0.0;
        let mut rsum = 0.0;
        let mut csum = 0.0;
        for (idx, &a) in act.iter().enumerate() {
            if a >= thr {
                let r = (idx / self.cols) as f64;
                let c = (idx % self.cols) as f64;
                wsum += a;
                rsum += a * r;
                csum += a * c;
            }
        }
        Some((rsum / wsum, csum / wsum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4×4 stack with a static offset pattern plus one active pixel.
    fn stack_with_event() -> FrameStack {
        let rows = 4;
        let cols = 4;
        let mut frames = Vec::new();
        for t in 0..10 {
            let mut f: Vec<f64> = (0..16).map(|i| i as f64 * 0.1).collect(); // offsets
            if t == 5 {
                f[2 * cols + 1] += 3.0; // event at (2, 1)
            }
            frames.push(f);
        }
        FrameStack::new(rows, cols, frames)
    }

    #[test]
    fn baseline_recovers_static_offsets() {
        let s = stack_with_event();
        let base = s.baseline_map();
        for (i, b) in base.iter().enumerate() {
            assert!((b - i as f64 * 0.1).abs() < 1e-12, "pixel {i}");
        }
    }

    #[test]
    fn detrended_removes_offsets_keeps_events() {
        let s = stack_with_event().detrended();
        // Static pixels all ~0.
        assert!(s.pixel_series(0, 0).iter().all(|x| x.abs() < 1e-12));
        // The event survives.
        let series = s.pixel_series(2, 1);
        assert!((series[5] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn activity_map_highlights_the_event_pixel() {
        let s = stack_with_event();
        let act = s.activity_map();
        let max_idx = act
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 2 * 4 + 1);
        assert!((act[max_idx] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_localizes_the_event() {
        let s = stack_with_event();
        let (r, c) = s.activity_centroid(0.5).unwrap();
        assert!((r - 2.0).abs() < 1e-9);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_none_for_silent_stack() {
        let s = FrameStack::new(2, 2, vec![vec![1.0; 4]; 5]);
        assert_eq!(s.activity_centroid(0.5), None);
    }

    #[test]
    fn std_map_zero_for_static_pixels() {
        let s = stack_with_event();
        let std = s.std_map();
        assert!(std[0] < 1e-12);
        assert!(std[2 * 4 + 1] > 0.5);
    }

    #[test]
    fn pixel_series_extraction() {
        let s = stack_with_event();
        let series = s.pixel_series(2, 1);
        assert_eq!(series.len(), 10);
        // Pixel (2, 1) is flat index 9: offset 0.9, +3.0 at frame 5.
        assert!((series[0] - 0.9).abs() < 1e-12);
        assert!((series[5] - 3.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_frame_size_rejected() {
        FrameStack::new(2, 2, vec![vec![0.0; 3]]);
    }

    #[test]
    fn empty_stack_behaviour() {
        let s = FrameStack::new(2, 2, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.baseline_map(), vec![0.0; 4]);
        assert_eq!(s.std_map(), vec![0.0; 4]);
    }
}
