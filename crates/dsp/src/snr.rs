//! Signal-to-noise estimation.

use crate::stats::mad_sigma_with;

/// RMS of a slice (0 for an empty slice).
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }
}

/// Reusable working memory for [`peak_snr_with`], so SNR sweeps over many
/// pixels allocate once instead of per series.
#[derive(Debug, Clone, Default)]
pub struct SnrScratch {
    is_event: Vec<bool>,
    noise: Vec<f64>,
    sort: Vec<f64>,
}

impl SnrScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Peak SNR of events in a series: the mean |peak| of the samples at
/// `event_indices` over the robust noise σ of the remaining samples.
///
/// Returns `None` if there are no events or fewer than 8 noise samples.
pub fn peak_snr(series: &[f64], event_indices: &[usize]) -> Option<f64> {
    peak_snr_with(series, event_indices, &mut SnrScratch::new())
}

/// [`peak_snr`] with caller-provided scratch space — the allocation-free
/// form for per-pixel sweeps.
pub fn peak_snr_with(
    series: &[f64],
    event_indices: &[usize],
    scratch: &mut SnrScratch,
) -> Option<f64> {
    if event_indices.is_empty() {
        return None;
    }
    scratch.is_event.clear();
    scratch.is_event.resize(series.len(), false);
    for &i in event_indices {
        // Blank ±2 samples around each event from the noise estimate.
        // Out-of-range indices blank nothing (empty window) instead of
        // panicking, matching the get()-based peak lookup below.
        let lo = i.saturating_sub(2).min(series.len());
        let hi = i.saturating_add(3).min(series.len());
        if let Some(window) = scratch.is_event.get_mut(lo..hi) {
            window.fill(true);
        }
    }
    scratch.noise.clear();
    scratch.noise.extend(
        series
            .iter()
            .zip(scratch.is_event.iter())
            .filter(|(_, &e)| !e)
            .map(|(x, _)| *x),
    );
    if scratch.noise.len() < 8 {
        return None;
    }
    let sigma = mad_sigma_with(&scratch.noise, &mut scratch.sort)
        .ok()?
        .max(1e-30);
    let peak_mean: f64 = event_indices
        .iter()
        .filter_map(|&i| series.get(i))
        .map(|x| x.abs())
        .sum::<f64>()
        / event_indices.len() as f64;
    Some(peak_mean / sigma)
}

/// SNR in dB from a linear ratio.
pub fn to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_basics() {
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(rms(&[3.0]), 3.0);
        assert!((rms(&[1.0, -1.0, 1.0, -1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snr_of_clean_events() {
        // Four-level deterministic noise (non-degenerate MAD) + 10× spikes.
        let cycle = [1.0, -1.0, 0.5, -0.5];
        let mut series: Vec<f64> = (0..200).map(|k| cycle[k % 4]).collect();
        series[50] = 10.0;
        series[150] = -10.0;
        let snr = peak_snr(&series, &[50, 150]).unwrap();
        // MAD of the cycle: median |x| = 0.75 → σ ≈ 1.11; SNR ≈ 9.
        assert!(snr > 5.0 && snr < 15.0, "snr = {snr}");
    }

    #[test]
    fn snr_none_without_events_or_noise() {
        let series = vec![0.0; 100];
        assert!(peak_snr(&series, &[]).is_none());
        assert!(peak_snr(&series[..5], &[0]).is_none());
    }

    #[test]
    fn event_blanking_keeps_noise_estimate_clean() {
        // Huge events must not inflate the noise floor.
        let mut series: Vec<f64> = (0..400)
            .map(|k| if k % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        for i in (20..400).step_by(40) {
            series[i] = 50.0;
        }
        let events: Vec<usize> = (20..400).step_by(40).collect();
        let snr = peak_snr(&series, &events).unwrap();
        assert!(snr > 200.0, "snr = {snr}");
    }

    #[test]
    fn db_conversion() {
        assert_eq!(to_db(10.0), 20.0);
        assert!((to_db(2.0) - 6.0206).abs() < 1e-3);
    }
}
