// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-control` — the closed-loop recovery controller that turns the
//! repo from "readout" into an autonomous instrument.
//!
//! The paper's drug-screening pipeline assumes an instrument that keeps
//! producing valid data while pixels die, baselines drift, and channels
//! clip. `bsa-faults` injects those defects and the chip models observe
//! them; this crate closes the loop:
//!
//! * [`StateClassifier`] folds streamed frames, assay counts and the
//!   wire [`YieldSummary`](bsa_link::YieldSummary) into per-pixel
//!   [`PixelState`]s and a per-chip [`ChipCondition`] (healthy,
//!   baseline-drift, channel-loss, clipping, hybridization-detected).
//! * [`PolicyEngine`] is a deterministic function of the classified
//!   state plus a seeded RNG stream, emitting typed [`Action`]s
//!   (recalibrate, mask pixels, re-run assay, detach/reattach).
//! * [`Controller`] executes actions through any [`ControlLink`]
//!   (usually [`StationLink`] over a `StationClient`) with per-request
//!   deadlines, bounded retries, and deterministic exponential
//!   [`Backoff`] — so the loop survives chip faults *and* transport
//!   faults.
//!
//! # Determinism boundary
//!
//! Everything inside the loop is deterministic: classification is pure,
//! the policy RNG is seeded, and recovery traces ([`RecoveryTrace`])
//! replay bit-identically for the same seeded scenario. Wall-clock time
//! enters only at the link edge — socket deadlines and backoff pauses —
//! exactly as the station's own determinism boundary draws it
//! (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod classifier;
pub mod controller;
pub mod error;
pub mod link;
pub mod policy;
pub mod scenario;
pub mod trace;

pub use backoff::Backoff;
pub use classifier::{
    ChipAssessment, ChipCondition, ClassifierConfig, PixelState, StateClassifier,
};
pub use controller::{ChipTarget, Controller, RetryPolicy, RunOutcome};
pub use error::ControlError;
pub use link::{ControlLink, StationLink};
pub use policy::{Action, PolicyConfig, PolicyEngine};
pub use scenario::{plan_to_spec, ScenarioReport};
pub use trace::{RecoveryTrace, TraceEvent};
