//! Spike sorting: separating the units recorded at one pixel.
//!
//! A pixel under two overlapping neurons sees both units' action
//! potentials; sorting clusters the detected snippets by waveform shape so
//! each unit gets its own spike train. Snippets are reduced to simple
//! shape features and clustered with deterministic k-means.

use serde::{Deserialize, Serialize};

/// A detected spike snippet cut from a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snippet {
    /// Sample index of the detection in the source series.
    pub index: usize,
    /// The waveform window (aligned on the detection sample).
    pub samples: Vec<f64>,
}

/// Cuts fixed-size snippets around detection indices (windows that would
/// cross the series edges are skipped).
pub fn extract_snippets(
    series: &[f64],
    detections: &[usize],
    pre: usize,
    post: usize,
) -> Vec<Snippet> {
    detections
        .iter()
        .filter_map(|&i| {
            if i >= pre && i + post < series.len() {
                Some(Snippet {
                    index: i,
                    samples: series[i - pre..=i + post].to_vec(),
                })
            } else {
                None
            }
        })
        .collect()
}

/// Shape features of one snippet: peak, trough, peak-to-trough distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeFeatures {
    /// Maximum sample value.
    pub peak: f64,
    /// Minimum sample value.
    pub trough: f64,
    /// Samples between the peak and the trough (signed).
    pub width: f64,
}

impl SpikeFeatures {
    /// Computes features from a snippet.
    ///
    /// # Panics
    ///
    /// Panics if the snippet is empty.
    pub fn of(snippet: &Snippet) -> Self {
        assert!(!snippet.samples.is_empty(), "empty snippet");
        let (mut peak, mut peak_i) = (f64::MIN, 0usize);
        let (mut trough, mut trough_i) = (f64::MAX, 0usize);
        for (i, &x) in snippet.samples.iter().enumerate() {
            if x > peak {
                peak = x;
                peak_i = i;
            }
            if x < trough {
                trough = x;
                trough_i = i;
            }
        }
        Self {
            peak,
            trough,
            width: trough_i as f64 - peak_i as f64,
        }
    }

    fn as_vec(&self) -> [f64; 3] {
        [self.peak, self.trough, self.width]
    }
}

/// Result of sorting: cluster label per snippet plus the cluster means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortResult {
    /// Cluster label (0-based) per input snippet.
    pub labels: Vec<usize>,
    /// Cluster centroids in feature space (peak, trough, width).
    pub centroids: Vec<[f64; 3]>,
}

impl SortResult {
    /// Spike indices assigned to cluster `k`.
    pub fn unit_spikes(&self, snippets: &[Snippet], k: usize) -> Vec<usize> {
        self.labels
            .iter()
            .zip(snippets)
            .filter(|(l, _)| **l == k)
            .map(|(_, s)| s.index)
            .collect()
    }

    /// Number of snippets in each cluster.
    pub fn cluster_sizes(&self, k: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; k];
        for l in &self.labels {
            if *l < k {
                sizes[*l] += 1;
            }
        }
        sizes
    }
}

/// Sorts snippets into `k` units with deterministic k-means on the shape
/// features (features are z-scored per dimension; initial centroids are
/// the snippets at evenly spaced quantiles of the peak amplitude).
///
/// # Panics
///
/// Panics if `k == 0` or there are fewer snippets than clusters.
pub fn sort_spikes(snippets: &[Snippet], k: usize) -> SortResult {
    assert!(k > 0, "need at least one cluster");
    assert!(
        snippets.len() >= k,
        "need at least as many snippets as clusters"
    );
    let feats: Vec<[f64; 3]> = snippets
        .iter()
        .map(|s| SpikeFeatures::of(s).as_vec())
        .collect();

    // Z-score per dimension (avoid one feature dominating).
    let mut mean = [0.0f64; 3];
    let mut sd = [0.0f64; 3];
    for f in &feats {
        for d in 0..3 {
            mean[d] += f[d];
        }
    }
    for m in &mut mean {
        *m /= feats.len() as f64;
    }
    for f in &feats {
        for d in 0..3 {
            sd[d] += (f[d] - mean[d]).powi(2);
        }
    }
    for s in &mut sd {
        *s = (*s / feats.len() as f64).sqrt().max(1e-12);
    }
    let normed: Vec<[f64; 3]> = feats
        .iter()
        .map(|f| {
            let mut out = [0.0; 3];
            for d in 0..3 {
                out[d] = (f[d] - mean[d]) / sd[d];
            }
            out
        })
        .collect();

    // Deterministic init: order snippets by peak and seed the centroids at
    // the extremes and evenly spaced quantiles between them.
    let mut order: Vec<usize> = (0..normed.len()).collect();
    order.sort_by(|&a, &b| normed[a][0].total_cmp(&normed[b][0]));
    let mut centroids: Vec<[f64; 3]> = if k == 1 {
        vec![normed[order[normed.len() / 2]]]
    } else {
        (0..k)
            .map(|j| normed[order[j * (normed.len() - 1) / (k - 1)]])
            .collect()
    };

    let dist2 = |a: &[f64; 3], b: &[f64; 3]| -> f64 { (0..3).map(|d| (a[d] - b[d]).powi(2)).sum() };

    let mut labels = vec![0usize; normed.len()];
    for _ in 0..50 {
        // Assign.
        let mut changed = false;
        for (i, f) in normed.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| dist2(f, &centroids[a]).total_cmp(&dist2(f, &centroids[b])))
                .unwrap_or(0);
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![[0.0f64; 3]; k];
        let mut counts = vec![0usize; k];
        for (f, &l) in normed.iter().zip(&labels) {
            for d in 0..3 {
                sums[l][d] += f[d];
            }
            counts[l] += 1;
        }
        for j in 0..k {
            if counts[j] > 0 {
                for d in 0..3 {
                    centroids[j][d] = sums[j][d] / counts[j] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // De-normalize centroids back to feature units.
    let centroids = centroids
        .into_iter()
        .map(|c| {
            let mut out = [0.0; 3];
            for d in 0..3 {
                out[d] = c[d] * sd[d] + mean[d];
            }
            out
        })
        .collect();
    SortResult { labels, centroids }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Series with two unit types: big biphasic and small monophasic.
    fn two_unit_series() -> (Vec<f64>, Vec<usize>, Vec<usize>) {
        let n = 2000;
        let mut series = vec![0.0f64; n];
        // Deterministic small noise.
        let mut state = 17u64;
        for s in series.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *s = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.02;
        }
        let unit_a: Vec<usize> = (100..2000).step_by(400).collect();
        let unit_b: Vec<usize> = (300..2000).step_by(400).collect();
        for &i in &unit_a {
            series[i] += 1.0;
            series[i + 1] -= 0.8;
        }
        for &i in &unit_b {
            series[i] += 0.4;
            series[i + 1] += 0.1;
        }
        (series, unit_a, unit_b)
    }

    #[test]
    fn snippets_extracted_around_detections() {
        let series: Vec<f64> = (0..100).map(|k| k as f64).collect();
        let snips = extract_snippets(&series, &[10, 50, 98], 3, 4);
        // Index 98 would cross the right edge: skipped.
        assert_eq!(snips.len(), 2);
        assert_eq!(snips[0].samples.len(), 8);
        assert_eq!(snips[0].samples[3], 10.0, "aligned on the detection");
    }

    #[test]
    fn features_capture_shape() {
        let s = Snippet {
            index: 5,
            samples: vec![0.0, 1.0, -0.5, 0.0],
        };
        let f = SpikeFeatures::of(&s);
        assert_eq!(f.peak, 1.0);
        assert_eq!(f.trough, -0.5);
        assert_eq!(f.width, 1.0);
    }

    #[test]
    fn two_units_are_separated() {
        let (series, unit_a, unit_b) = two_unit_series();
        let mut detections: Vec<usize> = unit_a.iter().chain(unit_b.iter()).copied().collect();
        detections.sort_unstable();
        let snips = extract_snippets(&series, &detections, 2, 4);
        let result = sort_spikes(&snips, 2);

        // Every unit-A spike lands in one cluster, every unit-B in the other.
        let label_of = |idx: usize| -> usize {
            let pos = snips.iter().position(|s| s.index == idx).unwrap();
            result.labels[pos]
        };
        let a_label = label_of(unit_a[0]);
        let b_label = label_of(unit_b[0]);
        assert_ne!(a_label, b_label, "units must get distinct clusters");
        for &i in &unit_a {
            assert_eq!(label_of(i), a_label, "unit A spike at {i}");
        }
        for &i in &unit_b {
            assert_eq!(label_of(i), b_label, "unit B spike at {i}");
        }
    }

    #[test]
    fn unit_spike_trains_are_recovered() {
        let (series, unit_a, _) = two_unit_series();
        let mut detections: Vec<usize> = (100..2000).step_by(400).collect();
        detections.extend((300..2000).step_by(400));
        detections.sort_unstable();
        let snips = extract_snippets(&series, &detections, 2, 4);
        let result = sort_spikes(&snips, 2);
        let sizes = result.cluster_sizes(2);
        assert_eq!(sizes.iter().sum::<usize>(), snips.len());
        // One of the clusters is exactly unit A's train.
        let t0 = result.unit_spikes(&snips, 0);
        let t1 = result.unit_spikes(&snips, 1);
        assert!(t0 == unit_a || t1 == unit_a, "{t0:?} / {t1:?}");
    }

    #[test]
    fn single_cluster_takes_everything() {
        let (series, _, _) = two_unit_series();
        let detections: Vec<usize> = (100..2000).step_by(400).collect();
        let snips = extract_snippets(&series, &detections, 2, 4);
        let result = sort_spikes(&snips, 1);
        assert!(result.labels.iter().all(|l| *l == 0));
        assert_eq!(result.centroids.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least as many snippets")]
    fn rejects_more_clusters_than_snippets() {
        let snips = vec![Snippet {
            index: 0,
            samples: vec![1.0],
        }];
        sort_spikes(&snips, 2);
    }

    #[test]
    fn sorting_is_deterministic() {
        let (series, unit_a, unit_b) = two_unit_series();
        let mut detections: Vec<usize> = unit_a.iter().chain(unit_b.iter()).copied().collect();
        detections.sort_unstable();
        let snips = extract_snippets(&series, &detections, 2, 4);
        let a = sort_spikes(&snips, 2);
        let b = sort_spikes(&snips, 2);
        assert_eq!(a, b);
    }
}
