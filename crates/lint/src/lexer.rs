//! A minimal Rust lexer: just enough token structure for the rule passes.
//!
//! The workspace vendors no `syn`/`proc-macro2`, so the analyzer lexes Rust
//! itself. The rules only need identifiers and punctuation with comments,
//! strings and char/lifetime ambiguity resolved — full expression parsing
//! is deliberately out of scope.

/// One lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// The token kinds the rule passes distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match` is yielded as `match`).
    Ident(String),
    /// Lifetime such as `'a` (payload excludes the quote).
    Lifetime(String),
    /// Any literal: string, raw string, byte string, char, or number.
    /// Integer literals carry their value (suffix and `_` separators
    /// stripped, `0x`/`0o`/`0b` radixes resolved) so the dataflow passes
    /// can reason about constant indices; every other literal — and any
    /// integer too large for `u64` — carries `None`.
    Literal(Option<u64>),
    /// Single punctuation character (`.`, `[`, `::` is two `:` tokens).
    Punct(char),
}

impl Token {
    /// The identifier payload, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }

    /// `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == name)
    }

    /// The integer value, if this token is an integer literal that fits
    /// in `u64`.
    pub fn int_value(&self) -> Option<u64> {
        match &self.kind {
            TokenKind::Literal(v) => *v,
            _ => None,
        }
    }
}

/// Lexes Rust source into a token stream, skipping comments (line, block,
/// doc) and resolving the `'a` lifetime vs `'a'` char-literal ambiguity.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => self.lex_string(line),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.lex_raw_or_byte(line),
                '\'' => self.lex_char_or_lifetime(line),
                c if c.is_ascii_digit() => self.lex_number(line),
                c if c == '_' || c.is_alphanumeric() => self.lex_ident(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.tokens
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self) {
        // Consume `/*`; block comments nest in Rust.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn lex_string(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal(None), line);
    }

    /// `true` at `r"`, `r#"`, `b"`, `br"`, `rb…` starts (raw/byte strings).
    fn starts_raw_or_byte_string(&self) -> bool {
        let mut i = 0;
        // Up to two prefix letters (`r`, `b`, `br`, `rb`).
        while i < 2 && matches!(self.peek(i), Some('r') | Some('b')) {
            i += 1;
        }
        if i == 0 {
            return false;
        }
        let mut j = i;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        // `b'x'` byte char counts too; it lexes like a char literal.
        matches!(self.peek(j), Some('"'))
            || (i == 1 && self.peek(0) == Some('b') && self.peek(1) == Some('\''))
    }

    fn lex_raw_or_byte(&mut self, line: usize) {
        let mut raw = false;
        while matches!(self.peek(0), Some('r') | Some('b')) {
            if self.peek(0) == Some('r') {
                raw = true;
            }
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // Byte char `b'x'`.
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal(None), line);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        if raw {
            // Scan for `"` followed by `hashes` hash marks.
            'outer: loop {
                match self.bump() {
                    None => break,
                    Some('"') => {
                        for k in 0..hashes {
                            if self.peek(k) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    Some(_) => {}
                }
            }
        } else {
            // Plain byte string: escapes apply.
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.push(TokenKind::Literal(None), line);
    }

    fn lex_char_or_lifetime(&mut self, line: usize) {
        self.bump(); // the quote
        let first = self.peek(0);
        let is_lifetime = match first {
            Some(c) if c == '_' || c.is_alphabetic() => {
                // `'a'` is a char, `'a` / `'static` are lifetimes: scan the
                // identifier run and check for a closing quote.
                let mut k = 1;
                while matches!(self.peek(k), Some(c) if c == '_' || c.is_alphanumeric()) {
                    k += 1;
                }
                self.peek(k) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let mut name = String::new();
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                if let Some(c) = self.bump() {
                    name.push(c);
                }
            }
            self.push(TokenKind::Lifetime(name), line);
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Literal(None), line);
        }
    }

    fn lex_number(&mut self, line: usize) {
        // Numbers (including `1e-9`, `0xFF`, `1_000u64`, `1.5f64`): consume
        // the alphanumeric/underscore/dot run plus exponent signs.
        let mut prev = '0';
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let exponent_sign = (c == '+' || c == '-') && (prev == 'e' || prev == 'E');
            if c == '_' || c == '.' || c.is_alphanumeric() || exponent_sign {
                // A second dot (`0..n` range) ends the number.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                prev = c;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal(parse_int(&text)), line);
    }

    fn lex_ident(&mut self, line: usize) {
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
            if let Some(c) = self.bump() {
                name.push(c);
            }
        }
        // Raw identifier `r#match`: the `r` was already consumed as part of
        // the name only when not followed by `#`; handle the `r#` form.
        if name == "r" && self.peek(0) == Some('#') {
            self.bump();
            name.clear();
            while matches!(self.peek(0), Some(c) if c == '_' || c.is_alphanumeric()) {
                if let Some(c) = self.bump() {
                    name.push(c);
                }
            }
        }
        self.push(TokenKind::Ident(name), line);
    }
}

/// Parses the integer value out of a number-literal spelling, if it is an
/// integer (no `.`/exponent) that fits in `u64`. Handles `_` separators,
/// `0x`/`0o`/`0b` radixes and trailing type suffixes (`u64`, `usize`, …).
fn parse_int(text: &str) -> Option<u64> {
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    if digits.contains('.') {
        return None;
    }
    let radix_prefixes: &[(&str, u32)] = &[
        ("0x", 16),
        ("0X", 16),
        ("0o", 8),
        ("0O", 8),
        ("0b", 2),
        ("0B", 2),
    ];
    let (radix, body) = radix_prefixes
        .iter()
        .find_map(|(p, r)| digits.strip_prefix(p).map(|rest| (*r, rest)))
        .unwrap_or((10, digits.as_str()));
    // Strip a known type suffix (longest first — `u8` is a suffix of
    // nothing, but `usize` must win over a bare trailing digit check).
    // Float spellings (`1e9`, `2f64`) fail the final parse and yield None.
    const SUFFIXES: &[&str] = &[
        "usize", "u128", "u64", "u32", "u16", "u8", "isize", "i128", "i64", "i32", "i16", "i8",
    ];
    let value = SUFFIXES
        .iter()
        .find_map(|s| body.strip_suffix(s))
        .unwrap_or(body);
    u64::from_str_radix(value, radix).ok()
}

/// Removes test-only code from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]` (attribute plus the item's body through its
/// matching closing brace, or through `;` for brace-less items).
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_attribute_end(tokens, i) {
            // Skip the attribute itself, then the annotated item.
            i = skip_item(tokens, end);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// If `tokens[i..]` starts a `#[cfg(test)]`-like or `#[test]` attribute,
/// returns the index one past its closing `]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') || !tokens.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_cfg_or_bare = false;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let is_test = saw_test && saw_cfg_or_bare;
                return if is_test { Some(j + 1) } else { None };
            }
        } else if t.is_ident("test") {
            saw_test = true;
            // `#[test]` exactly: the attribute body is the single ident.
            if j == i + 2 && tokens.get(i + 3).map(|t| t.is_punct(']')) == Some(true) {
                saw_cfg_or_bare = true;
            }
        } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
            saw_cfg_or_bare = true;
        }
        j += 1;
    }
    None
}

/// Skips one item starting at `i`: through the matching `}` of its first
/// brace block, or through a terminating `;` if one comes first (e.g.
/// `#[cfg(test)] use …;`). Nested attributes before the item are skipped.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while let Some(end) = attribute_end(tokens, i) {
        i = end;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// If `tokens[i..]` starts any attribute, returns the index past its `]`.
fn attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let src = r##"
            // unwrap() in a comment
            /* block .unwrap() /* nested */ still comment */
            let s = "call .unwrap() inside a string";
            let r = r#"raw "quoted" .unwrap()"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'a'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        let chars = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(_)))
            .count();
        assert_eq!(chars, 2, "{toks:?}");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let toks = lex("for i in 0..n {}");
        assert!(toks.iter().any(|t| t.is_ident("n")));
        assert_eq!(
            toks.iter().filter(|t| t.is_punct('.')).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn scientific_notation_is_one_literal() {
        let toks = lex("let x = 1e-9;");
        let lits = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(_)))
            .count();
        assert_eq!(lits, 1, "{toks:?}");
        assert!(!toks.iter().any(|t| t.is_punct('-')), "{toks:?}");
    }

    #[test]
    fn parse_int_handles_radix_prefixes_and_degenerate_spellings() {
        assert_eq!(parse_int("0x1F"), Some(31));
        assert_eq!(parse_int("0o17"), Some(15));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("1_000usize"), Some(1000));
        // Degenerate spellings shorter than a radix prefix (or exactly one)
        // must yield None, never panic.
        assert_eq!(parse_int("0x"), None);
        assert_eq!(parse_int("0"), Some(0));
        assert_eq!(parse_int(""), None);
        assert_eq!(parse_int("1.5"), None);
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = r#"
            pub fn keep() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
            pub fn also_keep() {}
        "#;
        let toks = strip_test_code(&lex(src));
        let unwraps = toks.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1);
        assert!(toks.iter().any(|t| t.is_ident("also_keep")));
    }

    #[test]
    fn cfg_test_use_statement_is_stripped() {
        let src = "#[cfg(test)]\nuse foo::bar;\npub fn keep() {}";
        let toks = strip_test_code(&lex(src));
        assert!(!toks.iter().any(|t| t.is_ident("bar")));
        assert!(toks.iter().any(|t| t.is_ident("keep")));
    }

    #[test]
    fn non_test_attributes_are_kept() {
        let src = "#[derive(Debug)]\npub struct S { pub x: u8 }";
        let toks = strip_test_code(&lex(src));
        assert!(toks.iter().any(|t| t.is_ident("Debug")));
        assert!(toks.iter().any(|t| t.is_ident("S")));
    }
}
