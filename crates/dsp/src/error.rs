//! Typed errors for the DSP layer.
//!
//! `bsa-dsp` sits below `bsa-core` in the crate stack (core consumes dsp,
//! never the reverse), so it cannot reuse `bsa_core::ChipError`; it defines
//! its own error enum and core converts where the layers meet.

use std::fmt;

/// Errors from DSP entry points that previously panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// An operation that needs at least one sample got an empty slice.
    EmptyInput {
        /// The operation that was attempted, e.g. `"median"`.
        what: &'static str,
    },
    /// A parameter was outside its documented domain.
    InvalidArgument {
        /// The offending parameter, e.g. `"percentile p"`.
        what: &'static str,
        /// The documented domain, e.g. `"[0, 100]"`.
        expected: &'static str,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyInput { what } => write!(f, "{what} needs at least one sample"),
            Self::InvalidArgument { what, expected } => {
                write!(f, "{what} must be in {expected}")
            }
        }
    }
}

impl std::error::Error for DspError {}
