#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Steady-state allocation contract for the readout engine: once the
//! frame arena is warm (buffers recycled from a previous recording), the
//! heap-allocation count of a record call must not scale with the frame
//! count — the per-frame sample buffers all come from the pool.
//!
//! A counting global allocator measures real allocator traffic; the whole
//! contract lives in one `#[test]` so parallel test threads cannot
//! perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bsa_core::array::ArrayGeometry;
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_core::ScanOptions;
use bsa_neuro::culture::Culture;
use bsa_units::{Hertz, Meter, Seconds};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocations of one warm-arena uncalibrated record of `frames` frames
/// (serial path, so no thread-spawn bookkeeping is counted).
fn warm_record_allocs(chip: &mut NeuroChip, culture: &Culture, frames: usize) -> u64 {
    // Warm the arena with exactly `frames` recycled buffers plus a stripe
    // sized for this workload.
    let warmup =
        chip.record_uncalibrated_with(culture, Seconds::ZERO, frames, ScanOptions::serial());
    chip.recycle(warmup);
    let before = allocs();
    let recording =
        chip.record_uncalibrated_with(culture, Seconds::ZERO, frames, ScanOptions::serial());
    let delta = allocs() - before;
    chip.recycle(recording);
    delta
}

#[test]
fn steady_state_scan_is_allocation_free_per_frame() {
    let config = NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        frame_rate: Hertz::from_kilo(2.0),
        channels: 4,
        ..NeuroChipConfig::default()
    };
    let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    let mut chip = NeuroChip::new(config).unwrap();

    let small = warm_record_allocs(&mut chip, &culture, 4);
    let large = warm_record_allocs(&mut chip, &culture, 28);

    // Per-call overhead (the Recording itself, the frames Vec and its
    // growth) is allowed; per-frame buffers are not. If each of the 24
    // extra frames heap-allocated its sample buffer, `large` would exceed
    // `small` by at least 24.
    assert!(
        large <= small + 8,
        "allocation count scales with frame count: {small} allocs for 4 \
         frames vs {large} for 28"
    );

    // The pool must be doing the work: a warm same-size record serves
    // every frame from recycled buffers and allocates nothing new.
    let stats_before = chip.arena_stats();
    let recording =
        chip.record_uncalibrated_with(&culture, Seconds::ZERO, 28, ScanOptions::serial());
    let stats_after = chip.arena_stats();
    assert_eq!(
        stats_after.allocations, stats_before.allocations,
        "warm arena must not allocate fresh frame buffers"
    );
    assert_eq!(
        stats_after.reuses,
        stats_before.reuses + 28,
        "every frame buffer must come from the pool"
    );
    chip.recycle(recording);
}
