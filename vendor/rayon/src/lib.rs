//! Offline vendored subset of the `rayon` API.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the small slice of `rayon` it actually uses:
//! [`scope`]/[`Scope::spawn`] fork-join parallelism, [`join`], and
//! [`current_num_threads`]. Tasks run on plain scoped OS threads
//! (`std::thread::scope`) rather than a work-stealing pool; callers here
//! fan out coarse, long-lived tasks (one per channel group), where the
//! scheduling difference is irrelevant. Semantics match upstream: spawned
//! tasks may borrow from the enclosing scope, every task completes before
//! `scope` returns, and a panic in any task propagates to the caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Number of threads the runtime would use for parallel work: the OS-
/// reported available parallelism (1 if it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fork-join scope handed to [`scope`]'s closure; spawned tasks may
/// borrow anything that outlives the scope.
pub struct Scope<'s, 'env: 's> {
    inner: &'s std::thread::Scope<'s, 'env>,
}

/// Creates a fork-join scope: tasks spawned on it may borrow from the
/// caller's environment, and all of them are joined before `scope`
/// returns. If any task panics, the panic is resumed on the caller.
pub fn scope<'env, OP, R>(op: OP) -> R
where
    OP: for<'s> FnOnce(&Scope<'s, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

impl<'s, 'env> Scope<'s, 'env> {
    /// Spawns a task into the scope. The task receives the scope again so
    /// it can spawn nested work, as in upstream rayon.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'s, 'env>) + Send + 's,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        super::scope(|s| {
            for &x in &data {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(x, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_tasks_can_borrow_mutably_and_disjointly() {
        let mut data = vec![0u64; 8];
        super::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 * 10);
            }
        });
        assert_eq!(data, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
