//! Passive and switched components: capacitors, switches, resistors and
//! non-ideal current sources.

use crate::error::{require_positive, CircuitError};
use bsa_units::{Ampere, Coulomb, Farad, Ohm, Seconds, Volt};
use serde::{Deserialize, Serialize};

/// A capacitor holding a voltage state.
///
/// This is the integration capacitor C_int of the DNA pixel (paper Fig. 3)
/// and the calibration storage capacitor on the neural pixel's sensor gate
/// (paper Fig. 6). Supports charging by a current over a time step, direct
/// charge injection, leakage-driven droop, and hard reset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    capacitance: Farad,
    voltage: Volt,
}

impl Capacitor {
    /// Creates a capacitor with the given capacitance, initially at 0 V.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the capacitance is not strictly positive.
    pub fn new(capacitance: Farad) -> Result<Self, CircuitError> {
        require_positive("capacitance", capacitance.value())?;
        Ok(Self {
            capacitance,
            voltage: Volt::ZERO,
        })
    }

    /// The capacitance.
    pub fn capacitance(&self) -> Farad {
        self.capacitance
    }

    /// Present voltage across the capacitor.
    pub fn voltage(&self) -> Volt {
        self.voltage
    }

    /// Stored charge Q = C·V.
    pub fn charge(&self) -> Coulomb {
        self.capacitance * self.voltage
    }

    /// Integrates a constant current for `dt`: ΔV = I·dt / C.
    pub fn integrate(&mut self, current: Ampere, dt: Seconds) {
        self.voltage += (current * dt) / self.capacitance;
    }

    /// Injects a charge packet (e.g. switch charge injection): ΔV = Q/C.
    pub fn inject(&mut self, charge: Coulomb) {
        self.voltage += charge / self.capacitance;
    }

    /// Exponential droop toward `v_rest` with time constant `tau` over `dt`
    /// — models leakage of a stored calibration voltage between refresh
    /// cycles.
    pub fn droop(&mut self, v_rest: Volt, tau: Seconds, dt: Seconds) {
        let alpha = (-dt.value() / tau.value()).exp();
        self.voltage = v_rest + (self.voltage - v_rest) * alpha;
    }

    /// Forces the voltage to `v` (ideal reset switch closing).
    pub fn set_voltage(&mut self, v: Volt) {
        self.voltage = v;
    }
}

/// MOS switch with on-resistance, charge injection, and clock feedthrough.
///
/// When a MOS switch opens, roughly half its channel charge
/// Q_ch = W·L·C_ox·(V_GS − V_T) spills onto the sampling node, plus overlap
/// coupling of the gate swing. On the neural pixel this is one of the two
/// residual errors the calibration cannot remove (the other is droop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosSwitch {
    on_resistance: Ohm,
    injected_charge: Coulomb,
    closed: bool,
}

impl MosSwitch {
    /// Creates a switch.
    ///
    /// * `on_resistance` — channel resistance when closed.
    /// * `injected_charge` — charge pushed onto the signal node at each
    ///   opening (half-channel charge + feedthrough), signed.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `on_resistance` is not positive.
    pub fn new(on_resistance: Ohm, injected_charge: Coulomb) -> Result<Self, CircuitError> {
        require_positive("on resistance", on_resistance.value())?;
        Ok(Self {
            on_resistance,
            injected_charge,
            closed: false,
        })
    }

    /// An ideal switch: zero injection, 1 Ω on-resistance.
    pub fn ideal() -> Self {
        Self {
            on_resistance: Ohm::new(1.0),
            injected_charge: Coulomb::ZERO,
            closed: false,
        }
    }

    /// Is the switch currently conducting?
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// On-resistance when closed.
    pub fn on_resistance(&self) -> Ohm {
        self.on_resistance
    }

    /// Closes the switch (no charge event on closing).
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Opens the switch, returning the charge injected onto the signal node
    /// (zero if the switch was already open).
    pub fn open(&mut self) -> Coulomb {
        if self.closed {
            self.closed = false;
            self.injected_charge
        } else {
            Coulomb::ZERO
        }
    }

    /// Settling time constant when sampling onto `load` through the closed
    /// switch: τ = R_on · C.
    pub fn settling_tau(&self, load: Farad) -> Seconds {
        self.on_resistance * load
    }
}

/// Resistor (e.g. cleft seal resistance, electrode spreading resistance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resistor {
    resistance: Ohm,
}

impl Resistor {
    /// Creates a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the resistance is not strictly positive.
    pub fn new(resistance: Ohm) -> Result<Self, CircuitError> {
        require_positive("resistance", resistance.value())?;
        Ok(Self { resistance })
    }

    /// The resistance.
    pub fn resistance(&self) -> Ohm {
        self.resistance
    }

    /// Current for a voltage across the resistor.
    pub fn current(&self, v: Volt) -> Ampere {
        v / self.resistance
    }

    /// Voltage drop for a current through the resistor.
    pub fn drop_for(&self, i: Ampere) -> Volt {
        i * self.resistance
    }
}

/// Current source with finite output resistance.
///
/// Models the calibration current source M2 of the neural pixel and the
/// reference currents distributed across the DNA chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentSource {
    nominal: Ampere,
    output_resistance: Ohm,
    compliance: Volt,
}

impl CurrentSource {
    /// Creates a source with the given nominal current, output resistance,
    /// and compliance voltage (output saturates linearly below compliance).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `output_resistance` is not positive.
    pub fn new(
        nominal: Ampere,
        output_resistance: Ohm,
        compliance: Volt,
    ) -> Result<Self, CircuitError> {
        require_positive("output resistance", output_resistance.value())?;
        Ok(Self {
            nominal,
            output_resistance,
            compliance,
        })
    }

    /// An ideal source (1 GΩ output resistance, zero compliance).
    pub fn ideal(nominal: Ampere) -> Self {
        Self {
            nominal,
            output_resistance: Ohm::new(1e12),
            compliance: Volt::ZERO,
        }
    }

    /// The nominal (programmed) current.
    pub fn nominal(&self) -> Ampere {
        self.nominal
    }

    /// Output current at the given output voltage: nominal plus the
    /// finite-output-resistance term, collapsing linearly to zero below the
    /// compliance voltage.
    pub fn current_at(&self, v_out: Volt) -> Ampere {
        if v_out < self.compliance {
            // Triode-like collapse below compliance.
            let frac = (v_out.value() / self.compliance.value()).clamp(0.0, 1.0);
            return self.nominal * frac;
        }
        self.nominal + (v_out - self.compliance) / self.output_resistance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_integration_slope() {
        let mut c = Capacitor::new(Farad::from_femto(100.0)).unwrap();
        c.integrate(Ampere::from_pico(100.0), Seconds::from_milli(1.0));
        // ΔV = 100 pA · 1 ms / 100 fF = 1 V.
        assert!((c.voltage().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacitor_rejects_zero_capacitance() {
        assert!(Capacitor::new(Farad::ZERO).is_err());
    }

    #[test]
    fn capacitor_charge_injection() {
        let mut c = Capacitor::new(Farad::from_pico(1.0)).unwrap();
        c.inject(Coulomb::from_femto(10.0));
        assert!((c.voltage().as_milli() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_droop_decays_exponentially() {
        let mut c = Capacitor::new(Farad::from_pico(1.0)).unwrap();
        c.set_voltage(Volt::new(1.0));
        c.droop(Volt::ZERO, Seconds::new(1.0), Seconds::new(1.0));
        assert!((c.voltage().value() - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn capacitor_droop_is_stable_for_long_steps() {
        let mut c = Capacitor::new(Farad::from_pico(1.0)).unwrap();
        c.set_voltage(Volt::new(1.0));
        c.droop(Volt::new(0.5), Seconds::new(1e-3), Seconds::new(100.0));
        assert!((c.voltage().value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn switch_injects_only_on_opening() {
        let mut s = MosSwitch::new(Ohm::from_kilo(5.0), Coulomb::from_femto(2.0)).unwrap();
        assert_eq!(s.open(), Coulomb::ZERO, "open from open state: no charge");
        s.close();
        assert!(s.is_closed());
        assert_eq!(s.open(), Coulomb::from_femto(2.0));
        assert_eq!(s.open(), Coulomb::ZERO, "second opening injects nothing");
    }

    #[test]
    fn switch_settling_time() {
        let s = MosSwitch::new(Ohm::from_kilo(10.0), Coulomb::ZERO).unwrap();
        let tau = s.settling_tau(Farad::from_pico(1.0));
        assert!((tau.as_nano() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn resistor_ohms_law() {
        let r = Resistor::new(Ohm::from_mega(1.0)).unwrap();
        let i = r.current(Volt::from_milli(1.0));
        assert!((i.as_nano() - 1.0).abs() < 1e-12);
        assert!((r.drop_for(i) - Volt::from_milli(1.0)).abs().value() < 1e-15);
    }

    #[test]
    fn current_source_output_resistance() {
        let s = CurrentSource::new(
            Ampere::from_micro(1.0),
            Ohm::from_mega(10.0),
            Volt::new(0.3),
        )
        .unwrap();
        let i1 = s.current_at(Volt::new(1.0));
        let i2 = s.current_at(Volt::new(2.0));
        // 1 V more across 10 MΩ: +100 nA.
        assert!(((i2 - i1).as_nano() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_compliance_collapse() {
        let s = CurrentSource::new(
            Ampere::from_micro(1.0),
            Ohm::from_mega(10.0),
            Volt::new(0.3),
        )
        .unwrap();
        assert_eq!(s.current_at(Volt::ZERO), Ampere::ZERO);
        let half = s.current_at(Volt::new(0.15));
        assert!((half.value() - 0.5e-6).abs() < 1e-12);
    }

    #[test]
    fn ideal_source_is_stiff() {
        let s = CurrentSource::ideal(Ampere::from_nano(10.0));
        let a = s.current_at(Volt::new(0.5));
        let b = s.current_at(Volt::new(4.5));
        assert!((a.value() - b.value()).abs() / a.value() < 1e-2);
    }
}
