//! Parsing of engineering-notation quantity strings.

use std::error::Error;
use std::fmt;

/// Error returned when a quantity string cannot be parsed.
///
/// Produced by [`parse_eng`] and the `FromStr` impls of all quantity types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    reason: ParseErrorReason,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorReason {
    Empty,
    BadNumber,
    BadSuffix,
}

impl ParseQuantityError {
    fn new(input: &str, reason: ParseErrorReason) -> Self {
        Self {
            input: input.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            ParseErrorReason::Empty => write!(f, "empty quantity string"),
            ParseErrorReason::BadNumber => {
                write!(f, "invalid numeric mantissa in {:?}", self.input)
            }
            ParseErrorReason::BadSuffix => {
                write!(f, "unrecognized unit suffix in {:?}", self.input)
            }
        }
    }
}

impl Error for ParseQuantityError {}

/// Parses a string like `"1pA"`, `"2.5 nA"`, `"-450 µV"` or `"3e-9"` into a
/// raw `f64` value in base units.
///
/// The unit `symbol` (e.g. `"A"`) is optional in the input; when present it
/// must match. A single SI prefix character (a, f, p, n, µ/u, m, k, M, G, T,
/// P) may precede the symbol. Whitespace between the mantissa and the suffix
/// is ignored.
///
/// # Errors
///
/// Returns [`ParseQuantityError`] if the string is empty, the mantissa is
/// not a valid number, or the suffix is neither empty, a valid prefix, nor
/// `prefix + symbol`.
///
/// # Examples
///
/// ```
/// use bsa_units::parse_eng;
///
/// assert_eq!(parse_eng("100 fF", "F").unwrap(), 100e-15);
/// assert_eq!(parse_eng("2k", "Hz").unwrap(), 2000.0);
/// assert_eq!(parse_eng("0.5", "V").unwrap(), 0.5);
/// assert!(parse_eng("1 xA", "A").is_err());
/// ```
pub fn parse_eng(s: &str, symbol: &str) -> Result<f64, ParseQuantityError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseQuantityError::new(s, ParseErrorReason::Empty));
    }

    // Split the trailing alphabetic/µ suffix off the numeric mantissa.
    let split = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphabetic() || *c == 'µ' || *c == 'Ω' || *c == '²')
        .last()
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    // A trailing exponent like "3e-9" must not be treated as a suffix: the
    // suffix scan above stops at digits/'-' so only `e`/`E` directly at the
    // split point with digits before it could be ambiguous; handle by trying
    // the full string as a number first.
    if let Ok(v) = s.parse::<f64>() {
        return Ok(v);
    }

    let (num_part, suffix) = s.split_at(split);
    let num: f64 = num_part
        .trim()
        .parse()
        .map_err(|_| ParseQuantityError::new(s, ParseErrorReason::BadNumber))?;

    let suffix = suffix.trim();
    let prefix_str = suffix.strip_suffix(symbol).unwrap_or(suffix);
    match crate::fmt::exp_for_prefix(prefix_str) {
        Some(exp) => Ok(num * 10f64.powi(exp)),
        None => Err(ParseQuantityError::new(s, ParseErrorReason::BadSuffix)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_number() {
        assert_eq!(parse_eng("1.5", "V").unwrap(), 1.5);
        assert_eq!(parse_eng("-2", "A").unwrap(), -2.0);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(parse_eng("3e-9", "A").unwrap(), 3e-9);
        assert_eq!(parse_eng("1E6", "Hz").unwrap(), 1e6);
    }

    #[test]
    fn prefix_only() {
        assert_eq!(parse_eng("2k", "Hz").unwrap(), 2000.0);
        assert_eq!(parse_eng("5m", "V").unwrap(), 5e-3);
    }

    #[test]
    fn prefix_and_symbol() {
        assert_eq!(parse_eng("1pA", "A").unwrap(), 1e-12);
        assert!((parse_eng("100 nA", "A").unwrap() - 100e-9).abs() < 1e-18);
        assert!((parse_eng("7.8 µm", "m").unwrap() - 7.8e-6).abs() < 1e-18);
        assert!((parse_eng("7.8 um", "m").unwrap() - 7.8e-6).abs() < 1e-18);
    }

    #[test]
    fn symbol_only() {
        assert_eq!(parse_eng("5V", "V").unwrap(), 5.0);
        assert_eq!(parse_eng("5 V", "V").unwrap(), 5.0);
    }

    #[test]
    fn ohm_symbol() {
        assert_eq!(parse_eng("1MΩ", "Ω").unwrap(), 1e6);
    }

    #[test]
    fn errors() {
        assert!(parse_eng("", "V").is_err());
        assert!(parse_eng("abc", "V").is_err());
        assert!(parse_eng("1 xA", "A").is_err());
        assert!(parse_eng("--3", "A").is_err());
    }

    #[test]
    fn error_display_mentions_input() {
        let e = parse_eng("1 xA", "A").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("1 xA"), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseQuantityError>();
    }
}
