//! EKV-style long-channel MOSFET model.
//!
//! The model is continuous from weak inversion (subthreshold, exponential)
//! through moderate to strong inversion (square law), using the EKV
//! forward/reverse-current formulation:
//!
//! ```text
//! i_f,r = ln²(1 + exp((V_P − V_{S,D}) / 2·U_T))
//! I_D   = 2·n·β·U_T² · (i_f − i_r) · (1 + λ·V_DS)
//! V_P   = (V_GS_eff − V_T0) / n
//! ```
//!
//! Continuity across five decades of current is essential here: the DNA
//! microarray's sensor currents range from 1 pA (deep subthreshold for any
//! reasonably sized device) to 100 nA, and the neural chip's calibration
//! loop equalizes currents near moderate inversion.

use crate::error::{require_positive, CircuitError};
use bsa_units::consts::thermal_voltage;
use bsa_units::{Ampere, Kelvin, Siemens, Volt};
use serde::{Deserialize, Serialize};

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Physical and electrical parameters of a MOSFET.
///
/// All voltages are referred to the source-bulk-shorted configuration; the
/// model handles polarity internally so that a PMOS device can be driven
/// with the same positive-down conventions used in the chip netlists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Device polarity.
    pub polarity: Polarity,
    /// Channel width in µm.
    pub width_um: f64,
    /// Channel length in µm.
    pub length_um: f64,
    /// Zero-bias threshold voltage (magnitude).
    pub vth0: Volt,
    /// Process transconductance µ·C_ox in A/V².
    pub kp: f64,
    /// Subthreshold slope factor n (typically 1.2 … 1.6).
    pub slope_factor: f64,
    /// Channel-length modulation λ in 1/V.
    pub lambda: f64,
    /// Junction/subthreshold leakage floor in amperes (drain-source off
    /// leakage at V_GS = 0), scaled by W/L.
    pub leakage_floor: Ampere,
    /// Operating temperature.
    pub temperature: Kelvin,
    /// Threshold temperature coefficient in V/K (V_T falls with T;
    /// typically 0.5–2 mV/K).
    pub vth_tempco_v_per_k: f64,
    /// Mobility temperature exponent: kp scales as (T/T₀)^−m, m ≈ 1.5.
    pub mobility_temp_exponent: f64,
}

impl MosfetParams {
    /// Parameters typical of the paper's 0.5 µm / 5 V / t_ox = 15 nm CMOS
    /// process (Fig. 4 caption) for an NMOS of the given W/L in µm.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_circuit::mosfet::MosfetParams;
    /// let p = MosfetParams::n05um(10.0, 2.0);
    /// assert_eq!(p.width_um, 10.0);
    /// ```
    pub fn n05um(width_um: f64, length_um: f64) -> Self {
        Self {
            polarity: Polarity::Nmos,
            width_um,
            length_um,
            vth0: Volt::new(0.7),
            // µn·Cox for tox = 15 nm: Cox ≈ 2.3 fF/µm², µn ≈ 500 cm²/Vs.
            kp: 115e-6,
            slope_factor: 1.35,
            lambda: 0.03,
            leakage_floor: Ampere::from_femto(10.0),
            temperature: bsa_units::consts::ROOM_TEMPERATURE,
            vth_tempco_v_per_k: 1e-3,
            mobility_temp_exponent: 1.5,
        }
    }

    /// PMOS counterpart of [`MosfetParams::n05um`].
    pub fn p05um(width_um: f64, length_um: f64) -> Self {
        Self {
            polarity: Polarity::Pmos,
            vth0: Volt::new(0.8),
            kp: 40e-6,
            ..Self::n05um(width_um, length_um)
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if any geometric or process parameter is
    /// non-positive or non-finite.
    pub fn validate(&self) -> Result<(), CircuitError> {
        require_positive("channel width", self.width_um)?;
        require_positive("channel length", self.length_um)?;
        require_positive("process transconductance", self.kp)?;
        require_positive("slope factor", self.slope_factor)?;
        require_positive("temperature", self.temperature.value())?;
        if !self.lambda.is_finite() || self.lambda < 0.0 {
            return Err(CircuitError::NonPositiveParameter {
                name: "lambda",
                value: self.lambda,
            });
        }
        Ok(())
    }

    /// Gate area W·L in µm².
    pub fn gate_area_um2(&self) -> f64 {
        self.width_um * self.length_um
    }

    /// Aspect ratio W/L.
    pub fn aspect_ratio(&self) -> f64 {
        self.width_um / self.length_um
    }
}

/// An instance of a MOSFET with (optionally mismatched) parameters.
///
/// Construct nominal devices with [`Mosfet::new`]; per-device threshold and
/// gain mismatch is applied by [`Mosfet::with_mismatch`] (typically sampled
/// from [`crate::mismatch::PelgromModel`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    params: MosfetParams,
    delta_vth: Volt,
    beta_rel_err: f64,
}

impl Mosfet {
    /// Creates a nominal device (no mismatch).
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`MosfetParams::validate`]; use
    /// [`Mosfet::try_new`] for fallible construction.
    pub fn new(params: MosfetParams) -> Self {
        Self::try_new(params).expect("invalid MOSFET parameters")
    }

    /// Fallible counterpart of [`Mosfet::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the parameters are invalid.
    pub fn try_new(params: MosfetParams) -> Result<Self, CircuitError> {
        params.validate()?;
        Ok(Self {
            params,
            delta_vth: Volt::ZERO,
            beta_rel_err: 0.0,
        })
    }

    /// Returns a copy of this device with the given threshold-voltage offset
    /// and relative current-factor error applied.
    #[must_use]
    pub fn with_mismatch(mut self, delta_vth: Volt, beta_rel_err: f64) -> Self {
        self.delta_vth = delta_vth;
        self.beta_rel_err = beta_rel_err;
        self
    }

    /// The underlying parameter set.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// Effective threshold voltage including mismatch and the threshold
    /// temperature coefficient (referred to 300 K).
    pub fn vth(&self) -> Volt {
        let dt = self.params.temperature.value() - 300.0;
        self.params.vth0 + self.delta_vth - Volt::new(self.params.vth_tempco_v_per_k * dt)
    }

    /// Threshold mismatch of this instance.
    pub fn delta_vth(&self) -> Volt {
        self.delta_vth
    }

    /// Current factor β = kp·W/L including mismatch and the mobility
    /// temperature dependence (T/300 K)^−m, in A/V².
    pub fn beta(&self) -> f64 {
        let t_ratio = self.params.temperature.value() / 300.0;
        self.params.kp
            * self.params.aspect_ratio()
            * (1.0 + self.beta_rel_err)
            * t_ratio.powf(-self.params.mobility_temp_exponent)
    }

    /// Drain current for the given terminal voltages (V_G, V_S, V_D relative
    /// to bulk). For PMOS devices pass the same "positive-down" voltages
    /// used in an NMOS netlist; the model mirrors internally.
    ///
    /// The result is the EKV channel current plus the leakage floor, with
    /// channel-length modulation applied in the forward direction.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_circuit::mosfet::{Mosfet, MosfetParams};
    /// use bsa_units::Volt;
    ///
    /// let m = Mosfet::new(MosfetParams::n05um(10.0, 2.0));
    /// // Subthreshold: tiny current; strong inversion: much larger.
    /// let weak = m.drain_current(Volt::new(0.4), Volt::ZERO, Volt::new(2.0));
    /// let strong = m.drain_current(Volt::new(2.0), Volt::ZERO, Volt::new(2.0));
    /// assert!(weak.value() < 1e-8);
    /// assert!(strong.value() > 1e-4);
    /// ```
    pub fn drain_current(&self, vg: Volt, vs: Volt, vd: Volt) -> Ampere {
        let (vg, vs, vd) = match self.params.polarity {
            Polarity::Nmos => (vg.value(), vs.value(), vd.value()),
            // Mirror: a PMOS with source at VDD behaves like an NMOS with
            // all voltages negated.
            Polarity::Pmos => (-vg.value(), -vs.value(), -vd.value()),
        };
        Ampere::new(self.op_consts().current(vg, vs, vd))
    }

    /// Precomputes the bias-independent model constants (threshold, slope
    /// factor, specific current, leakage floor) so repeated evaluations —
    /// the calibration solver's inner loop — skip the temperature
    /// corrections (`powf`) hidden in [`Mosfet::beta`] and [`Mosfet::vth`].
    fn op_consts(&self) -> OpConsts {
        let ut = thermal_voltage(self.params.temperature).value();
        let n = self.params.slope_factor;
        OpConsts {
            ut,
            n,
            vth: self.vth().value(),
            i_spec: 2.0 * n * self.beta() * ut * ut,
            lambda: self.params.lambda,
            leak: self.params.leakage_floor.value() * self.params.aspect_ratio(),
        }
    }

    /// Gate transconductance g_m = ∂I_D/∂V_G at the given bias, evaluated
    /// analytically from the EKV formulation.
    ///
    /// With i_f,r = ln1pexp(x_f,r)² and x_f,r = (V_P − V_{S,D})/(2·U_T),
    /// ∂i/∂V_G = ln1pexp(x)·σ(x)/(n·U_T) (σ is the logistic function, the
    /// derivative of ln1pexp), so
    ///
    /// ```text
    /// g_m = I_spec·CLM·(L(x_f)·σ(x_f) − L(x_r)·σ(x_r)) / (n·U_T)
    /// ```
    ///
    /// The leakage floor has no V_G dependence and drops out. The PMOS
    /// mirror negates all terminal voltages, so by the chain rule its g_m in
    /// the shared positive-down driving convention is the negated mirrored
    /// derivative — matching the sign the numeric difference produces.
    ///
    /// This is one transcendental pair instead of the two full
    /// `drain_current` solves of symmetric numeric differentiation, and it
    /// is exact (no truncation error) in every inversion region.
    pub fn gm(&self, vg: Volt, vs: Volt, vd: Volt) -> Siemens {
        let (vg, vs, vd, sign) = match self.params.polarity {
            Polarity::Nmos => (vg.value(), vs.value(), vd.value(), 1.0),
            Polarity::Pmos => (-vg.value(), -vs.value(), -vd.value(), -1.0),
        };
        Siemens::new(sign * self.op_consts().gm(vg, vs, vd))
    }

    /// Drain current and gate transconductance at one bias point, sharing
    /// a single constants evaluation. Bitwise identical to calling
    /// [`Mosfet::drain_current`] and [`Mosfet::gm`] separately; exists for
    /// per-pixel hot paths (whole-array linearization) where the repeated
    /// temperature corrections would dominate.
    pub fn current_and_gm(&self, vg: Volt, vs: Volt, vd: Volt) -> (Ampere, Siemens) {
        let (vg, vs, vd, sign) = match self.params.polarity {
            Polarity::Nmos => (vg.value(), vs.value(), vd.value(), 1.0),
            Polarity::Pmos => (-vg.value(), -vs.value(), -vd.value(), -1.0),
        };
        let c = self.op_consts();
        (
            Ampere::new(c.current(vg, vs, vd)),
            Siemens::new(sign * c.gm(vg, vs, vd)),
        )
    }

    /// Output conductance g_ds = ∂I_D/∂V_D at the given bias.
    pub fn gds(&self, vg: Volt, vs: Volt, vd: Volt) -> Siemens {
        let dv = 1e-5;
        let hi = self.drain_current(vg, vs, vd + Volt::new(dv));
        let lo = self.drain_current(vg, vs, vd - Volt::new(dv));
        Siemens::new((hi.value() - lo.value()) / (2.0 * dv))
    }

    /// Solves for the gate voltage that makes the device conduct `target`
    /// with the given source/drain bias, by bisection over `[vg_lo, vg_hi]`.
    ///
    /// This is exactly the operation the neural chip's calibration switch S1
    /// performs physically: diode-connecting the sensor transistor until its
    /// current equals the reference (paper Fig. 6, M1/M2/S1).
    ///
    /// Returns `None` if the target is not bracketed by the search range.
    pub fn gate_voltage_for_current(
        &self,
        target: Ampere,
        vs: Volt,
        vd: Volt,
        vg_lo: Volt,
        vg_hi: Volt,
    ) -> Option<Volt> {
        // Work in the mirrored (NMOS) frame: for PMOS the gate axis flips
        // sign along with the terminals, so the real-frame bracket
        // [vg_lo, vg_hi] becomes [−vg_hi, −vg_lo].
        let (sign, vs, vd, lo, hi) = match self.params.polarity {
            Polarity::Nmos => (1.0, vs.value(), vd.value(), vg_lo.value(), vg_hi.value()),
            Polarity::Pmos => (
                -1.0,
                -vs.value(),
                -vd.value(),
                -vg_hi.value(),
                -vg_lo.value(),
            ),
        };
        let c = self.op_consts();
        let f = |vg: f64| c.current(vg, vs, vd) - target.value();
        let (mut lo, mut hi) = (lo, hi);
        let (flo, fhi) = (f(lo), f(hi));
        if flo.signum() == fhi.signum() {
            return None;
        }
        // Safeguarded Newton: quadratic convergence from any seed inside the
        // bracket (the EKV I_D is smooth and monotone in V_G), falling back
        // to a bisection step whenever the Newton step leaves the bracket or
        // the derivative is too flat (deep subthreshold against the leakage
        // floor). Seeded with the closed-form saturation inverse, it
        // converges in ~5 evaluations where plain bisection needed 60×:
        // this is the inner loop of whole-array calibration.
        let mut x = c
            .gate_seed(target.value(), vs, vd)
            .filter(|v| *v > lo && *v < hi)
            .unwrap_or(0.5 * (lo + hi));
        let mut fx = f(x);
        for _ in 0..80 {
            if fx == 0.0 || hi - lo <= f64::EPSILON * (1.0 + x.abs()) {
                break;
            }
            // Maintain the bracket around the root.
            if fx.signum() == flo.signum() {
                lo = x;
            } else {
                hi = x;
            }
            let g = c.gm(x, vs, vd);
            let newton = x - fx / g;
            // Accept Newton iterates on the bracket boundary (>=, <=): once
            // converged, the root IS one of the endpoints, and rejecting it
            // would degrade every remaining step to bisection.
            let next = if g.abs() > 0.0 && newton >= lo && newton <= hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            // Newton converges one-sided, so the bracket itself may never
            // collapse: a vanishing step is the convergence signal.
            if (next - x).abs() <= f64::EPSILON * (1.0 + x.abs()) {
                x = next;
                break;
            }
            x = next;
            fx = f(x);
        }
        Some(Volt::new(sign * x))
    }
}

/// Bias-independent EKV evaluation constants for one device instance, in
/// the mirrored (NMOS) frame. Produced by [`Mosfet::op_consts`] so hot
/// loops — the calibration gate solver above all — pay the temperature
/// corrections once instead of per evaluation. The expressions below are
/// kept term-for-term identical to the historical inline forms, so results
/// are bitwise unchanged.
#[derive(Debug, Clone, Copy)]
struct OpConsts {
    ut: f64,
    n: f64,
    vth: f64,
    i_spec: f64,
    lambda: f64,
    leak: f64,
}

impl OpConsts {
    /// EKV drain current (channel + leakage floor) at the given mirrored
    /// terminal voltages, in amperes.
    fn current(&self, vg: f64, vs: f64, vd: f64) -> f64 {
        let vp = (vg - self.vth) / self.n;
        let i_f = ln1pexp((vp - vs) / (2.0 * self.ut)).powi(2);
        let i_r = ln1pexp((vp - vd) / (2.0 * self.ut)).powi(2);
        let vds = vd - vs;
        let clm = 1.0 + self.lambda * vds.max(0.0);
        let channel = self.i_spec * (i_f - i_r) * clm;
        channel + self.leak * sgn(vds)
    }

    /// Analytic gate transconductance ∂I_D/∂V_G in the mirrored frame.
    fn gm(&self, vg: f64, vs: f64, vd: f64) -> f64 {
        let vp = (vg - self.vth) / self.n;
        let xf = (vp - vs) / (2.0 * self.ut);
        let xr = (vp - vd) / (2.0 * self.ut);
        let vds = vd - vs;
        let clm = 1.0 + self.lambda * vds.max(0.0);
        let slope = ln1pexp(xf) * logistic(xf) - ln1pexp(xr) * logistic(xr);
        self.i_spec * clm * slope / (self.n * self.ut)
    }

    /// Closed-form gate-voltage estimate for a target drain current,
    /// neglecting the reverse channel term (exact in saturation): inverts
    /// `I = i_spec·clm·ln1pexp(x_f)² + leak` via `ln1pexp⁻¹(y) =
    /// y + ln(1 − e⁻ʸ)`. Returns `None` when the leakage-corrected target
    /// is non-positive (no forward-channel solution to seed from).
    fn gate_seed(&self, target: f64, vs: f64, vd: f64) -> Option<f64> {
        let vds = vd - vs;
        let clm = 1.0 + self.lambda * vds.max(0.0);
        let q = (target - self.leak * sgn(vds)) / (self.i_spec * clm);
        if q.is_nan() || q <= 0.0 {
            return None;
        }
        let y = q.sqrt();
        let a = y + (-(-y).exp()).ln_1p();
        let vp = vs + 2.0 * self.ut * a;
        let vg = self.n * vp + self.vth;
        vg.is_finite().then_some(vg)
    }
}

/// Numerically stable ln(1 + eˣ).
fn ln1pexp(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically stable logistic σ(x) = 1/(1 + e⁻ˣ), the derivative of
/// [`ln1pexp`].
fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn sgn(x: f64) -> f64 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Mosfet {
        Mosfet::new(MosfetParams::n05um(10.0, 2.0))
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut p = MosfetParams::n05um(10.0, 2.0);
        p.width_um = 0.0;
        assert!(Mosfet::try_new(p).is_err());
    }

    #[test]
    fn subthreshold_is_exponential() {
        // In weak inversion, I_D should grow ~ exp(VG/(n·UT)): a 60·n mV
        // gate step is one decade.
        let m = nominal();
        let n = m.params().slope_factor;
        let ut = thermal_voltage(m.params().temperature).value();
        let decade_step = n * ut * std::f64::consts::LN_10;
        let i1 = m.drain_current(Volt::new(0.40), Volt::ZERO, Volt::new(2.0));
        let i2 = m.drain_current(Volt::new(0.40 + decade_step), Volt::ZERO, Volt::new(2.0));
        let ratio = i2.value() / i1.value();
        assert!((ratio - 10.0).abs() < 0.8, "ratio = {ratio}");
    }

    #[test]
    fn strong_inversion_is_square_law() {
        // Far above threshold, I_D ∝ (VG−VT)² approximately.
        let m = nominal();
        let vt = m.vth().value();
        let i1 = m.drain_current(Volt::new(vt + 1.0), Volt::ZERO, Volt::new(4.0));
        let i2 = m.drain_current(Volt::new(vt + 2.0), Volt::ZERO, Volt::new(4.0));
        let ratio = i2.value() / i1.value();
        assert!((ratio - 4.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn current_is_continuous_and_monotone_in_vg() {
        let m = nominal();
        let mut last = f64::NEG_INFINITY;
        for k in 0..500 {
            let vg = Volt::new(k as f64 * 0.01);
            let i = m.drain_current(vg, Volt::ZERO, Volt::new(2.5)).value();
            assert!(i.is_finite());
            assert!(i >= last, "non-monotone at vg = {vg}");
            last = i;
        }
    }

    #[test]
    fn saturation_flattens_with_vd() {
        let m = nominal();
        let vg = Volt::new(1.5);
        let i_lin = m.drain_current(vg, Volt::ZERO, Volt::new(0.1));
        let i_sat1 = m.drain_current(vg, Volt::ZERO, Volt::new(2.0));
        let i_sat2 = m.drain_current(vg, Volt::ZERO, Volt::new(2.5));
        assert!(i_lin < i_sat1);
        // In saturation only λ modulation remains: small relative change.
        let rel = (i_sat2.value() - i_sat1.value()) / i_sat1.value();
        assert!(rel > 0.0 && rel < 0.05, "rel = {rel}");
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = Mosfet::new(MosfetParams::n05um(10.0, 2.0));
        let mut pp = MosfetParams::p05um(10.0, 2.0);
        // Give the PMOS identical kp/vth so the mirror symmetry is exact.
        pp.kp = n.params().kp;
        pp.vth0 = n.params().vth0;
        let p = Mosfet::new(pp);
        let i_n = n.drain_current(Volt::new(1.5), Volt::ZERO, Volt::new(2.0));
        let i_p = p.drain_current(Volt::new(-1.5), Volt::ZERO, Volt::new(-2.0));
        assert!((i_n.value() - i_p.value()).abs() / i_n.value() < 1e-9);
    }

    #[test]
    fn gm_positive_and_tracks_current() {
        let m = nominal();
        let gm_weak = m.gm(Volt::new(0.5), Volt::ZERO, Volt::new(2.0));
        let gm_strong = m.gm(Volt::new(2.0), Volt::ZERO, Volt::new(2.0));
        assert!(gm_weak.value() > 0.0);
        assert!(gm_strong > gm_weak);
    }

    #[test]
    fn gm_over_id_weak_inversion_limit() {
        // gm/ID → 1/(n·UT) in weak inversion: the theoretical maximum.
        let m = nominal();
        let vg = Volt::new(0.35);
        let id = m.drain_current(vg, Volt::ZERO, Volt::new(2.0));
        let gm = m.gm(vg, Volt::ZERO, Volt::new(2.0));
        let ut = thermal_voltage(m.params().temperature).value();
        let expected = 1.0 / (m.params().slope_factor * ut);
        let got = gm.value() / id.value();
        assert!((got - expected).abs() / expected < 0.15, "gm/ID = {got}");
    }

    #[test]
    fn analytic_gm_matches_numeric_differentiation() {
        // The analytic transconductance must agree with a symmetric numeric
        // difference of drain_current across weak, moderate, and strong
        // inversion, in triode and saturation, for both polarities. The
        // numeric truncation error is O(dv²·I'''), so agreement to ~1e-6
        // relative (with an absolute floor deep in subthreshold where both
        // are vanishingly small) bounds the analytic form tightly.
        let devices = [
            Mosfet::new(MosfetParams::n05um(10.0, 2.0)),
            Mosfet::new(MosfetParams::n05um(3.0, 0.6)).with_mismatch(Volt::from_milli(12.0), 0.03),
            Mosfet::new(MosfetParams::p05um(10.0, 2.0)),
            Mosfet::new(MosfetParams::p05um(4.0, 1.0)).with_mismatch(Volt::from_milli(-8.0), -0.02),
        ];
        for m in &devices {
            let mirror = match m.params().polarity {
                Polarity::Nmos => 1.0,
                Polarity::Pmos => -1.0,
            };
            for step in 0..=60 {
                let vg = Volt::new(mirror * (step as f64 * 0.05));
                for (vs, vd) in [
                    (Volt::ZERO, Volt::new(mirror * 0.05)),
                    (Volt::ZERO, Volt::new(mirror * 2.5)),
                    (Volt::new(mirror * 0.2), Volt::new(mirror * 2.0)),
                ] {
                    let analytic = m.gm(vg, vs, vd).value();
                    let dv = 1e-5;
                    let hi = m.drain_current(vg + Volt::new(dv), vs, vd).value();
                    let lo = m.drain_current(vg - Volt::new(dv), vs, vd).value();
                    let numeric = (hi - lo) / (2.0 * dv);
                    let tol = 1e-6 * numeric.abs().max(analytic.abs()) + 1e-15;
                    assert!(
                        (analytic - numeric).abs() <= tol,
                        "gm mismatch at vg={vg} vs={vs} vd={vd}: \
                         analytic={analytic:e} numeric={numeric:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn pmos_gm_sign_matches_numeric_convention() {
        // In the shared positive-down convention a PMOS conducts less as
        // V_G rises, so its gm is negative — the analytic form must keep
        // the same sign the numeric difference had.
        let p = Mosfet::new(MosfetParams::p05um(10.0, 2.0));
        let gm = p.gm(Volt::new(-1.5), Volt::ZERO, Volt::new(-2.0));
        assert!(gm.value() < 0.0, "gm = {gm:?}");
    }

    #[test]
    fn mismatch_shifts_threshold() {
        let m0 = nominal();
        let m1 = nominal().with_mismatch(Volt::from_milli(10.0), 0.0);
        let i0 = m0.drain_current(Volt::new(0.6), Volt::ZERO, Volt::new(2.0));
        let i1 = m1.drain_current(Volt::new(0.6), Volt::ZERO, Volt::new(2.0));
        // +10 mV VT at fixed VG reduces subthreshold current noticeably.
        assert!(i1 < i0);
        let ratio = i0.value() / i1.value();
        assert!(ratio > 1.15 && ratio < 1.55, "ratio = {ratio}");
    }

    #[test]
    fn beta_mismatch_scales_current() {
        let m0 = nominal();
        let m1 = nominal().with_mismatch(Volt::ZERO, 0.02);
        let bias = (Volt::new(2.0), Volt::ZERO, Volt::new(2.5));
        let (i0, i1) = (
            m0.drain_current(bias.0, bias.1, bias.2),
            m1.drain_current(bias.0, bias.1, bias.2),
        );
        let rel = (i1.value() - i0.value()) / i0.value();
        assert!((rel - 0.02).abs() < 2e-3, "rel = {rel}");
    }

    #[test]
    fn gate_solver_inverts_drain_current() {
        let m = nominal().with_mismatch(Volt::from_milli(-7.3), 0.01);
        let target = Ampere::from_micro(5.0);
        let vg = m
            .gate_voltage_for_current(
                target,
                Volt::ZERO,
                Volt::new(2.5),
                Volt::ZERO,
                Volt::new(5.0),
            )
            .expect("bracketed");
        let i = m.drain_current(vg, Volt::ZERO, Volt::new(2.5));
        assert!((i.value() - target.value()).abs() / target.value() < 1e-9);
    }

    #[test]
    fn gate_solver_rejects_unbracketed_target() {
        let m = nominal();
        // 1 A is far beyond what this device can conduct below 5 V.
        let res = m.gate_voltage_for_current(
            Ampere::new(1.0),
            Volt::ZERO,
            Volt::new(2.5),
            Volt::ZERO,
            Volt::new(5.0),
        );
        assert!(res.is_none());
    }

    #[test]
    fn leakage_floor_present_at_zero_vgs() {
        let m = nominal();
        let i = m.drain_current(Volt::ZERO, Volt::ZERO, Volt::new(2.0));
        assert!(i.value() > 0.0);
        assert!(i.value() < 1e-12);
    }

    #[test]
    fn temperature_raises_subthreshold_current() {
        // In weak inversion, higher T lowers V_T and raises U_T's reach:
        // the off-state current rises steeply with temperature.
        let cold = Mosfet::new(MosfetParams {
            temperature: Kelvin::new(280.0),
            ..MosfetParams::n05um(10.0, 2.0)
        });
        let hot = Mosfet::new(MosfetParams {
            temperature: Kelvin::new(350.0),
            ..MosfetParams::n05um(10.0, 2.0)
        });
        let bias = (Volt::new(0.45), Volt::ZERO, Volt::new(2.0));
        let i_cold = cold.drain_current(bias.0, bias.1, bias.2);
        let i_hot = hot.drain_current(bias.0, bias.1, bias.2);
        assert!(
            i_hot.value() > 3.0 * i_cold.value(),
            "cold {i_cold}, hot {i_hot}"
        );
    }

    #[test]
    fn temperature_lowers_strong_inversion_current() {
        // Far above threshold, mobility degradation dominates: I_D falls
        // with temperature.
        let cold = Mosfet::new(MosfetParams {
            temperature: Kelvin::new(280.0),
            ..MosfetParams::n05um(10.0, 2.0)
        });
        let hot = Mosfet::new(MosfetParams {
            temperature: Kelvin::new(350.0),
            ..MosfetParams::n05um(10.0, 2.0)
        });
        let bias = (Volt::new(4.0), Volt::ZERO, Volt::new(4.5));
        let i_cold = cold.drain_current(bias.0, bias.1, bias.2);
        let i_hot = hot.drain_current(bias.0, bias.1, bias.2);
        assert!(i_hot < i_cold, "cold {i_cold}, hot {i_hot}");
    }

    #[test]
    fn zero_tempco_point_exists_between_regimes() {
        // Somewhere between weak and strong inversion the two temperature
        // effects cancel (the ZTC bias used by temperature-stable designs):
        // the sign of dI/dT flips across the V_G range.
        let current_at = |vg: f64, t: f64| {
            Mosfet::new(MosfetParams {
                temperature: Kelvin::new(t),
                ..MosfetParams::n05um(10.0, 2.0)
            })
            .drain_current(Volt::new(vg), Volt::ZERO, Volt::new(4.0))
            .value()
        };
        let low_sign = (current_at(0.6, 330.0) - current_at(0.6, 300.0)).signum();
        let high_sign = (current_at(4.0, 330.0) - current_at(4.0, 300.0)).signum();
        assert_eq!(low_sign, 1.0);
        assert_eq!(high_sign, -1.0);
    }

    #[test]
    fn ln1pexp_is_stable() {
        assert_eq!(ln1pexp(1000.0), 1000.0);
        assert!(ln1pexp(-1000.0) >= 0.0);
        assert!((ln1pexp(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
