//! Seeded dataflow violations for `flow.unit` and `flow.range`
//! (semantic lint fixture — lexed and parsed, never compiled).
//!
//! The unmarked functions at the bottom are the prover's positive space:
//! index sites it discharges, so they must produce zero violations.

// ---------------------------------------------------------------------------
// flow.unit — intraprocedural unit inference
// ---------------------------------------------------------------------------

/// Typed params carry their declared dimension: Volt + Hertz can't add.
fn mixed_typed_sum(bias_v: Volt, f_clk_hz: Hertz) -> f64 {
    let total = bias_v + f_clk_hz; //~ flow.unit
    total
}

/// An `f64` param takes the dimension its name implies; so does the
/// binding's own name — and a frequency is not a period.
fn name_implied_mismatch(f_clk_hz: f64) -> f64 {
    let period_s = f_clk_hz; //~ flow.unit
    period_s
}

/// Reassignment checks against the dimension the binding already holds.
fn reassigned_across_dimensions(f_lo: Hertz) -> Volt {
    let mut level = Volt::new(0.0);
    level = f_lo; //~ flow.unit
    level
}

/// Same dimension on both sides: silent.
fn consistent_sum(fs: Hertz, f0: Hertz) -> Hertz {
    let upper = fs + f0;
    upper
}

// ---------------------------------------------------------------------------
// flow.range — interval analysis: definite bugs
// ---------------------------------------------------------------------------

/// The last element is at `len() - 1`; `xs[xs.len()]` always panics.
fn off_the_end(xs: &[f64]) -> f64 {
    xs[xs.len()] //~ flow.range
}

/// An exact length refutes constant indices at or above it.
fn past_exact_len() -> f64 {
    let buf = [0.0; 4];
    buf[7] //~ flow.range
}

/// Divisor is the literal zero.
fn div_by_literal_zero(n: u64) -> u64 {
    n / 0 //~ flow.range
}

/// Divisor is a binding that is constantly zero at the use.
fn mod_by_zero_binding(n: u64) -> u64 {
    let z = 0;
    n % z //~ flow.range
}

// ---------------------------------------------------------------------------
// flow.range — proven in-bounds: must stay silent
// ---------------------------------------------------------------------------

/// `for i in 0..xs.len()` bounds `i` for the loop body.
fn proven_loop(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc = acc + xs[i];
    }
    acc
}

/// `len() - 1` is in bounds once the emptiness guard has run.
fn proven_guarded_last(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() - 1]
}
