//! Screening stages.
//!
//! Each stage of the paper's Fig. 1 funnel tests every surviving compound
//! with some throughput (datapoints/day), cost (per datapoint) and assay
//! quality (sensitivity as a function of potency, plus a false-positive
//! rate). Later stages are slower, costlier and more predictive.

use crate::compound::Compound;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kind of screening stage (the four boxes of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Molecular-based assay (DNA-microarray-class).
    Molecular,
    /// Cell-based assay (neural/cell-chip-class).
    CellBased,
    /// Animal testing.
    AnimalTests,
    /// Clinical trials.
    ClinicalTrials,
}

impl StageKind {
    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Self::Molecular => "molecular-based",
            Self::CellBased => "cell-based",
            Self::AnimalTests => "animal tests",
            Self::ClinicalTrials => "clinical trials",
        }
    }
}

/// A parameterized screening stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage kind.
    pub kind: StageKind,
    /// Datapoints (compound tests) per day.
    pub datapoints_per_day: f64,
    /// Cost per datapoint in currency units.
    pub cost_per_datapoint: f64,
    /// Probability of detecting an active of potency 1.0; weaker actives
    /// are detected with probability `sensitivity·potency^0.5`.
    pub sensitivity: f64,
    /// Probability an inactive passes anyway (false-positive rate).
    pub false_positive_rate: f64,
}

impl Stage {
    /// Molecular screen run on CMOS microarray chips: `sites` parallel
    /// sensor positions per chip, `runs_per_day` assay runs/day per chip,
    /// `chips` operated in parallel.
    ///
    /// The per-datapoint cost of a chip assay is low (reagents dominated);
    /// the quality of a molecular surrogate endpoint is modest.
    pub fn molecular_chip(sites: usize, runs_per_day: f64, chips: usize) -> Self {
        Self {
            kind: StageKind::Molecular,
            datapoints_per_day: sites as f64 * runs_per_day * chips as f64,
            cost_per_datapoint: 0.5,
            sensitivity: 0.95,
            false_positive_rate: 0.02,
        }
    }

    /// Cell-based screen on recording chips: one culture per chip per day
    /// per well, with `wells` parallel wells.
    pub fn cell_chip(wells: usize) -> Self {
        Self {
            kind: StageKind::CellBased,
            datapoints_per_day: wells as f64,
            cost_per_datapoint: 20.0,
            sensitivity: 0.9,
            false_positive_rate: 0.005,
        }
    }

    /// Animal testing.
    pub fn animal_tests() -> Self {
        Self {
            kind: StageKind::AnimalTests,
            datapoints_per_day: 5.0,
            cost_per_datapoint: 5_000.0,
            sensitivity: 0.85,
            false_positive_rate: 0.001,
        }
    }

    /// Clinical trials.
    pub fn clinical_trials() -> Self {
        Self {
            kind: StageKind::ClinicalTrials,
            datapoints_per_day: 0.05,
            cost_per_datapoint: 1_000_000.0,
            sensitivity: 0.8,
            false_positive_rate: 0.0001,
        }
    }

    /// Tests one compound; `true` means it passes to the next stage.
    pub fn test<R: Rng>(&self, compound: &Compound, rng: &mut R) -> bool {
        if compound.active {
            let p = self.sensitivity * compound.potency.sqrt();
            rng.gen::<f64>() < p
        } else {
            rng.gen::<f64>() < self.false_positive_rate
        }
    }

    /// Days to test `n` compounds at this stage's throughput.
    pub fn days_for(&self, n: usize) -> f64 {
        n as f64 / self.datapoints_per_day
    }

    /// Cost to test `n` compounds.
    pub fn cost_for(&self, n: usize) -> f64 {
        n as f64 * self.cost_per_datapoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn active(potency: f64) -> Compound {
        Compound {
            id: 0,
            active: true,
            potency,
        }
    }

    fn inactive() -> Compound {
        Compound {
            id: 1,
            active: false,
            potency: 0.0,
        }
    }

    #[test]
    fn strong_actives_usually_pass() {
        let s = Stage::molecular_chip(128, 2.0, 10);
        let mut rng = SmallRng::seed_from_u64(1);
        let passes = (0..10_000)
            .filter(|_| s.test(&active(1.0), &mut rng))
            .count();
        let rate = passes as f64 / 10_000.0;
        assert!((rate - 0.95).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn weak_actives_pass_less_often() {
        let s = Stage::molecular_chip(128, 2.0, 10);
        let mut rng = SmallRng::seed_from_u64(2);
        let strong = (0..10_000)
            .filter(|_| s.test(&active(1.0), &mut rng))
            .count();
        let weak = (0..10_000)
            .filter(|_| s.test(&active(0.1), &mut rng))
            .count();
        assert!(weak < strong);
    }

    #[test]
    fn inactives_rarely_pass() {
        let s = Stage::cell_chip(100);
        let mut rng = SmallRng::seed_from_u64(3);
        let passes = (0..100_000)
            .filter(|_| s.test(&inactive(), &mut rng))
            .count();
        let rate = passes as f64 / 100_000.0;
        assert!((rate - 0.005).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    fn chip_parallelism_multiplies_throughput() {
        let one = Stage::molecular_chip(128, 2.0, 1);
        let ten = Stage::molecular_chip(128, 2.0, 10);
        assert!((ten.datapoints_per_day / one.datapoints_per_day - 10.0).abs() < 1e-12);
    }

    #[test]
    fn paper_monotonicity_holds_for_defaults() {
        // Fig. 1: datapoints/day ↓, cost/datapoint ↑ along the funnel.
        let stages = [
            Stage::molecular_chip(128, 2.0, 10),
            Stage::cell_chip(100),
            Stage::animal_tests(),
            Stage::clinical_trials(),
        ];
        for w in stages.windows(2) {
            assert!(w[1].datapoints_per_day < w[0].datapoints_per_day);
            assert!(w[1].cost_per_datapoint > w[0].cost_per_datapoint);
        }
    }

    #[test]
    fn time_and_cost_scale_with_load() {
        let s = Stage::animal_tests();
        assert!((s.days_for(50) - 10.0).abs() < 1e-12);
        assert!((s.cost_for(50) - 250_000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_names_match_figure() {
        assert_eq!(StageKind::Molecular.name(), "molecular-based");
        assert_eq!(StageKind::ClinicalTrials.name(), "clinical trials");
    }
}
