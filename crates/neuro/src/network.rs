//! Synaptically coupled networks.
//!
//! Dissociated cultures on MEAs — the preparation recorded by the paper's
//! neural chip — develop recurrent excitatory connectivity and fire in
//! network-wide bursts. This module simulates a sparse random network of
//! Izhikevich neurons with current-pulse synapses and returns per-neuron
//! spike trains, which [`crate::culture::Culture`] can stamp onto the chip
//! surface in place of independent Poisson units.

use crate::izhikevich::{Izhikevich, IzhikevichParams};
use bsa_units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Network configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of neurons.
    pub neuron_count: usize,
    /// Fraction of inhibitory units.
    pub inhibitory_fraction: f64,
    /// Connection probability between any ordered pair.
    pub connection_probability: f64,
    /// Synaptic weight of an excitatory spike (drive units).
    pub excitatory_weight: f64,
    /// Synaptic weight of an inhibitory spike (positive number,
    /// subtracted).
    pub inhibitory_weight: f64,
    /// Mean background drive (noisy, per step).
    pub background_drive: f64,
    /// Simulation step.
    pub dt: Seconds,
}

impl Default for NetworkConfig {
    /// A small culture-like network: 50 units, 20 % inhibitory, 20 %
    /// connectivity with strong recurrent excitation — the regime of
    /// dissociated cultures, which fire in population bursts.
    fn default() -> Self {
        Self {
            neuron_count: 50,
            inhibitory_fraction: 0.2,
            connection_probability: 0.2,
            excitatory_weight: 10.0,
            inhibitory_weight: 6.0,
            background_drive: 2.5,
            dt: Seconds::new(1e-3),
        }
    }
}

/// A simulated recurrent network.
#[derive(Debug, Clone)]
pub struct SynapticNetwork {
    config: NetworkConfig,
    neurons: Vec<Izhikevich>,
    inhibitory: Vec<bool>,
    /// Adjacency: targets\[i\] lists the neurons neuron `i` projects to.
    targets: Vec<Vec<usize>>,
}

/// Result of a network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkActivity {
    /// Spike times per neuron.
    pub spike_trains: Vec<Vec<Seconds>>,
    /// Population spike count per time bin (bin = simulation step).
    pub population_rate: Vec<usize>,
    /// Simulation step used.
    pub dt: Seconds,
}

impl NetworkActivity {
    /// Total spikes across the population.
    pub fn total_spikes(&self) -> usize {
        self.spike_trains.iter().map(|t| t.len()).sum()
    }

    /// Burst-synchrony index: fraction of all spikes falling in bins whose
    /// population count exceeds `threshold` neurons. Near 0 for
    /// asynchronous firing, near 1 for all-spikes-in-bursts.
    pub fn burst_synchrony(&self, threshold: usize) -> f64 {
        let total: usize = self.population_rate.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let in_bursts: usize = self
            .population_rate
            .iter()
            .filter(|c| **c >= threshold)
            .sum();
        in_bursts as f64 / total as f64
    }
}

impl SynapticNetwork {
    /// Builds a network with random connectivity from `rng`.
    pub fn random<R: Rng>(config: NetworkConfig, rng: &mut R) -> Self {
        let n = config.neuron_count;
        let inhibitory: Vec<bool> = (0..n)
            .map(|_| rng.gen::<f64>() < config.inhibitory_fraction)
            .collect();
        let neurons: Vec<Izhikevich> = inhibitory
            .iter()
            .map(|inh| {
                Izhikevich::new(if *inh {
                    IzhikevichParams::fast_spiking()
                } else {
                    IzhikevichParams::regular_spiking()
                })
            })
            .collect();
        let targets: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|j| *j != i && rng.gen::<f64>() < config.connection_probability)
                    .collect()
            })
            .collect();
        Self {
            config,
            neurons,
            inhibitory,
            targets,
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.neurons.len()
    }

    /// `true` if the network has no neurons.
    pub fn is_empty(&self) -> bool {
        self.neurons.is_empty()
    }

    /// Whether neuron `i` is inhibitory.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_inhibitory(&self, i: usize) -> bool {
        self.inhibitory[i]
    }

    /// Simulates the network for `duration`, with noisy background drive
    /// from `rng`.
    pub fn run<R: Rng>(&mut self, duration: Seconds, rng: &mut R) -> NetworkActivity {
        let steps = (duration.value() / self.config.dt.value()).round() as usize;
        let n = self.neurons.len();
        let mut spike_trains: Vec<Vec<Seconds>> = vec![Vec::new(); n];
        let mut population_rate = Vec::with_capacity(steps);
        // Synaptic input accumulated for the *next* step.
        let mut pending = vec![0.0f64; n];

        for k in 0..steps {
            let now = self.config.dt * k as f64;
            let mut input = std::mem::take(&mut pending);
            pending = vec![0.0; n];
            let mut fired = Vec::new();
            for (i, neuron) in self.neurons.iter_mut().enumerate() {
                // Background: uniform noise around the mean drive.
                let drive = self.config.background_drive * 2.0 * rng.gen::<f64>() + input[i];
                if neuron.step(drive, self.config.dt) {
                    fired.push(i);
                    spike_trains[i].push(now);
                }
                input[i] = 0.0;
            }
            for &i in &fired {
                let w = if self.inhibitory[i] {
                    -self.config.inhibitory_weight
                } else {
                    self.config.excitatory_weight
                };
                for &j in &self.targets[i] {
                    pending[j] += w;
                }
            }
            population_rate.push(fired.len());
        }

        NetworkActivity {
            spike_trains,
            population_rate,
            dt: self.config.dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run_with(config: NetworkConfig, seed: u64, secs: f64) -> NetworkActivity {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = SynapticNetwork::random(config, &mut rng);
        net.run(Seconds::new(secs), &mut rng)
    }

    #[test]
    fn quiescent_without_drive() {
        let config = NetworkConfig {
            background_drive: 0.0,
            ..NetworkConfig::default()
        };
        let activity = run_with(config, 1, 1.0);
        assert_eq!(activity.total_spikes(), 0);
        assert_eq!(activity.burst_synchrony(3), 0.0);
    }

    #[test]
    fn driven_network_is_active() {
        let activity = run_with(NetworkConfig::default(), 2, 2.0);
        assert!(
            activity.total_spikes() > 100,
            "{} spikes",
            activity.total_spikes()
        );
        // Every-ish neuron participates.
        let active = activity
            .spike_trains
            .iter()
            .filter(|t| !t.is_empty())
            .count();
        assert!(active > 40, "{active}/50 active");
    }

    #[test]
    fn coupling_increases_synchrony() {
        let coupled = run_with(NetworkConfig::default(), 3, 3.0);
        let uncoupled = run_with(
            NetworkConfig {
                connection_probability: 0.0,
                ..NetworkConfig::default()
            },
            3,
            3.0,
        );
        let s_c = coupled.burst_synchrony(5);
        let s_u = uncoupled.burst_synchrony(5);
        assert!(
            s_c > s_u + 0.2,
            "coupled synchrony {s_c} vs uncoupled {s_u}"
        );
    }

    #[test]
    fn inhibition_reduces_firing() {
        let excitatory_only = run_with(
            NetworkConfig {
                inhibitory_fraction: 0.0,
                ..NetworkConfig::default()
            },
            4,
            2.0,
        );
        let inhibited = run_with(
            NetworkConfig {
                inhibitory_fraction: 0.5,
                ..NetworkConfig::default()
            },
            4,
            2.0,
        );
        assert!(excitatory_only.total_spikes() > inhibited.total_spikes());
    }

    #[test]
    fn spike_trains_are_sorted_and_bounded() {
        let activity = run_with(NetworkConfig::default(), 5, 1.0);
        for train in &activity.spike_trains {
            assert!(train.windows(2).all(|w| w[0] <= w[1]));
            assert!(train.iter().all(|t| t.value() < 1.0));
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_with(NetworkConfig::default(), 6, 1.0);
        let b = run_with(NetworkConfig::default(), 6, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn population_rate_sums_to_total() {
        let activity = run_with(NetworkConfig::default(), 7, 1.0);
        let rate_sum: usize = activity.population_rate.iter().sum();
        assert_eq!(rate_sum, activity.total_spikes());
    }
}
