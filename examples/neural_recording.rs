//! Record a cultured network with the 128×128 neural chip and map the
//! active neurons — the paper's Section 3 application.
//!
//! ```bash
//! cargo run --release --example neural_recording
//! ```

use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::dsp::frames::FrameStack;
use cmos_biosensor_arrays::dsp::spike::SpikeDetector;
use cmos_biosensor_arrays::neuro::culture::{Culture, CultureConfig};
use cmos_biosensor_arrays::units::Seconds;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Grow a culture over the 1 mm² surface.
    let mut rng = SmallRng::seed_from_u64(1234);
    let cfg = CultureConfig {
        neuron_count: 8,
        mean_rate_hz: 25.0,
        ..CultureConfig::default()
    };
    let mut culture = Culture::random(&cfg, &mut rng);
    let duration = Seconds::from_milli(150.0);
    culture.generate_spikes(duration, &mut rng);
    println!(
        "Culture: {} neurons, {} spikes over {duration}.",
        culture.neurons().len(),
        culture.total_spikes()
    );

    // 2. Record with the chip (per-pixel calibration happens
    //    automatically at the configured refresh interval).
    let mut chip = NeuroChip::new(NeuroChipConfig::default())?;
    let frames = (duration.value() * chip.timing().frame_rate.value()).round() as usize;
    let rec = chip.record(&culture, Seconds::ZERO, frames);
    println!(
        "Recorded {} frames at {} ({} pixels).",
        rec.len(),
        chip.timing().frame_rate,
        rec.geometry().len()
    );

    // 3. Input-referred frame stack, baseline-subtracted.
    let gain = rec.nominal_voltage_gain();
    let stack = FrameStack::new(
        rec.geometry().rows(),
        rec.geometry().cols(),
        rec.frames()
            .iter()
            .map(|f| f.samples().iter().map(|s| s / gain).collect())
            .collect(),
    )
    .detrended();

    // 4. Detect spikes at each neuron's soma pixel.
    let detector = SpikeDetector::default();
    let pitch = rec.geometry().pitch().value();
    println!();
    println!("neuron  position(µm)   diameter   true spikes  detected at soma");
    for (k, n) in culture.neurons().iter().enumerate() {
        let row = ((n.y.value() / pitch) as usize).min(rec.geometry().rows() - 1);
        let col = ((n.x.value() / pitch) as usize).min(rec.geometry().cols() - 1);
        let detections = detector.detect(&stack.pixel_series(row, col)).len();
        println!(
            "{k:>6}  ({:>4.0}, {:>4.0})   {:>7.1}µm  {:>11}  {detections:>16}",
            n.x.as_micro(),
            n.y.as_micro(),
            n.diameter.as_micro(),
            n.spikes.len(),
        );
    }

    // 5. Overall activity centroid sanity check.
    if let Some((r, c)) = stack.activity_centroid(0.7) {
        println!();
        println!(
            "Peak-activity centroid at pixel ({r:.1}, {c:.1}) ≈ ({:.0} µm, {:.0} µm).",
            c * pitch * 1e6,
            r * pitch * 1e6
        );
    }
    Ok(())
}
