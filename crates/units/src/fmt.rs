//! Engineering-notation formatting shared by all quantity types.

/// Formats `value` in engineering notation (exponent a multiple of three)
/// with an SI prefix and the given unit `symbol`.
///
/// The mantissa is printed with up to four significant digits, trailing
/// zeros trimmed. Values outside the atto–peta prefix range fall back to
/// scientific notation. Non-finite values print as `inf`/`-inf`/`NaN` with
/// the symbol appended.
///
/// # Examples
///
/// ```
/// use bsa_units::format_eng;
///
/// assert_eq!(format_eng(1.0e-12, "A"), "1 pA");
/// assert_eq!(format_eng(2.34e-7, "A"), "234 nA");
/// assert_eq!(format_eng(0.0, "V"), "0 V");
/// assert_eq!(format_eng(-5.6e3, "Hz"), "-5.6 kHz");
/// ```
pub fn format_eng(value: f64, symbol: &str) -> String {
    if value == 0.0 {
        return format!("0 {symbol}");
    }
    if value.is_nan() {
        return format!("NaN {symbol}");
    }
    if value.is_infinite() {
        return if value > 0.0 {
            format!("inf {symbol}")
        } else {
            format!("-inf {symbol}")
        };
    }

    let exp = value.abs().log10().floor() as i32;
    // Exponent snapped down to a multiple of 3.
    let eng_exp = (exp.div_euclid(3)) * 3;
    match prefix_for_exp(eng_exp) {
        Some(prefix) => {
            let mantissa = value / 10f64.powi(eng_exp);
            let m = round_sig(mantissa, 4);
            // Rounding may carry the mantissa to 1000; renormalize.
            if m.abs() >= 1000.0 {
                if let Some(p2) = prefix_for_exp(eng_exp + 3) {
                    return format!("{} {}{}", trim(m / 1000.0), p2, symbol);
                }
            }
            format!("{} {}{}", trim(m), prefix, symbol)
        }
        None => format!("{value:.3e} {symbol}"),
    }
}

/// SI prefix for an exponent that is a multiple of three, if in range.
fn prefix_for_exp(eng_exp: i32) -> Option<&'static str> {
    Some(match eng_exp {
        -18 => "a",
        -15 => "f",
        -12 => "p",
        -9 => "n",
        -6 => "µ",
        -3 => "m",
        0 => "",
        3 => "k",
        6 => "M",
        9 => "G",
        12 => "T",
        15 => "P",
        _ => return None,
    })
}

/// Parses an SI prefix character back to its power of ten.
pub(crate) fn exp_for_prefix(prefix: &str) -> Option<i32> {
    Some(match prefix {
        "a" => -18,
        "f" => -15,
        "p" => -12,
        "n" => -9,
        "µ" | "u" => -6,
        "m" => -3,
        "" => 0,
        "k" => 3,
        "M" => 6,
        "G" => 9,
        "T" => 12,
        "P" => 15,
        _ => return None,
    })
}

fn round_sig(x: f64, sig: u32) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let d = (sig as i32 - 1) - x.abs().log10().floor() as i32;
    let factor = 10f64.powi(d);
    (x * factor).round() / factor
}

fn trim(x: f64) -> String {
    let s = format!("{x}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero() {
        assert_eq!(format_eng(0.0, "A"), "0 A");
    }

    #[test]
    fn exact_prefixes() {
        assert_eq!(format_eng(1e-15, "F"), "1 fF");
        assert_eq!(format_eng(1e-12, "A"), "1 pA");
        assert_eq!(format_eng(1e-9, "A"), "1 nA");
        assert_eq!(format_eng(1e-6, "V"), "1 µV");
        assert_eq!(format_eng(1e-3, "V"), "1 mV");
        assert_eq!(format_eng(1.0, "V"), "1 V");
        assert_eq!(format_eng(1e3, "Hz"), "1 kHz");
        assert_eq!(format_eng(1e6, "Hz"), "1 MHz");
    }

    #[test]
    fn negative_values() {
        assert_eq!(format_eng(-2.5e-3, "V"), "-2.5 mV");
    }

    #[test]
    fn mantissa_rounding_carry() {
        // 999.96 rounds (4 sig digits) to 1000 → must renormalize to 1 k.
        assert_eq!(format_eng(999.96, "Hz"), "1 kHz");
    }

    #[test]
    fn four_significant_digits() {
        assert_eq!(format_eng(1.23456e-9, "A"), "1.235 nA");
        assert_eq!(format_eng(123.456e-9, "A"), "123.5 nA");
    }

    #[test]
    fn out_of_prefix_range_falls_back_to_scientific() {
        let s = format_eng(1e20, "Hz");
        assert!(s.contains('e'), "{s}");
    }

    #[test]
    fn non_finite() {
        assert_eq!(format_eng(f64::INFINITY, "V"), "inf V");
        assert_eq!(format_eng(f64::NEG_INFINITY, "V"), "-inf V");
        assert_eq!(format_eng(f64::NAN, "V"), "NaN V");
    }

    #[test]
    fn subnormal_boundaries() {
        assert_eq!(format_eng(999.4e-12, "A"), "999.4 pA");
        assert_eq!(format_eng(1000.0e-12, "A"), "1 nA");
    }
}
