//! Pixel-health tracking and yield reporting for both chip pipelines.
//!
//! Production sensor arrays are never defect-free; what makes them usable
//! is knowing *which* pixels to distrust. This module holds the shared
//! bookkeeping: calibration (DNA) and the pixel self-test (neuro) classify
//! every pixel into a [`PixelHealth`] state collected in a
//! [`HealthMonitor`]; a [`YieldReport`] then summarizes the die — counts
//! per health state, faults found per class, serial-link statistics and
//! the resulting [`DegradationMode`] the application should assume.

use crate::array::{ArrayGeometry, PixelAddress};
use crate::error::ChipError;
use bsa_faults::FaultClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Health classification of one pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PixelHealth {
    /// Calibrated within family limits; fully trusted.
    #[default]
    Healthy,
    /// Responds, but needed an out-of-family correction (e.g. only after
    /// calibration escalated its reference current or integration window).
    /// Usable, flagged for monitoring.
    OutOfFamily,
    /// No usable response; must be masked from interpretation.
    Dead,
}

impl PixelHealth {
    /// `true` if the pixel's readings may be used (healthy or flagged).
    pub fn is_usable(&self) -> bool {
        !matches!(self, Self::Dead)
    }
}

impl fmt::Display for PixelHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Healthy => "healthy",
            Self::OutOfFamily => "out-of-family",
            Self::Dead => "dead",
        })
    }
}

/// Per-pixel health states for one die, produced by calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthMonitor {
    geometry: ArrayGeometry,
    states: Vec<PixelHealth>,
}

impl HealthMonitor {
    /// A monitor with every pixel healthy.
    pub fn all_healthy(geometry: ArrayGeometry) -> Self {
        Self {
            states: vec![PixelHealth::Healthy; geometry.len()],
            geometry,
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Health of the pixel at a row-major index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the array.
    pub fn state(&self, index: usize) -> PixelHealth {
        self.states[index]
    }

    /// Health of the pixel at an address.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for bad addresses.
    pub fn state_at(&self, addr: PixelAddress) -> Result<PixelHealth, ChipError> {
        Ok(self.states[self.geometry.index_of(addr)?])
    }

    /// Reclassifies one pixel (row-major index).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the array.
    pub fn set_state(&mut self, index: usize, health: PixelHealth) {
        self.states[index] = health;
    }

    /// All per-pixel states in row-major order.
    pub fn states(&self) -> &[PixelHealth] {
        &self.states
    }

    /// Usability mask in row-major order (`true` = reading may be used).
    pub fn usable_mask(&self) -> Vec<bool> {
        self.states.iter().map(PixelHealth::is_usable).collect()
    }

    /// Row-major indices of dead pixels.
    pub fn dead_indices(&self) -> Vec<usize> {
        self.indices_of(PixelHealth::Dead)
    }

    /// Row-major indices of out-of-family pixels.
    pub fn out_of_family_indices(&self) -> Vec<usize> {
        self.indices_of(PixelHealth::OutOfFamily)
    }

    fn indices_of(&self, wanted: PixelHealth) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == wanted)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of pixels in the given state.
    pub fn count(&self, health: PixelHealth) -> usize {
        self.states.iter().filter(|s| **s == health).count()
    }

    /// Fraction of usable pixels.
    pub fn usable_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 1.0;
        }
        self.states.iter().filter(|s| s.is_usable()).count() as f64 / self.states.len() as f64
    }
}

/// How degraded the die is, as the application should treat it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationMode {
    /// Every pixel healthy, every channel up, serial link clean.
    FullPerformance,
    /// Some pixels or channels lost, but masking/interpolation/redundancy
    /// keep the application-level result trustworthy.
    Degraded,
    /// Too much of the array is gone for the result to be trusted.
    Unusable,
}

impl fmt::Display for DegradationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::FullPerformance => "full performance",
            Self::Degraded => "degraded",
            Self::Unusable => "unusable",
        })
    }
}

/// Serial-link statistics gathered during a fault-tolerant readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SerialLinkStats {
    /// Words that decoded cleanly on the first pass.
    pub clean_words: usize,
    /// Words recovered by re-reading.
    pub recovered_words: usize,
    /// Words still corrupt after the re-read budget.
    pub unrecovered_words: usize,
    /// Re-read passes performed.
    pub rereads: usize,
}

/// One die's fault/yield summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YieldReport {
    /// Total pixels on the die.
    pub total_pixels: usize,
    /// Pixels fully healthy.
    pub healthy: usize,
    /// Pixels flagged out-of-family (usable, monitored).
    pub out_of_family: usize,
    /// Pixels masked dead.
    pub dead: usize,
    /// Readout channels lost (neuro multiplexer).
    pub lost_channels: Vec<usize>,
    /// Total readout channels.
    pub total_channels: usize,
    /// Injections per fault class known to have been applied (from the
    /// compiled plan; empty for an un-instrumented die).
    pub injected: BTreeMap<FaultClass, usize>,
    /// Serial-link statistics from the last fault-tolerant readout.
    pub serial: SerialLinkStats,
    /// The resulting degradation classification.
    pub degradation: DegradationMode,
}

/// Above this fraction of unusable pixels the die is declared unusable —
/// redundancy-based calling needs a solid majority of replicates.
const UNUSABLE_DEAD_FRACTION: f64 = 0.5;

impl YieldReport {
    /// Builds a report from the monitor plus channel/serial state.
    pub fn new(
        monitor: &HealthMonitor,
        lost_channels: Vec<usize>,
        total_channels: usize,
        injected: BTreeMap<FaultClass, usize>,
        serial: SerialLinkStats,
    ) -> Self {
        let total_pixels = monitor.states().len();
        let healthy = monitor.count(PixelHealth::Healthy);
        let out_of_family = monitor.count(PixelHealth::OutOfFamily);
        let dead = monitor.count(PixelHealth::Dead);

        let dead_fraction = if total_pixels == 0 {
            0.0
        } else {
            dead as f64 / total_pixels as f64
        };
        let channels_gone = total_channels > 0 && lost_channels.len() * 2 >= total_channels;
        let degradation = if dead_fraction > UNUSABLE_DEAD_FRACTION
            || channels_gone
            || serial.unrecovered_words > total_pixels / 2
        {
            DegradationMode::Unusable
        } else if dead > 0
            || out_of_family > 0
            || !lost_channels.is_empty()
            || serial.recovered_words > 0
            || serial.unrecovered_words > 0
        {
            DegradationMode::Degraded
        } else {
            DegradationMode::FullPerformance
        };

        Self {
            total_pixels,
            healthy,
            out_of_family,
            dead,
            lost_channels,
            total_channels,
            injected,
            serial,
            degradation,
        }
    }

    /// Fraction of pixels that may be used.
    pub fn usable_fraction(&self) -> f64 {
        if self.total_pixels == 0 {
            return 1.0;
        }
        (self.healthy + self.out_of_family) as f64 / self.total_pixels as f64
    }

    /// `true` if every pixel, channel and serial word is clean.
    pub fn is_clean(&self) -> bool {
        self.degradation == DegradationMode::FullPerformance
    }
}

impl fmt::Display for YieldReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "yield: {}/{} usable ({:.1} %) — {} healthy, {} out-of-family, {} dead; mode: {}",
            self.healthy + self.out_of_family,
            self.total_pixels,
            100.0 * self.usable_fraction(),
            self.healthy,
            self.out_of_family,
            self.dead,
            self.degradation,
        )?;
        if !self.lost_channels.is_empty() {
            writeln!(
                f,
                "channels lost: {:?} of {}",
                self.lost_channels, self.total_channels
            )?;
        }
        if self.serial != SerialLinkStats::default() {
            writeln!(
                f,
                "serial: {} clean, {} recovered, {} unrecovered words ({} re-reads)",
                self.serial.clean_words,
                self.serial.recovered_words,
                self.serial.unrecovered_words,
                self.serial.rereads,
            )?;
        }
        for (class, n) in &self.injected {
            writeln!(f, "injected {class}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> ArrayGeometry {
        ArrayGeometry::dna_16x8()
    }

    #[test]
    fn fresh_monitor_is_fully_healthy() {
        let m = HealthMonitor::all_healthy(geometry());
        assert_eq!(m.usable_fraction(), 1.0);
        assert!(m.dead_indices().is_empty());
        assert_eq!(m.count(PixelHealth::Healthy), 128);
        assert!(m.state_at(PixelAddress::new(0, 0)).unwrap().is_usable());
    }

    #[test]
    fn clean_die_reports_full_performance() {
        let m = HealthMonitor::all_healthy(geometry());
        let r = YieldReport::new(
            &m,
            Vec::new(),
            16,
            BTreeMap::new(),
            SerialLinkStats::default(),
        );
        assert_eq!(r.degradation, DegradationMode::FullPerformance);
        assert!(r.is_clean());
        assert_eq!(r.usable_fraction(), 1.0);
    }

    #[test]
    fn dead_pixels_degrade_but_stay_usable() {
        let mut m = HealthMonitor::all_healthy(geometry());
        for i in 0..10 {
            m.set_state(i, PixelHealth::Dead);
        }
        m.set_state(20, PixelHealth::OutOfFamily);
        let r = YieldReport::new(
            &m,
            Vec::new(),
            16,
            BTreeMap::new(),
            SerialLinkStats::default(),
        );
        assert_eq!(r.degradation, DegradationMode::Degraded);
        assert_eq!(r.dead, 10);
        assert_eq!(r.out_of_family, 1);
        assert!((r.usable_fraction() - 118.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn mostly_dead_die_is_unusable() {
        let mut m = HealthMonitor::all_healthy(geometry());
        for i in 0..80 {
            m.set_state(i, PixelHealth::Dead);
        }
        let r = YieldReport::new(
            &m,
            Vec::new(),
            16,
            BTreeMap::new(),
            SerialLinkStats::default(),
        );
        assert_eq!(r.degradation, DegradationMode::Unusable);
    }

    #[test]
    fn losing_half_the_channels_is_unusable() {
        let m = HealthMonitor::all_healthy(geometry());
        let r = YieldReport::new(
            &m,
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            16,
            BTreeMap::new(),
            SerialLinkStats::default(),
        );
        assert_eq!(r.degradation, DegradationMode::Unusable);
    }

    #[test]
    fn serial_recoveries_count_as_degraded() {
        let m = HealthMonitor::all_healthy(geometry());
        let serial = SerialLinkStats {
            clean_words: 120,
            recovered_words: 8,
            unrecovered_words: 0,
            rereads: 2,
        };
        let r = YieldReport::new(&m, Vec::new(), 16, BTreeMap::new(), serial);
        assert_eq!(r.degradation, DegradationMode::Degraded);
    }

    #[test]
    fn display_summarizes_the_die() {
        let mut m = HealthMonitor::all_healthy(geometry());
        m.set_state(0, PixelHealth::Dead);
        let mut injected = BTreeMap::new();
        injected.insert(FaultClass::DeadPixel, 1);
        let r = YieldReport::new(&m, vec![3], 16, injected, SerialLinkStats::default());
        let text = r.to_string();
        assert!(text.contains("dead"), "{text}");
        assert!(text.contains("channels lost"), "{text}");
        assert!(text.contains("dead pixel: 1"), "{text}");
    }

    #[test]
    fn health_display_names() {
        assert_eq!(PixelHealth::Healthy.to_string(), "healthy");
        assert_eq!(PixelHealth::OutOfFamily.to_string(), "out-of-family");
        assert_eq!(PixelHealth::Dead.to_string(), "dead");
        assert_eq!(DegradationMode::Degraded.to_string(), "degraded");
    }
}
