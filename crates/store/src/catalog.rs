//! Store-root catalog: enumerate the readable recordings in a directory.

use crate::error::StoreError;
use crate::reader::SegmentReader;
use crate::writer::SEGMENT_EXT;
use bsa_link::ChipKind;
use std::io::ErrorKind;
use std::path::Path;

/// Summary of one readable recording in a store root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Recording name (segment file stem).
    pub name: String,
    /// Which array kind produced the frames.
    pub kind: ChipKind,
    /// Frame height in pixels.
    pub rows: u16,
    /// Frame width in pixels.
    pub cols: u16,
    /// Frames (or DNA readings) the segment holds.
    pub frames: u64,
    /// Segment file size in bytes.
    pub bytes: u64,
    /// FNV-1a-64 of the recorded chip-config snapshot.
    pub config_hash: u64,
}

/// Lists the readable recordings under `root`, sorted by name. A missing
/// root is an empty store, not an error; segments that fail validation
/// (in-progress recordings, torn writes) are skipped — they surface as
/// typed errors when opened directly, never as wrong catalog rows.
pub fn list_recordings(root: &Path) -> Result<Vec<CatalogEntry>, StoreError> {
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(err) if err.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err.into()),
    };
    let mut out = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SEGMENT_EXT) {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(reader) = SegmentReader::open(&path) else {
            continue;
        };
        let meta = reader.meta();
        out.push(CatalogEntry {
            name: name.to_string(),
            kind: meta.kind,
            rows: meta.rows,
            cols: meta.cols,
            frames: reader.frames(),
            bytes: reader.bytes(),
            config_hash: meta.config_hash,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}
