//! Fixture self-tests: every `//~ rule` marker in `fixtures/*.rs` must be
//! matched by exactly one reported violation of that rule on that line,
//! and no unmarked line may be flagged. This pins both the hit rate and
//! the false-positive rate of the analyzer.

use bsa_lint::lexer::{lex, strip_test_code};
use bsa_lint::rules::{run_rules, RuleSet};
use bsa_lint::{
    abi_pass, compute_summaries, conc_pass, flow_pass, lock_order_pass, parse_file, proto_pass,
    reach_pass, summary_pass, taint_pass, AbiEntry, Allowlist, LockState, ParsedFile, ProtoConfig,
    SourceFile, Violation, STATION_PREFIX,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

const ALL: RuleSet = RuleSet {
    determinism: true,
    panic_freedom: true,
    unit_safety: true,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Parses `//~ rule` markers into expected `(line, rule) -> count`.
fn expected_markers(source: &str) -> BTreeMap<(usize, String), usize> {
    let mut expected = BTreeMap::new();
    for (idx, line) in source.lines().enumerate() {
        for part in line.split("//~").skip(1) {
            let rule = part
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("empty //~ marker on line {}", idx + 1));
            *expected
                .entry((idx + 1, rule.to_string()))
                .or_insert(0usize) += 1;
        }
    }
    expected
}

fn check_fixture(name: &str, rules: RuleSet) {
    let source = fixture(name);
    let expected = expected_markers(&source);
    let violations = run_rules(name, &strip_test_code(&lex(&source)), rules);
    assert_markers(name, &expected, &violations);
}

/// A semantic pass under test, erased to a common shape.
type SemanticPass<'a> = &'a dyn Fn(&[SourceFile], &[ParsedFile], &mut Vec<Violation>);

/// Lexes + parses one fixture under a synthetic workspace path and runs
/// the given semantic pass over it, then applies the same exact-match
/// marker discipline as the lexical fixtures.
fn check_semantic_fixture(name: &str, synthetic_path: &str, pass: SemanticPass<'_>) {
    let source = fixture(name);
    let expected = expected_markers(&source);
    let sf = SourceFile {
        path: synthetic_path.to_string(),
        tokens: strip_test_code(&lex(&source)),
    };
    let pf = parse_file(&sf.path, &sf.tokens);
    let mut violations = Vec::new();
    pass(&[sf], &[pf], &mut violations);
    assert_markers(name, &expected, &violations);
}

fn assert_markers(
    name: &str,
    expected: &BTreeMap<(usize, String), usize>,
    violations: &[Violation],
) {
    let mut actual: BTreeMap<(usize, String), usize> = BTreeMap::new();
    for v in violations {
        *actual.entry((v.line, v.rule.to_string())).or_insert(0) += 1;
    }

    for ((line, rule), n) in expected {
        let got = actual.get(&(*line, rule.clone())).copied().unwrap_or(0);
        assert_eq!(
            got, *n,
            "{name}:{line}: expected {n} × {rule}, analyzer reported {got}\nall: {violations:#?}"
        );
    }
    for ((line, rule), n) in &actual {
        let want = expected.get(&(*line, rule.clone())).copied().unwrap_or(0);
        assert_eq!(
            *n, want,
            "{name}:{line}: analyzer reported {n} × {rule} but fixture marks {want} \
             (false positive)\nall: {violations:#?}"
        );
    }
}

/// Fixture-local proto wiring: the single fixture file plays both the
/// codec and the station (the idiom split — `Self::…` vs `Message::…` —
/// keeps the two halves distinguishable, exactly as in the workspace).
const FIXTURE_PROTO: ProtoConfig = ProtoConfig {
    message_enum: "Message",
    codec_prefix: "crates/lint/fixtures/",
    handler_prefix: "crates/lint/fixtures/",
    error_enum: "ProtocolError",
    reply_enum: "ErrorCode",
};

#[test]
fn determinism_fixture_is_fully_flagged() {
    check_fixture("determinism.rs", ALL);
}

#[test]
fn panics_fixture_is_fully_flagged() {
    check_fixture("panics.rs", ALL);
}

#[test]
fn units_fixture_is_fully_flagged() {
    check_fixture("units.rs", ALL);
}

#[test]
fn reach_fixture_is_fully_flagged() {
    // Synthetic path inside a reporting-scope crate; empty allowlist so
    // every sink kind (including indexing) propagates.
    check_semantic_fixture(
        "reach.rs",
        "crates/core/src/reach_fixture.rs",
        &|s, p, out| {
            let empty = Allowlist::parse("").expect("empty allowlist parses");
            reach_pass(s, p, &empty, &bsa_lint::ProvenLines::new(), out);
        },
    );
}

#[test]
fn proto_fixture_is_fully_flagged() {
    check_semantic_fixture("proto.rs", "crates/lint/fixtures/proto.rs", &|s, p, out| {
        proto_pass(s, p, &FIXTURE_PROTO, out);
    });
}

#[test]
fn conc_fixture_is_fully_flagged() {
    check_semantic_fixture(
        "conc.rs",
        "crates/station/src/conc_fixture.rs",
        &|s, p, out| {
            conc_pass(s, p, STATION_PREFIX, out);
        },
    );
}

#[test]
fn flow_fixture_is_fully_flagged() {
    // Synthetic path inside a dimensioned-value crate so `flow.unit`
    // runs alongside the always-on interval prover.
    check_semantic_fixture(
        "flow.rs",
        "crates/core/src/flow_fixture.rs",
        &|s, p, out| {
            let (Some(sf), Some(pf)) = (s.first(), p.first()) else {
                panic!("fixture harness passes exactly one file");
            };
            flow_pass(
                &sf.path,
                &sf.tokens,
                pf,
                true,
                &compute_summaries(s, p),
                out,
            );
        },
    );
}

#[test]
fn summary_fixture_is_fully_flagged() {
    check_semantic_fixture(
        "summary.rs",
        "crates/core/src/summary_fixture.rs",
        &|s, p, out| {
            summary_pass(s, p, &compute_summaries(s, p), out);
        },
    );
}

#[test]
fn taint_fixture_is_fully_flagged() {
    // Synthetic path inside a wire-scope crate so the sources and sinks
    // are armed; the fixture supplies both flagged flows and the full
    // sanitizer vocabulary as unmarked negatives.
    check_semantic_fixture(
        "taint.rs",
        "crates/link/src/taint_fixture.rs",
        &|s, p, out| {
            taint_pass(s, p, out);
        },
    );
}

/// The real validation idioms in `bsa-link`'s codec must stay taint-clean:
/// `message.rs` is full of decode-then-check-then-`with_capacity` patterns
/// that are exactly the shape the taint pass hunts, and every one of them
/// bounds the count first. Zero findings here pins the false-positive
/// rate on the highest-traffic wire code in the workspace.
#[test]
fn link_codec_has_zero_taint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../link/src");
    let mut sources = Vec::new();
    for name in ["message.rs", "frame.rs", "wire.rs"] {
        let path = root.join(name);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        sources.push(SourceFile {
            path: format!("crates/link/src/{name}"),
            tokens: strip_test_code(&lex(&text)),
        });
    }
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|sf| parse_file(&sf.path, &sf.tokens))
        .collect();
    let mut violations = Vec::new();
    taint_pass(&sources, &parsed, &mut violations);
    assert!(
        violations.is_empty(),
        "validated codec idioms must not be flagged: {violations:#?}"
    );
}

#[test]
fn locks_fixture_is_fully_flagged() {
    check_semantic_fixture(
        "locks.rs",
        "crates/station/src/locks_fixture.rs",
        &|s, p, out| {
            lock_order_pass(s, p, &[STATION_PREFIX], out);
        },
    );
}

#[test]
fn abi_fixture_is_fully_flagged() {
    // The fixture is faux lock text, not Rust: strip the markers off each
    // line (keeping line numbers intact), present the rest as the lock,
    // and diff it against a synthetic three-variant HEAD.
    let source = fixture("abi.rs");
    let expected = expected_markers(&source);
    let lock_text: String = source
        .lines()
        .map(|l| l.split("//~").next().unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n");
    let current = [
        ("Hello", 0x01u8, 2usize, 0x11u64),
        ("Ping", 0x02, 3, 0xaa),
        ("Pong", 0x03, 9, 0xdead),
    ]
    .map(|(variant, tag, len, hash)| AbiEntry {
        variant: variant.to_string(),
        tag,
        len,
        hash,
    });
    let mut violations = Vec::new();
    let summary = abi_pass(&current, &LockState::Present(lock_text), &mut violations);
    assert!(summary.lock_present);
    assert_eq!(summary.matched, 1, "only Ping matches: {violations:#?}");
    assert_markers("abi.rs", &expected, &violations);
}

#[test]
fn clean_fixture_has_zero_violations() {
    let source = fixture("clean.rs");
    assert!(
        expected_markers(&source).is_empty(),
        "clean.rs must carry no markers"
    );
    let violations = run_rules("clean.rs", &strip_test_code(&lex(&source)), ALL);
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn every_rule_id_is_exercised_by_some_fixture() {
    let mut seen: Vec<String> = Vec::new();
    for name in [
        "determinism.rs",
        "panics.rs",
        "units.rs",
        "reach.rs",
        "proto.rs",
        "conc.rs",
        "flow.rs",
        "locks.rs",
        "abi.rs",
        "summary.rs",
        "taint.rs",
    ] {
        for ((_, rule), _) in expected_markers(&fixture(name)) {
            seen.push(rule);
        }
    }
    for id in bsa_lint::RULE_IDS {
        assert!(
            seen.iter().any(|r| r == id),
            "rule `{id}` has no seeded fixture violation"
        );
    }
}
