//! Experiment E-F6b: the readout signal chain (paper Fig. 6, right half).
//!
//! Verifies the gain partitioning ×100 (on-chip, BW 4 MHz) × ×7 × 8:1 mux
//! × output driver (BW 32 MHz) × ×4 × ×2 (off-chip) = 5600, the gain-stage
//! calibration, amplitude linearity across the 100 µV – 5 mV window, and
//! the settling/crosstalk penalty of pushing the frame rate.

use bsa_bench::{banner, eng, pct, sig, Table};
use bsa_core::array::ArrayGeometry;
use bsa_core::neuro_chip::{ChainConfig, ChannelChain, NeuroPixel, NeuroPixelConfig, ScanTiming};
use bsa_dsp::stats::RunningStats;
use bsa_units::{Ampere, Hertz, Seconds, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E-F6b",
        "Fig. 6 (complete signal path)",
        "on-chip ×100 and ×7, off-chip ×4 and ×2; readout amp BW 4 MHz, driver BW 32 MHz",
    );

    let mut rng = SmallRng::seed_from_u64(7);

    // (a) Gain-stage calibration across 16 channels.
    let mut channels: Vec<ChannelChain> = (0..16)
        .map(|_| ChannelChain::sample(ChainConfig::default(), &mut rng))
        .collect();
    let before: RunningStats = channels.iter().map(|c| c.current_gain()).collect();
    for c in &mut channels {
        c.calibrate();
    }
    let after: RunningStats = channels.iter().map(|c| c.current_gain()).collect();
    let mut t = Table::new(
        "16-channel gain spread (nominal 100·7·4·2 = 5600)",
        &["condition", "mean gain", "σ/µ"],
    );
    t.add_row(vec![
        "before stage calibration".into(),
        sig(before.mean(), 4),
        pct(before.rel_spread()),
    ]);
    t.add_row(vec![
        "after stage calibration".into(),
        sig(after.mean(), 4),
        pct(after.rel_spread()),
    ]);
    t.print();
    println!();

    // (b) End-to-end amplitude linearity over the paper's signal window.
    let mut pixel =
        NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid");
    pixel.calibrate(Seconds::ZERO);
    let mut chain = channels[0].clone();
    let mut quiet_cfg = chain.config().clone();
    quiet_cfg.input_noise = Ampere::ZERO;
    let dwell = Seconds::from_nano(488.0);
    let mut t = Table::new(
        "End-to-end transfer: cleft signal → chain output (single sample)",
        &["V_cleft", "ΔI pixel", "V_out", "effective gain (V/V)"],
    );
    let mut chain_quiet = ChannelChain::sample(quiet_cfg, &mut rng);
    chain_quiet.calibrate();
    let base = pixel.read(Volt::ZERO, Seconds::ZERO);
    for v_uv in [100.0, 300.0, 1000.0, 3000.0, 5000.0] {
        let v = Volt::from_micro(v_uv);
        let i = pixel.read(v, Seconds::ZERO) - base;
        chain_quiet.reset_settling();
        // Settle on the value (two dwells) to remove the step transient.
        chain_quiet.process_sample(i, dwell, &mut rng);
        let out = chain_quiet.process_sample(i, dwell, &mut rng);
        t.add_row(vec![
            eng(v.value(), "V"),
            eng(i.value(), "A"),
            eng(out.value(), "V"),
            sig(out.value() / v.value(), 3),
        ]);
    }
    t.print();
    println!();
    println!(
        "Chain current gain ×{:.0}; pixel transconductance makes the overall",
        chain.current_gain()
    );
    println!("cleft-to-output voltage gain shown in the last column (≈ g_m·k·5600·R_conv).");
    println!();

    // (c) Frame-rate ablation: settling residue (crosstalk) vs frame rate.
    let geometry = ArrayGeometry::neuro_128x128();
    let mut t = Table::new(
        "Mux settling ablation: crosstalk from the previous pixel vs frame rate",
        &["frame rate", "pixel dwell", "residual crosstalk"],
    );
    for rate_k in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let timing = ScanTiming::new(geometry, Hertz::from_kilo(rate_k), 16).expect("valid timing");
        // Big step, then zero: fraction of the step surviving one dwell.
        chain.reset_settling();
        let mut cfg = chain.config().clone();
        cfg.input_noise = Ampere::ZERO;
        let mut c = ChannelChain::sample(cfg, &mut rng);
        c.calibrate();
        let step = Ampere::from_nano(100.0);
        let full = c.process_sample(step, Seconds::from_micro(100.0), &mut rng);
        c.reset_settling();
        c.process_sample(step, timing.pixel_dwell, &mut rng);
        let residue = c.process_sample(Ampere::ZERO, timing.pixel_dwell, &mut rng);
        t.add_row(vec![
            eng(rate_k * 1e3, "Hz"),
            eng(timing.pixel_dwell.value(), "s"),
            pct((residue.value() / full.value()).abs()),
        ]);
    }
    t.print();
    println!();
    println!("At the paper's 2 kframes/s the 488 ns dwell settles fully through the");
    println!("4 MHz readout amplifier; pushing the frame rate ≳8× makes the previous");
    println!("pixel bleed into the next — the BW numbers in Fig. 6 are sized for 2 kfps.");
}
