//! `proto.abi` — golden wire-ABI lock for bsa-link (DESIGN.md §14).
//!
//! `canonical_entries` encodes one fixed, fully-populated instance of
//! every [`Message`] variant (both [`StreamPayload`] arms get their own
//! entry, and the `InjectFaults` plan exercises every fault target and
//! kind) and fingerprints each byte layout: payload tag, encoded length,
//! and an FNV-1a-64 hash of the bytes. The fingerprints live in the
//! committed `link.abi.lock`; `check` fails on any drift, so a wire
//! format change is impossible without a lock-file diff in the same PR —
//! the encoding is a reviewed artifact, exactly like the allowlist.
//!
//! Regenerate deliberately with `cargo run -p bsa-lint -- abi regen`.

use bsa_link::{
    ChipKind, CultureSpec, DegradationSummary, DnaChipSpec, ErrorCode, FaultEntrySpec,
    FaultKindSpec, FaultPlanSpec, FaultTargetSpec, Message, NeuroChipSpec, PixelCount,
    RecordingEntry, SerialLinkSummary, StatsSnapshot, StreamPayload, TargetSpec, YieldSummary,
};

use crate::rules::{violation, Violation};

/// Workspace-relative path of the committed lock file.
pub const LOCK_FILE: &str = "link.abi.lock";

/// One locked encoding fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbiEntry {
    /// Variant name, with the payload arm appended where one variant has
    /// several shapes (`StreamData/NeuroFrames`).
    pub variant: String,
    /// Wire tag (first payload byte).
    pub tag: u8,
    /// Encoded payload length in bytes, tag included.
    pub len: usize,
    /// FNV-1a-64 over the payload bytes.
    pub hash: u64,
}

/// The contents of `link.abi.lock` on disk, or its absence.
#[derive(Debug, Clone)]
pub enum LockState {
    /// The lock file's text.
    Present(String),
    /// No lock file — `check` fails until `abi regen` commits one.
    Missing,
}

/// What the ABI pass saw, for the report.
#[derive(Debug, Clone, Default)]
pub struct AbiSummary {
    /// Encodings fingerprinted at HEAD.
    pub variants: usize,
    /// Fingerprints that matched the lock.
    pub matched: usize,
    /// Whether a lock file was found at all.
    pub lock_present: bool,
}

/// FNV-1a 64-bit: dependency-free, stable, good enough to pin a byte
/// layout (this is drift detection, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One canonical, deterministic instance per wire shape. Values are
/// arbitrary but fixed forever: the lock pins the *layout*, and distinct
/// field values make transpositions (swapped fields of one width) show
/// up in the hash.
fn canonical_messages() -> Vec<(&'static str, Message)> {
    vec![
        (
            "Hello",
            Message::Hello {
                client: "bsa-abi".to_string(),
            },
        ),
        (
            "HelloAck",
            Message::HelloAck {
                server: "station".to_string(),
                version: 1,
            },
        ),
        ("Ping", Message::Ping { token: 0x0102_0304 }),
        ("Pong", Message::Pong { token: 0x0102_0304 }),
        (
            "AttachDna",
            Message::AttachDna(DnaChipSpec {
                rows: 3,
                cols: 5,
                seed: 7,
                frame_time_s: 0.25,
            }),
        ),
        (
            "AttachNeuro",
            Message::AttachNeuro(NeuroChipSpec {
                rows: 3,
                cols: 5,
                channels: 4,
                seed: 7,
                frame_rate_hz: 2000.0,
            }),
        ),
        (
            "Attached",
            Message::Attached {
                chip: 2,
                kind: ChipKind::Neuro,
                rows: 3,
                cols: 5,
            },
        ),
        ("Detach", Message::Detach { chip: 2 }),
        ("Detached", Message::Detached { chip: 2 }),
        (
            "ConfigureAssay",
            Message::ConfigureAssay {
                chip: 2,
                probes: vec!["ACGT".to_string(), "TTAG".to_string()],
                targets: vec![TargetSpec {
                    sequence: "ACGT".to_string(),
                    concentration_molar: 1e-9,
                }],
            },
        ),
        ("Calibrate", Message::Calibrate { chip: 2 }),
        (
            "CalibrationDone",
            Message::CalibrationDone {
                chip: 2,
                healthy: 13,
                out_of_family: 2,
                dead: 1,
            },
        ),
        (
            "InjectFaults",
            Message::InjectFaults {
                chip: 2,
                plan: FaultPlanSpec {
                    seed: 9,
                    entries: vec![
                        FaultEntrySpec {
                            target: FaultTargetSpec::Pixel { row: 1, col: 2 },
                            kind: FaultKindSpec::DeadPixel,
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::ArrayWide { density: 0.125 },
                            kind: FaultKindSpec::StuckCount { count: 42 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::LeakyElectrode { leakage_a: 1e-12 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::ComparatorDrift { offset_v: 0.01 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::ComparatorStuck { high: true },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::DacSaturation { limit: 0.5 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::GainClipping { limit_v: 0.25 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::ChannelLoss { channel: 3 },
                        },
                        FaultEntrySpec {
                            target: FaultTargetSpec::Global,
                            kind: FaultKindSpec::SerialBitErrors { rate: 1e-6 },
                        },
                    ],
                },
            },
        ),
        ("QueryHealth", Message::QueryHealth { chip: 2 }),
        (
            "HealthReport",
            Message::HealthReport {
                chip: 2,
                report: YieldSummary {
                    total_pixels: 15,
                    healthy: 12,
                    out_of_family: 2,
                    dead: 1,
                    lost_channels: vec![3],
                    total_channels: 4,
                    injected: 9,
                    serial: SerialLinkSummary {
                        clean_words: 100,
                        recovered_words: 5,
                        unrecovered_words: 1,
                        rereads: 6,
                    },
                    degradation: DegradationSummary::Degraded,
                },
            },
        ),
        (
            "MaskPixels",
            Message::MaskPixels {
                chip: 2,
                pixels: vec![0, 7, 14],
            },
        ),
        ("Masked", Message::Masked { chip: 2, masked: 3 }),
        (
            "RunAssay",
            Message::RunAssay {
                chip: 2,
                stream_counts: true,
            },
        ),
        (
            "AssayResult",
            Message::AssayResult {
                chip: 2,
                counts: vec![5, 6, 7],
                estimated_currents_a: vec![1e-12, 2e-12],
            },
        ),
        (
            "StartNeuroStream",
            Message::StartNeuroStream {
                chip: 2,
                frames: 8,
                chunk_frames: 2,
                t0_s: 0.5,
                culture: CultureSpec {
                    seed: 11,
                    neuron_count: 5,
                    spike_duration_s: 0.002,
                },
            },
        ),
        (
            "StreamData/NeuroFrames",
            Message::StreamData {
                chip: 2,
                seq: 1,
                payload: StreamPayload::NeuroFrames {
                    first_frame: 4,
                    rows: 2,
                    cols: 2,
                    samples: vec![0.25, -0.5, 0.75, 1.0],
                },
            },
        ),
        (
            "StreamData/DnaCounts",
            Message::StreamData {
                chip: 2,
                seq: 2,
                payload: StreamPayload::DnaCounts {
                    readings: vec![PixelCount {
                        row: 1,
                        col: 2,
                        count: 99,
                    }],
                },
            },
        ),
        (
            "StreamEnd",
            Message::StreamEnd {
                chip: 2,
                frames_sent: 8,
                frames_dropped: 1,
            },
        ),
        ("QueryStats", Message::QueryStats),
        (
            "StatsReport",
            Message::StatsReport(StatsSnapshot {
                sessions_opened: 1,
                sessions_active: 2,
                chips_attached: 3,
                requests: 4,
                frames_served: 5,
                frames_dropped: 6,
                chunks_sent: 7,
                bytes_sent: 8,
                queue_peak: 9,
            }),
        ),
        ("Ack", Message::Ack),
        (
            "ErrorReply",
            Message::ErrorReply {
                // `StoreError` is the last-numbered code, so inserting or
                // reordering codes shifts this byte and trips the hash.
                code: ErrorCode::StoreError,
                message: "boom".to_string(),
            },
        ),
        (
            "StartRecording",
            Message::StartRecording {
                chip: 2,
                name: "take-1".to_string(),
            },
        ),
        (
            "RecordingStarted",
            Message::RecordingStarted {
                chip: 2,
                name: "take-1".to_string(),
            },
        ),
        ("StopRecording", Message::StopRecording { chip: 2 }),
        (
            "RecordingStopped",
            Message::RecordingStopped {
                chip: 2,
                name: "take-1".to_string(),
                frames_written: 48,
                frames_dropped: 3,
                bytes_written: 6_144,
            },
        ),
        ("ListRecordings", Message::ListRecordings),
        (
            "RecordingList",
            Message::RecordingList {
                recordings: vec![RecordingEntry {
                    name: "take-1".to_string(),
                    kind: ChipKind::Neuro,
                    rows: 3,
                    cols: 5,
                    frames: 48,
                    bytes: 6_144,
                    config_hash: 0x0102_0304_0506_0708,
                }],
            },
        ),
        (
            "Replay",
            Message::Replay {
                name: "take-1".to_string(),
                chunk_frames: 8,
            },
        ),
    ]
}

/// Fingerprints of every canonical encoding at HEAD.
pub fn canonical_entries() -> Vec<AbiEntry> {
    canonical_messages()
        .into_iter()
        .map(|(name, msg)| {
            let payload = msg.encode_payload();
            AbiEntry {
                variant: name.to_string(),
                tag: payload.first().copied().unwrap_or(0),
                len: payload.len(),
                hash: fnv1a64(&payload),
            }
        })
        .collect()
}

/// Renders the lock-file text for `entries`.
pub fn render_lock(entries: &[AbiEntry]) -> String {
    let mut out = String::new();
    out.push_str(
        "# bsa-link wire-ABI lock. One line per canonical encoding:\n\
         #   <variant> tag=<first payload byte> len=<payload bytes> fnv=<FNV-1a-64>\n\
         # `cargo run -p bsa-lint -- check` fails if HEAD's encodings drift from\n\
         # this file; regenerate DELIBERATELY with `cargo run -p bsa-lint -- abi regen`\n\
         # and review the diff like any other wire-format change.\n",
    );
    for e in entries {
        out.push_str(&format!(
            "{} tag=0x{:02X} len={} fnv={:016x}\n",
            e.variant, e.tag, e.len, e.hash
        ));
    }
    out
}

/// Parses lock-file text back into entries with their 1-based line
/// numbers. Malformed lines are returned as errors, not skipped — a
/// corrupted lock must fail loudly.
pub fn parse_lock(text: &str) -> Result<Vec<(AbiEntry, usize)>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let variant = parts
            .next()
            .ok_or_else(|| format!("{LOCK_FILE}:{line_no}: empty entry"))?;
        let mut tag = None;
        let mut len = None;
        let mut hash = None;
        for field in parts {
            if let Some(v) = field.strip_prefix("tag=0x") {
                tag = u8::from_str_radix(v, 16).ok();
            } else if let Some(v) = field.strip_prefix("len=") {
                len = v.parse::<usize>().ok();
            } else if let Some(v) = field.strip_prefix("fnv=") {
                hash = u64::from_str_radix(v, 16).ok();
            } else {
                return Err(format!(
                    "{LOCK_FILE}:{line_no}: unrecognised field `{field}`"
                ));
            }
        }
        match (tag, len, hash) {
            (Some(tag), Some(len), Some(hash)) => entries.push((
                AbiEntry {
                    variant: variant.to_string(),
                    tag,
                    len,
                    hash,
                },
                line_no,
            )),
            _ => {
                return Err(format!(
                    "{LOCK_FILE}:{line_no}: need tag=0x…, len=… and fnv=… fields"
                ))
            }
        }
    }
    Ok(entries)
}

/// Compares HEAD encodings against the lock and reports drift as
/// `proto.abi` violations (never allowlistable — the only fix is a code
/// revert or a deliberate `abi regen`).
pub fn abi_pass(current: &[AbiEntry], lock: &LockState, out: &mut Vec<Violation>) -> AbiSummary {
    let mut summary = AbiSummary {
        variants: current.len(),
        matched: 0,
        lock_present: matches!(lock, LockState::Present(_)),
    };
    let text = match lock {
        LockState::Present(text) => text,
        LockState::Missing => {
            out.push(violation(
                LOCK_FILE,
                1,
                "proto.abi",
                "wire-ABI lock file is missing; run `cargo run -p bsa-lint -- abi regen` \
                 and commit it",
            ));
            return summary;
        }
    };
    let locked = match parse_lock(text) {
        Ok(entries) => entries,
        Err(msg) => {
            out.push(violation(LOCK_FILE, 1, "proto.abi", msg));
            return summary;
        }
    };
    for cur in current {
        match locked.iter().find(|(e, _)| e.variant == cur.variant) {
            None => out.push(violation(
                LOCK_FILE,
                1,
                "proto.abi",
                format!(
                    "`{}` encodes at HEAD but is not in {LOCK_FILE}; if the new wire shape \
                     is intentional, run `abi regen` and commit the diff",
                    cur.variant
                ),
            )),
            Some((e, line)) if e != cur => out.push(violation(
                LOCK_FILE,
                *line,
                "proto.abi",
                format!(
                    "`{}` encoding drifted from the lock: locked tag=0x{:02X} len={} \
                     fnv={:016x}, HEAD tag=0x{:02X} len={} fnv={:016x}; revert the wire \
                     change or run `abi regen` deliberately",
                    cur.variant, e.tag, e.len, e.hash, cur.tag, cur.len, cur.hash
                ),
            )),
            Some(_) => summary.matched += 1,
        }
    }
    for (e, line) in &locked {
        if !current.iter().any(|c| c.variant == e.variant) {
            out.push(violation(
                LOCK_FILE,
                *line,
                "proto.abi",
                format!(
                    "`{}` is locked but no longer encodes at HEAD — removing a wire shape \
                     is a breaking change; run `abi regen` if intentional",
                    e.variant
                ),
            ));
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_cover_every_message_variant() {
        let entries = canonical_entries();
        // 33 Message variants, with StreamData split per payload arm.
        assert_eq!(entries.len(), 34);
        let mut names: Vec<&str> = entries.iter().map(|e| e.variant.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 34, "duplicate variant names");
    }

    #[test]
    fn entries_are_deterministic() {
        assert_eq!(canonical_entries(), canonical_entries());
    }

    #[test]
    fn tags_are_unique_per_variant() {
        let entries = canonical_entries();
        let mut tags: Vec<u8> = entries.iter().map(|e| e.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        // Both StreamData arms share 0x13; everything else is distinct.
        assert_eq!(tags.len(), entries.len() - 1);
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = canonical_entries();
        let text = render_lock(&entries);
        let parsed = parse_lock(&text).expect("parses");
        let back: Vec<AbiEntry> = parsed.into_iter().map(|(e, _)| e).collect();
        assert_eq!(back, entries);
    }

    #[test]
    fn matching_lock_is_clean() {
        let entries = canonical_entries();
        let lock = LockState::Present(render_lock(&entries));
        let mut out = Vec::new();
        let summary = abi_pass(&entries, &lock, &mut out);
        assert!(out.is_empty(), "{out:#?}");
        assert_eq!(summary.matched, summary.variants);
        assert!(summary.lock_present);
    }

    #[test]
    fn missing_lock_is_flagged() {
        let entries = canonical_entries();
        let mut out = Vec::new();
        let summary = abi_pass(&entries, &LockState::Missing, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.first().expect("one").rule, "proto.abi");
        assert!(!summary.lock_present);
    }

    #[test]
    fn drifted_hash_is_flagged_with_both_fingerprints() {
        let entries = canonical_entries();
        let mut locked = entries.clone();
        if let Some(e) = locked.first_mut() {
            e.hash ^= 1;
        }
        let lock = LockState::Present(render_lock(&locked));
        let mut out = Vec::new();
        abi_pass(&entries, &lock, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        let v = out.first().expect("one");
        assert_eq!(v.rule, "proto.abi");
        assert!(v.message.contains("drifted"));
    }

    #[test]
    fn added_and_removed_variants_are_flagged() {
        let entries = canonical_entries();
        let mut locked = entries.clone();
        let removed = locked.pop().expect("non-empty");
        locked.push(AbiEntry {
            variant: "Ghost".to_string(),
            tag: 0x7F,
            len: 1,
            hash: 1,
        });
        let lock = LockState::Present(render_lock(&locked));
        let mut out = Vec::new();
        abi_pass(&entries, &lock, &mut out);
        let msgs: Vec<&str> = out.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:#?}");
        assert!(msgs.iter().any(|m| m.contains(&removed.variant)));
        assert!(msgs.iter().any(|m| m.contains("Ghost")));
    }

    #[test]
    fn corrupted_lock_fails_loudly() {
        let lock = LockState::Present("Hello tag=banana\n".to_string());
        let mut out = Vec::new();
        abi_pass(&canonical_entries(), &lock, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out
            .first()
            .expect("one")
            .message
            .contains("link.abi.lock:1"));
    }

    #[test]
    fn canonical_payloads_decode_back() {
        // The canonical instances must themselves be valid wire messages.
        for (name, msg) in canonical_messages() {
            let payload = msg.encode_payload();
            let back = Message::decode_payload(&payload)
                .unwrap_or_else(|e| panic!("{name} does not round-trip: {e:?}"));
            assert_eq!(back, msg, "{name}");
        }
    }
}
