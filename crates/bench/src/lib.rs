// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Experiment harness for the paper-reproduction binaries and benches.
//!
//! Each figure of Thewes et al. (DATE 2005) has a binary in `src/bin/`
//! (`exp_f1` … `exp_t1`) that regenerates the corresponding data; this
//! library provides the shared table formatting and a few common
//! experiment helpers so integration tests can assert on the same numbers
//! the binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A printable results table with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are displayed as given).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let pad = w - c.chars().count();
                s.push_str("| ");
                s.push_str(c);
                s.push_str(&" ".repeat(pad + 1));
            }
            s.push('|');
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells with
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Saves the table as CSV, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be written.
    pub fn save_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Writes a row-major scalar map as an 8-bit ASCII PGM image (P2), scaled
/// to the data range — used to export activity maps of the 128×128 array.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be written.
///
/// # Panics
///
/// Panics if `values.len() != rows * cols` or the map is empty.
pub fn save_pgm(
    path: impl AsRef<std::path::Path>,
    values: &[f64],
    rows: usize,
    cols: usize,
) -> std::io::Result<()> {
    assert_eq!(values.len(), rows * cols, "map dimensions mismatch");
    assert!(!values.is_empty(), "empty map");
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-30);
    let mut out = format!("P2\n{cols} {rows}\n255\n");
    for r in 0..rows {
        let line: Vec<String> = (0..cols)
            .map(|c| {
                let v = ((values[r * cols + c] - min) / span * 255.0).round() as u8;
                v.to_string()
            })
            .collect();
        let _ = writeln!(out, "{}", line.join(" "));
    }
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, out)
}

/// Formats a value with engineering notation and a unit (thin wrapper over
/// [`bsa_units::format_eng`]).
pub fn eng(value: f64, unit: &str) -> String {
    bsa_units::format_eng(value, unit)
}

/// Formats a value with `digits` significant digits.
pub fn sig(value: f64, digits: usize) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let exp = value.abs().log10().floor() as i32;
    let decimals = (digits as i32 - 1 - exp).max(0) as usize;
    format!("{value:.decimals$}")
}

/// Formats a ratio as `×N`.
pub fn times(ratio: f64) -> String {
    format!("×{}", sig(ratio, 3))
}

/// Formats a fraction as a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1} %", fraction * 100.0)
}

/// Prints an experiment banner.
pub fn banner(id: &str, paper_artifact: &str, claim: &str) {
    println!();
    println!("################################################################");
    println!("# Experiment {id} — reproduces {paper_artifact}");
    println!("# Paper claim: {claim}");
    println!("################################################################");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long header", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["100".into(), "x".into(), "yyyy".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // All data lines have equal width.
        assert_eq!(lines[2].chars().count(), lines[3].chars().count());
        assert_eq!(lines[3].chars().count(), lines[4].chars().count());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(sig(1234.6, 3), "1235");
        assert_eq!(sig(0.012345, 3), "0.0123");
        assert_eq!(sig(0.0, 3), "0");
        assert_eq!(sig(5600.0, 3), "5600");
    }

    #[test]
    fn helper_formatting() {
        assert_eq!(times(5600.0), "×5600");
        assert_eq!(pct(0.123), "12.3 %");
        assert_eq!(eng(1e-12, "A"), "1 pA");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("| x"));
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new("csv", &["a", "b"]);
        t.add_row(vec!["1,5".into(), "plain".into()]);
        t.add_row(vec!["say \"hi\"".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"1,5\",plain");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",x");
    }

    #[test]
    fn csv_saves_to_disk() {
        let mut t = Table::new("csv", &["x"]);
        t.add_row(vec!["42".into()]);
        let path = std::env::temp_dir().join("bsa_bench_test/table.csv");
        t.save_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("42"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pgm_export_format() {
        let values = vec![0.0, 0.5, 1.0, 0.25, 0.75, 0.0];
        let path = std::env::temp_dir().join("bsa_bench_test/map.pgm");
        save_pgm(&path, &values, 2, 3).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("3 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("0 128 255"));
        assert_eq!(lines.next(), Some("64 191 0"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "dimensions mismatch")]
    fn pgm_rejects_bad_dimensions() {
        let _ = save_pgm("/tmp/never.pgm", &[1.0, 2.0], 2, 2);
    }
}
