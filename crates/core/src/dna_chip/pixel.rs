//! The in-pixel sawtooth current-to-frequency converter (paper Fig. 3).
//!
//! "The voltage of the sensor electrode is controlled by a regulation loop
//! via an operational amplifier and a source follower transistor. An
//! integrating capacitor C_int is charged by the sensor current. When the
//! switching level of the comparator is reached, a reset pulse is
//! generated. The measured frequency is approximately proportional to the
//! sensor current."
//!
//! The conversion period is
//!
//! ```text
//! T(I) = C_int·ΔV / I + τ_delay + τ_reset
//! ```
//!
//! — linear in 1/I with a current-independent dead time that compresses
//! the transfer curve at the high end of the 1 pA … 100 nA range.

use crate::error::ChipError;
use bsa_circuit::comparator::{Comparator, DelayStage};
use bsa_circuit::digital::EventCounter;
use bsa_circuit::noise::GaussianSampler;
use bsa_circuit::waveform::Waveform;
use bsa_faults::PixelFaults;
use bsa_units::consts::ELEMENTARY_CHARGE;
use bsa_units::{Ampere, Farad, Hertz, Seconds, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Nominal design values of the converter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnaPixelConfig {
    /// Integration capacitor C_int.
    pub c_int: Farad,
    /// Ramp start voltage (value of the integration node after reset).
    pub v_start: Volt,
    /// Ramp span ΔV from start to the comparator switching level.
    pub delta_v: Volt,
    /// Comparator propagation delay τ_delay.
    pub comparator_delay: Seconds,
    /// Reset pulse width τ_reset (M_res on-time).
    pub reset_width: Seconds,
    /// In-pixel counter width in bits.
    pub counter_bits: u8,
}

impl Default for DnaPixelConfig {
    /// Values matching the paper's Fig. 3 concept: C_int = 100 fF charged
    /// over a 1 V span gives f = I / 100 fC — 10 Hz at 1 pA, ≈1 MHz at
    /// 100 nA — with 100 ns of dead time (comparator delay + reset pulse).
    fn default() -> Self {
        Self {
            c_int: Farad::from_femto(100.0),
            v_start: Volt::new(0.5),
            delta_v: Volt::new(1.0),
            comparator_delay: Seconds::from_nano(40.0),
            reset_width: Seconds::from_nano(60.0),
            counter_bits: 32,
        }
    }
}

/// Per-pixel static variations of the converter (device mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PixelVariation {
    /// Relative C_int error (Δ C/C).
    pub c_int_rel_err: f64,
    /// Comparator input offset, which shifts the effective ΔV.
    pub comparator_offset: Volt,
    /// Relative delay variation.
    pub delay_rel_err: f64,
}

impl PixelVariation {
    /// Samples a variation: σ(ΔC/C) = 2 %, σ(offset) = 20 mV (2 % of the
    /// 1 V ramp), σ(Δτ/τ) = 5 % — typical for the paper's 0.5 µm process
    /// without trimming; the periphery auto-calibration exists to remove
    /// exactly this spread.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let mut g = GaussianSampler::new();
        Self {
            c_int_rel_err: 0.02 * g.sample(rng),
            comparator_offset: Volt::from_milli(20.0) * g.sample(rng),
            delay_rel_err: 0.05 * g.sample(rng),
        }
    }
}

/// Result of one conversion frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionResult {
    /// Number of reset pulses counted in the frame.
    pub count: u64,
    /// `true` if the in-pixel counter saturated.
    pub overflowed: bool,
}

/// One DNA-chip pixel: regulation loop + sawtooth converter + counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnaPixel {
    config: DnaPixelConfig,
    variation: PixelVariation,
    /// Multiplicative correction factor set by auto-calibration
    /// (1.0 = uncalibrated).
    gain_correction: f64,
    /// Injected defects (default: none).
    faults: PixelFaults,
}

impl DnaPixel {
    /// Creates a pixel with nominal (mismatch-free) devices.
    pub fn nominal(config: DnaPixelConfig) -> Self {
        Self {
            config,
            variation: PixelVariation::default(),
            gain_correction: 1.0,
            faults: PixelFaults::default(),
        }
    }

    /// Creates a pixel with the given static variation.
    pub fn with_variation(config: DnaPixelConfig, variation: PixelVariation) -> Self {
        Self {
            config,
            variation,
            gain_correction: 1.0,
            faults: PixelFaults::default(),
        }
    }

    /// The nominal configuration.
    pub fn config(&self) -> &DnaPixelConfig {
        &self.config
    }

    /// This pixel's static variation.
    pub fn variation(&self) -> &PixelVariation {
        &self.variation
    }

    /// The calibration gain-correction factor currently applied.
    pub fn gain_correction(&self) -> f64 {
        self.gain_correction
    }

    /// Sets the calibration gain-correction factor (see
    /// [`crate::dna_chip::GainCalibration`]).
    ///
    /// The correction is realized by the pixel's calibration DAC; if a
    /// [DAC-saturation fault](bsa_faults::FaultKind::DacSaturation) is
    /// present, the stored factor is clamped to the surviving DAC range.
    pub fn set_gain_correction(&mut self, k: f64) {
        self.gain_correction = self.faults.clamp_correction(k);
    }

    /// The injected defects on this pixel.
    pub fn faults(&self) -> &PixelFaults {
        &self.faults
    }

    /// Injects (or clears, with the default value) defects on this pixel.
    pub fn set_faults(&mut self, faults: PixelFaults) {
        self.faults = faults;
        // Re-clamp any stored correction against the new DAC range.
        self.gain_correction = self.faults.clamp_correction(self.gain_correction);
    }

    /// Effective integration capacitance including mismatch.
    pub fn c_int_effective(&self) -> Farad {
        self.config.c_int * (1.0 + self.variation.c_int_rel_err)
    }

    /// Effective ramp span including the comparator offset and any
    /// injected switching-level drift.
    pub fn delta_v_effective(&self) -> Volt {
        self.config.delta_v + self.variation.comparator_offset + self.faults.comparator_drift
    }

    /// The current actually entering the integrator: sensor current plus
    /// any injected electrode leakage.
    fn integrator_input(&self, i: Ampere) -> Ampere {
        i + self.faults.leakage
    }

    /// Effective dead time per cycle (delay + reset width).
    pub fn dead_time(&self) -> Seconds {
        (self.config.comparator_delay + self.config.reset_width)
            * (1.0 + self.variation.delay_rel_err)
    }

    /// Conversion period for a given sensor current (this pixel's actual
    /// hardware, including mismatch).
    ///
    /// # Panics
    ///
    /// Panics if the current is not strictly positive.
    pub fn period(&self, i: Ampere) -> Seconds {
        assert!(i.value() > 0.0, "conversion requires positive current");
        let ramp = (self.c_int_effective() * self.delta_v_effective()) / i;
        ramp + self.dead_time()
    }

    /// Conversion frequency 1/T for a given sensor current.
    pub fn frequency(&self, i: Ampere) -> Hertz {
        self.period(i).recip()
    }

    /// Noise-free conversion: the count after a frame of `frame_time`,
    /// saturating at the counter's width. Injected defects apply: a dead
    /// or comparator-stuck pixel counts 0, a stuck counter returns its
    /// frozen value, electrode leakage adds to the sensor current.
    pub fn convert_ideal(&mut self, i: Ampere, frame_time: Seconds) -> u64 {
        let counter = EventCounter::new(self.config.counter_bits);
        if self.faults.dead {
            return 0;
        }
        if let Some(frozen) = self.faults.stuck_count {
            return frozen.min(counter.max_count());
        }
        let i = self.integrator_input(i);
        let n = (frame_time.value() / self.period(i).value()).floor() as u64;
        n.min(counter.max_count())
    }

    /// Full conversion with counting statistics: shot noise of the charge
    /// packets plus ±1 quantization of the cycle phase. Injected defects
    /// apply as in [`convert_ideal`](Self::convert_ideal).
    pub fn convert<R: Rng>(
        &mut self,
        i: Ampere,
        frame_time: Seconds,
        rng: &mut R,
    ) -> ConversionResult {
        let counter = EventCounter::new(self.config.counter_bits);
        if self.faults.dead {
            return ConversionResult {
                count: 0,
                overflowed: false,
            };
        }
        if let Some(frozen) = self.faults.stuck_count {
            return ConversionResult {
                count: frozen.min(counter.max_count()),
                overflowed: frozen > counter.max_count(),
            };
        }
        let i = self.integrator_input(i);
        let period = self.period(i);
        let mean_count = frame_time.value() / period.value();

        // Electrons per ramp: shot noise gives each cycle a relative period
        // jitter of 1/√n_e; over N cycles the count variance is N/n_e.
        let q_cycle = (self.c_int_effective() * self.delta_v_effective()).value();
        let n_e = (q_cycle / ELEMENTARY_CHARGE).max(1.0);
        let sigma = (mean_count / n_e + 1.0 / 12.0).sqrt();

        let mut g = GaussianSampler::new();
        let noisy = mean_count + sigma * g.sample(rng);

        let target = noisy.max(0.0).floor() as u64;
        let overflowed = target > counter.max_count();
        ConversionResult {
            count: target.min(counter.max_count()),
            overflowed,
        }
    }

    /// Estimates the sensor current from a frame count using the *nominal*
    /// design values plus this pixel's calibration factor — exactly the
    /// computation the off-chip software performs on the serial data.
    pub fn estimate_current(&self, count: u64, frame_time: Seconds) -> Ampere {
        if count == 0 {
            return Ampere::ZERO;
        }
        let period = frame_time.value() / count as f64;
        let dead = (self.config.comparator_delay + self.config.reset_width).value();
        let ramp = (period - dead).max(1e-12);
        let i_raw = (self.config.c_int * self.config.delta_v).value() / ramp;
        Ampere::new(i_raw * self.gain_correction)
    }

    /// Simulates the integration-node voltage waveform (the Fig. 3
    /// sawtooth) for `duration` at sample interval `dt`, using the actual
    /// comparator/delay-stage blocks from `bsa-circuit`.
    ///
    /// Errors if the pixel's effective component values (after process
    /// variation) or `dt` fall outside the circuit blocks' validity
    /// ranges.
    pub fn transient(
        &self,
        i: Ampere,
        duration: Seconds,
        dt: Seconds,
    ) -> Result<Waveform, ChipError> {
        let mut cap = bsa_circuit::passive::Capacitor::new(self.c_int_effective())?;
        cap.set_voltage(self.config.v_start);
        let threshold = self.config.v_start + self.config.delta_v;
        let mut comp = Comparator::new(
            threshold,
            self.variation.comparator_offset,
            Volt::from_milli(1.0),
            self.config.comparator_delay * (1.0 + self.variation.delay_rel_err),
        )?;
        let delay = DelayStage::new(
            Seconds::ZERO,
            self.config.reset_width * (1.0 + self.variation.delay_rel_err),
        )?;
        // The reset pulse lasts at least one simulation step so coarse
        // sampling cannot step over it.
        let reset_steps = (delay.pulse_width().value() / dt.value()).ceil().max(1.0) as usize;

        let steps = (duration.value() / dt.value()).round() as usize;
        let mut w = Waveform::new(dt)?;
        let mut resetting_left = 0usize;
        for k in 0..steps {
            let now = dt * k as f64;
            if resetting_left > 0 {
                // M_res shorts the integration node back to the start level.
                cap.set_voltage(self.config.v_start);
                resetting_left -= 1;
            } else {
                cap.integrate(i, dt);
            }
            let out = comp.evaluate(cap.voltage(), now);
            if out.rising_edge {
                resetting_left = reset_steps;
            }
            w.push(cap.voltage().value());
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pixel() -> DnaPixel {
        DnaPixel::nominal(DnaPixelConfig::default())
    }

    #[test]
    fn frequency_proportional_to_current_at_low_end() {
        let p = pixel();
        let f1 = p.frequency(Ampere::from_pico(1.0));
        let f10 = p.frequency(Ampere::from_pico(10.0));
        assert!((f10.value() / f1.value() - 10.0).abs() < 0.01);
        // 1 pA into 100 fF × 1 V ≈ 10 Hz.
        assert!((f1.value() - 10.0).abs() < 0.01, "f(1 pA) = {f1}");
    }

    #[test]
    fn dead_time_compresses_high_currents() {
        let p = pixel();
        let f = p.frequency(Ampere::from_nano(100.0));
        let ideal = Hertz::new(100e-9 / (100e-15 * 1.0));
        let compression = f.value() / ideal.value();
        assert!(
            compression < 0.95 && compression > 0.85,
            "compression = {compression}"
        );
        // At mid-range the compression is negligible.
        let f_mid = p.frequency(Ampere::from_nano(1.0));
        let comp_mid = f_mid.value() / (1e-9 / 100e-15);
        assert!(comp_mid > 0.999, "mid compression = {comp_mid}");
    }

    #[test]
    fn five_decades_of_dynamic_range() {
        let mut p = pixel();
        let frame = Seconds::new(10.0);
        let lo = p.convert_ideal(Ampere::from_pico(1.0), frame);
        let hi = p.convert_ideal(Ampere::from_nano(100.0), frame);
        assert!((99..=100).contains(&lo), "10 Hz × 10 s ≈ {lo}");
        assert!(hi > 8_000_000, "high count = {hi}");
        assert!(hi / lo > 50_000);
    }

    #[test]
    #[should_panic(expected = "positive current")]
    fn zero_current_is_rejected() {
        pixel().period(Ampere::ZERO);
    }

    #[test]
    fn counter_overflow_reported() {
        let cfg = DnaPixelConfig {
            counter_bits: 8,
            ..DnaPixelConfig::default()
        };
        let mut p = DnaPixel::nominal(cfg);
        let mut rng = SmallRng::seed_from_u64(1);
        let r = p.convert(Ampere::from_nano(100.0), Seconds::new(1.0), &mut rng);
        assert!(r.overflowed);
        assert_eq!(r.count, 255);
    }

    #[test]
    fn noisy_conversion_is_unbiased() {
        let mut p = pixel();
        let mut rng = SmallRng::seed_from_u64(2);
        let i = Ampere::from_nano(1.0);
        let frame = Seconds::new(10.0);
        let ideal = p.convert_ideal(i, frame) as f64;
        let n = 200;
        let mean: f64 = (0..n)
            .map(|_| p.convert(i, frame, &mut rng).count as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - ideal).abs() / ideal < 0.01,
            "mean = {mean}, ideal = {ideal}"
        );
    }

    #[test]
    fn estimate_inverts_conversion_for_nominal_pixel() {
        let mut p = pixel();
        let frame = Seconds::new(10.0);
        for i in [
            Ampere::from_pico(10.0),
            Ampere::from_nano(1.0),
            Ampere::from_nano(100.0),
        ] {
            let count = p.convert_ideal(i, frame);
            let est = p.estimate_current(count, frame);
            let rel = (est.value() - i.value()).abs() / i.value();
            assert!(rel < 0.02, "i = {i}: est = {est} ({rel})");
        }
    }

    #[test]
    fn mismatch_biases_estimate_until_calibrated() {
        let var = PixelVariation {
            c_int_rel_err: 0.05,
            comparator_offset: Volt::from_milli(30.0),
            delay_rel_err: 0.0,
        };
        let mut p = DnaPixel::with_variation(DnaPixelConfig::default(), var);
        let i = Ampere::from_nano(1.0);
        let frame = Seconds::new(10.0);
        let count = p.convert_ideal(i, frame);
        let est = p.estimate_current(count, frame);
        let rel_err = (est.value() - i.value()).abs() / i.value();
        // 5 % cap + 3 % ΔV error ≈ 8 % estimate error uncalibrated.
        assert!(rel_err > 0.05, "rel_err = {rel_err}");

        // Calibrate with a known reference current.
        let i_ref = Ampere::from_nano(10.0);
        let ref_count = p.convert_ideal(i_ref, frame);
        let k = i_ref.value() / p.estimate_current(ref_count, frame).value();
        p.set_gain_correction(k);
        let est2 = p.estimate_current(count, frame);
        let rel2 = (est2.value() - i.value()).abs() / i.value();
        assert!(rel2 < 0.01, "calibrated rel err = {rel2}");
    }

    #[test]
    fn estimate_of_zero_count_is_zero() {
        let p = pixel();
        assert_eq!(p.estimate_current(0, Seconds::new(1.0)), Ampere::ZERO);
    }

    #[test]
    fn transient_produces_expected_sawtooth_count() {
        let p = pixel();
        let i = Ampere::from_nano(10.0);
        // f ≈ 10 kHz − dead-time compression ≈ 9.95 kHz; 2 ms → ~19 ramps.
        let w = p
            .transient(i, Seconds::from_milli(2.0), Seconds::from_nano(20.0))
            .expect("nominal pixel transient");
        let mid = p.config().v_start.value() + 0.5 * p.config().delta_v.value();
        let ramps = w.rising_crossings(mid);
        let expected = (p.frequency(i).value() * 2e-3).floor() as usize;
        assert!(
            (ramps as i64 - expected as i64).abs() <= 1,
            "ramps = {ramps}, expected ≈ {expected}"
        );
    }

    #[test]
    fn dead_pixel_counts_zero() {
        let mut p = pixel();
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::DeadPixel);
        p.set_faults(f);
        assert_eq!(
            p.convert_ideal(Ampere::from_nano(100.0), Seconds::new(10.0)),
            0
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let r = p.convert(Ampere::from_nano(100.0), Seconds::new(10.0), &mut rng);
        assert_eq!(r.count, 0);
        assert!(!r.overflowed);
    }

    #[test]
    fn stuck_counter_returns_frozen_value() {
        let mut p = pixel();
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::StuckCount { count: 424_242 });
        p.set_faults(f);
        for i in [Ampere::from_pico(1.0), Ampere::from_nano(100.0)] {
            assert_eq!(p.convert_ideal(i, Seconds::new(10.0)), 424_242);
        }
    }

    #[test]
    fn leakage_biases_small_currents() {
        let mut clean = pixel();
        let mut leaky = pixel();
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::LeakyElectrode {
            leakage: Ampere::from_pico(10.0),
        });
        leaky.set_faults(f);
        let frame = Seconds::new(10.0);
        let i = Ampere::from_pico(5.0);
        let n_clean = clean.convert_ideal(i, frame);
        let n_leaky = leaky.convert_ideal(i, frame);
        // 5 pA + 10 pA leakage reads ≈ 3× too high.
        assert!(n_leaky > 2 * n_clean, "clean {n_clean}, leaky {n_leaky}");
    }

    #[test]
    fn comparator_drift_shifts_gain_until_recalibrated() {
        let mut p = pixel();
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::ComparatorDrift {
            offset: Volt::from_milli(100.0),
        });
        p.set_faults(f);
        let frame = Seconds::new(10.0);
        let i = Ampere::from_nano(1.0);
        let est = p.estimate_current(p.clone().convert_ideal(i, frame), frame);
        let rel = (est.value() - i.value()).abs() / i.value();
        assert!(rel > 0.05, "drift must bias the estimate, rel = {rel}");
        // Recalibration against a reference current absorbs the drift.
        let i_ref = Ampere::from_nano(10.0);
        let k = i_ref.value()
            / p.estimate_current(p.clone().convert_ideal(i_ref, frame), frame)
                .value();
        p.set_gain_correction(k);
        let est2 = p.estimate_current(p.clone().convert_ideal(i, frame), frame);
        let rel2 = (est2.value() - i.value()).abs() / i.value();
        assert!(rel2 < 0.01, "recalibrated rel = {rel2}");
    }

    #[test]
    fn saturated_dac_clamps_correction() {
        let mut p = pixel();
        let mut f = bsa_faults::PixelFaults::default();
        f.merge(bsa_faults::FaultKind::DacSaturation { limit: 1.05 });
        p.set_faults(f);
        p.set_gain_correction(1.5);
        assert!((p.gain_correction() - 1.05).abs() < 1e-12);
        p.set_gain_correction(0.5);
        assert!((p.gain_correction() - 1.0 / 1.05).abs() < 1e-12);
    }

    #[test]
    fn transient_stays_within_ramp_window() {
        let p = pixel();
        let i = Ampere::from_nano(1.0);
        let dt = Seconds::from_micro(1.0);
        let w = p
            .transient(i, Seconds::from_milli(5.0), dt)
            .expect("nominal pixel transient");
        let v_lo = p.config().v_start.value() - 1e-6;
        // Allow up to three integration steps of overshoot past the
        // threshold (comparator delay discretized onto the sample grid).
        let step_v = (i * dt).value() / p.c_int_effective().value();
        let v_hi = p.config().v_start.value() + p.config().delta_v.value() + 3.0 * step_v;
        assert!(w.min() >= v_lo, "min = {}", w.min());
        assert!(w.max() <= v_hi, "max = {}", w.max());
    }
}
