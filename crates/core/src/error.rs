//! Error type for chip construction and operation.

use crate::dna_chip::SerialError;
use std::error::Error;
use std::fmt;

/// Error produced when constructing or operating a chip model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChipError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A pixel address was outside the array.
    AddressOutOfRange {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Array rows.
        rows: usize,
        /// Array columns.
        cols: usize,
    },
    /// A slice argument did not have one element per pixel.
    LengthMismatch {
        /// Elements the array geometry requires.
        expected: usize,
        /// Elements actually supplied.
        got: usize,
    },
    /// A serial bit stream could not be decoded.
    SerialDecode {
        /// What was wrong.
        reason: String,
    },
    /// A serial word stayed corrupt after exhausting the re-read budget.
    SerialUnrecoverable {
        /// Words still corrupt after the final attempt.
        failed_words: usize,
        /// Re-read attempts that were made.
        rereads: usize,
        /// The decode error of the first unrecoverable word.
        last: SerialError,
    },
    /// A fault-injection map was compiled for a different geometry.
    FaultGeometryMismatch {
        /// Rows × cols the map was compiled for.
        map: (usize, usize),
        /// Rows × cols of the chip.
        chip: (usize, usize),
    },
    /// An underlying circuit model rejected its parameters.
    Circuit(bsa_circuit::CircuitError),
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid chip configuration: {reason}"),
            Self::AddressOutOfRange {
                row,
                col,
                rows,
                cols,
            } => write!(f, "pixel ({row}, {col}) outside {rows}×{cols} array"),
            Self::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} elements (one per pixel), got {got}")
            }
            Self::SerialDecode { reason } => write!(f, "serial decode failed: {reason}"),
            Self::SerialUnrecoverable {
                failed_words,
                rereads,
                last,
            } => write!(
                f,
                "{failed_words} serial word(s) still corrupt after {rereads} re-read(s): {last}"
            ),
            Self::FaultGeometryMismatch { map, chip } => write!(
                f,
                "fault map compiled for {}×{} cannot be injected into a {}×{} chip",
                map.0, map.1, chip.0, chip.1
            ),
            Self::Circuit(e) => write!(f, "circuit model error: {e}"),
        }
    }
}

impl Error for ChipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::SerialUnrecoverable { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<bsa_circuit::CircuitError> for ChipError {
    fn from(e: bsa_circuit::CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<SerialError> for ChipError {
    fn from(e: SerialError) -> Self {
        Self::SerialDecode {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ChipError::AddressOutOfRange {
            row: 10,
            col: 20,
            rows: 8,
            cols: 16,
        };
        assert_eq!(e.to_string(), "pixel (10, 20) outside 8×16 array");
        let e = ChipError::SerialDecode {
            reason: "bad sync".into(),
        };
        assert!(e.to_string().contains("bad sync"));
    }

    #[test]
    fn wraps_circuit_error_with_source() {
        let ce = bsa_circuit::CircuitError::NonFinite { name: "x" };
        let e = ChipError::from(ce);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<ChipError>();
    }
}
