//! Property-based tests of the screening funnel.

use bsa_screening::compound::CompoundLibrary;
use bsa_screening::pipeline::Pipeline;
use bsa_screening::stage::{Stage, StageKind};
use proptest::prelude::*;

fn arb_stage(kind: StageKind) -> impl Strategy<Value = Stage> {
    (1.0f64..1e5, 0.01f64..1e6, 0.5f64..1.0, 0.0f64..0.1).prop_map(move |(dpd, cpd, sens, fpr)| {
        Stage {
            kind,
            datapoints_per_day: dpd,
            cost_per_datapoint: cpd,
            sensitivity: sens,
            false_positive_rate: fpr,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The funnel never grows, regardless of stage parameters.
    #[test]
    fn funnel_never_grows(
        s1 in arb_stage(StageKind::Molecular),
        s2 in arb_stage(StageKind::CellBased),
        seed in 0u64..1000,
    ) {
        let library = CompoundLibrary::generate(5000, 1e-3, seed);
        let report = Pipeline::new(vec![s1, s2]).run(&library, seed);
        let mut last = library.len();
        for stage in &report.stages {
            prop_assert_eq!(stage.input_count, last);
            prop_assert!(stage.survivors <= stage.input_count);
            prop_assert!(stage.true_actives_surviving <= stage.survivors);
            last = stage.survivors;
        }
        prop_assert_eq!(report.final_candidates.len(), last);
    }

    /// Cost and time are exactly the per-stage sums and scale with input.
    #[test]
    fn accounting_is_consistent(
        s in arb_stage(StageKind::AnimalTests),
        seed in 0u64..1000,
    ) {
        let library = CompoundLibrary::generate(2000, 1e-2, seed);
        let report = Pipeline::new(vec![s.clone()]).run(&library, seed);
        let stage = &report.stages[0];
        prop_assert!((stage.cost - 2000.0 * s.cost_per_datapoint).abs() < 1e-6);
        prop_assert!((stage.days - 2000.0 / s.datapoints_per_day).abs() < 1e-9);
        prop_assert!((report.total_cost() - stage.cost).abs() < 1e-9);
    }

    /// True hits never exceed the library's true actives, and the final
    /// candidates never contain more actives than survived each stage.
    #[test]
    fn hit_bookkeeping(seed in 0u64..500) {
        let library = CompoundLibrary::generate(20_000, 5e-4, seed);
        let report = Pipeline::classic().run(&library, seed);
        prop_assert!(report.true_hits() <= library.true_active_count());
        for stage in &report.stages {
            prop_assert!(stage.true_actives_surviving <= library.true_active_count());
        }
    }

    /// With perfect sensitivity and zero false positives, survivors are
    /// exactly the true actives after the first stage.
    #[test]
    fn ideal_stage_is_a_perfect_filter(seed in 0u64..500) {
        let library = CompoundLibrary::generate(5000, 1e-2, seed);
        let ideal = Stage {
            kind: StageKind::Molecular,
            datapoints_per_day: 1000.0,
            cost_per_datapoint: 1.0,
            sensitivity: 1.0,
            false_positive_rate: 0.0,
        };
        let report = Pipeline::new(vec![ideal]).run(&library, seed);
        let s = &report.stages[0];
        prop_assert_eq!(s.survivors, s.true_actives_surviving);
        // potency^0.5 < 1 means even sensitivity 1.0 misses weak actives;
        // survivors is therefore ≤ the library's actives.
        prop_assert!(s.survivors <= library.true_active_count());
    }
}
