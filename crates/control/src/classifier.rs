//! Folds streamed frames, assay estimates and yield summaries into
//! per-pixel and per-chip states.
//!
//! Classification is observation-driven and pure: the same frames and
//! estimates always produce the same assessment. The discriminators
//! mirror what the chip models actually do:
//!
//! * Lost readout channels read **exactly** `0.0` (the multiplexer
//!   output is grounded), so whole-window silence is the channel-loss
//!   signature.
//! * Dead neuro pixels contribute no difference current but still pass
//!   through the noisy readout chain, so they read *quiet*, not silent:
//!   their RMS sits far below the array median (measured ≈ 0.09× the
//!   median, against ≥ 0.25× for signal-bearing pixels).
//! * DNA comparator drift biases the *current estimates* until the
//!   per-pixel gain correction is re-derived; auto-calibration restores
//!   estimates to within ≈ 2% of baseline while a 400 mV drift biases
//!   them by ≈ 30%. Estimates, not raw counts, are therefore the
//!   recovery-sensitive observable.
//!
//! Masked pixels are repaired by the station's neighbor interpolation
//! before they reach the classifier, which is exactly how masking
//! restores effective yield.

use bsa_link::YieldSummary;
use std::collections::BTreeSet;

/// State of one pixel, as inferred from the current observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelState {
    /// Behaving like its neighbors / its own baseline.
    Healthy,
    /// Every sample in the window was exactly `0.0`: a lost readout
    /// channel (or a hard-grounded output).
    Silent,
    /// RMS far below the array median: dead pixel reading only chain
    /// noise.
    Quiet,
    /// Samples pinned at the gain chain's swing limit.
    Clipping,
    /// Assay estimate shifted away from this pixel's captured baseline.
    Drifted,
    /// Assay estimate strongly elevated above baseline: a hybridization
    /// signal, not a defect.
    Elevated,
}

/// Chip-level condition distilled from the pixel states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipCondition {
    /// Nothing actionable observed.
    Healthy,
    /// One or more whole readout channels are silent.
    ChannelLoss,
    /// Scattered dead (quiet/silent) pixels above the dead-pixel floor.
    DeadPixels,
    /// Assay estimates drifted from baseline on too many pixels.
    BaselineDrift,
    /// Too many pixels pinned at the swing limit.
    Clipping,
    /// A subset of spots reports strongly elevated estimates while the
    /// rest hold baseline: the assay found its targets.
    HybridizationDetected,
    /// Not enough data to classify (no frames, or no captured baseline
    /// for a DNA chip).
    Unobserved,
}

/// Thresholds for the classifier. Fractions are of the whole array
/// unless noted. Defaults were measured against the chip models (see
/// the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// A pixel whose window RMS falls below this fraction of the array
    /// median RMS counts as quiet (dead).
    pub rms_floor_fraction: f64,
    /// Sample magnitude at or beyond which a neuro sample counts as
    /// clipped, in the stream's sample units.
    pub clip_level: f64,
    /// Fraction of a pixel's samples that must clip to call the pixel
    /// clipping.
    pub clip_sample_fraction: f64,
    /// Fraction of clipping pixels that makes the chip's condition
    /// [`ChipCondition::Clipping`].
    pub clip_floor: f64,
    /// Fraction of unmasked dead pixels (outside lost channels) that
    /// makes the chip's condition [`ChipCondition::DeadPixels`].
    pub dead_floor: f64,
    /// Relative deviation of a DNA pixel's current estimate from its
    /// baseline at which the pixel counts as drifted. Drift faults bias
    /// estimates ≈ 30%; calibration noise stays ≈ 2%.
    pub pixel_deviation: f64,
    /// Ratio of a DNA pixel's estimate over its baseline at which the
    /// pixel counts as a hybridization signal instead of a defect.
    pub hybridization_ratio: f64,
    /// Fraction of drifted pixels that makes the chip's condition
    /// [`ChipCondition::BaselineDrift`].
    pub drift_floor: f64,
    /// Fraction of elevated pixels that makes the chip's condition
    /// [`ChipCondition::HybridizationDetected`].
    pub hybridization_floor: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            rms_floor_fraction: 0.25,
            clip_level: 0.045,
            clip_sample_fraction: 0.5,
            clip_floor: 0.02,
            dead_floor: 0.02,
            pixel_deviation: 0.15,
            hybridization_ratio: 8.0,
            drift_floor: 0.05,
            hybridization_floor: 0.01,
        }
    }
}

/// One observation window's verdict on a chip.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipAssessment {
    /// The distilled chip condition.
    pub condition: ChipCondition,
    /// Fraction of pixels producing usable data this window (`0..=1`).
    pub effective_yield: f64,
    /// Per-pixel states in row-major order.
    pub pixel_states: Vec<PixelState>,
    /// Row-major indices of dead (quiet/silent) pixels outside lost
    /// channels that are not already masked — the mask candidates.
    pub mask_candidates: Vec<u32>,
    /// Readout channels observed (or reported) fully silent, sorted.
    pub lost_channels: Vec<u32>,
}

/// Folds observations into [`ChipAssessment`]s. Holds the per-chip DNA
/// estimate baseline captured before faults were injected.
#[derive(Debug, Clone)]
pub struct StateClassifier {
    config: ClassifierConfig,
    dna_baseline: Option<Vec<f64>>,
}

impl StateClassifier {
    /// A classifier with the given thresholds and no captured baseline.
    #[must_use]
    pub fn new(config: ClassifierConfig) -> Self {
        Self {
            config,
            dna_baseline: None,
        }
    }

    /// The thresholds in use.
    #[must_use]
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Captures the pre-fault DNA estimate baseline later observations
    /// are compared against (per-pixel estimated currents in amperes).
    pub fn set_dna_baseline(&mut self, estimates: Vec<f64>) {
        self.dna_baseline = Some(estimates);
    }

    /// Drops the captured baseline (e.g. after reattaching a fresh chip).
    pub fn clear_dna_baseline(&mut self) {
        self.dna_baseline = None;
    }

    /// `true` once a DNA baseline has been captured.
    #[must_use]
    pub fn has_dna_baseline(&self) -> bool {
        self.dna_baseline.is_some()
    }

    /// Classifies a neuro chip from one window of streamed frames.
    ///
    /// `frames` are row-major `rows * cols` sample vectors as delivered
    /// by the station (post mask repair); `masked` is the controller's
    /// view of the pixels it has already masked.
    #[must_use]
    pub fn observe_neuro(
        &self,
        summary: &YieldSummary,
        rows: u16,
        cols: u16,
        frames: &[Vec<f64>],
        masked: &BTreeSet<u32>,
    ) -> ChipAssessment {
        let total = usize::from(rows) * usize::from(cols);
        if total == 0 || frames.is_empty() {
            return ChipAssessment {
                condition: ChipCondition::Unobserved,
                effective_yield: 0.0,
                pixel_states: Vec::new(),
                mask_candidates: Vec::new(),
                lost_channels: summary.lost_channels.clone(),
            };
        }

        let mut square_sums = vec![0.0f64; total];
        let mut zero_samples = vec![0usize; total];
        let mut clipped_samples = vec![0usize; total];
        let mut samples_seen = vec![0usize; total];
        for frame in frames {
            let mut sq = square_sums.iter_mut();
            let mut zeros = zero_samples.iter_mut();
            let mut clips = clipped_samples.iter_mut();
            let mut seen = samples_seen.iter_mut();
            for &s in frame.iter().take(total) {
                let (Some(q), Some(z), Some(c), Some(n)) =
                    (sq.next(), zeros.next(), clips.next(), seen.next())
                else {
                    break;
                };
                *n += 1;
                *q += s * s;
                if s == 0.0 {
                    *z += 1;
                }
                if s.abs() >= self.config.clip_level {
                    *c += 1;
                }
            }
        }

        let rms: Vec<f64> = square_sums
            .iter()
            .zip(samples_seen.iter())
            .map(|(&q, &n)| if n == 0 { 0.0 } else { (q / n as f64).sqrt() })
            .collect();
        let median_rms = median_of_positive(&rms);
        let quiet_floor = self.config.rms_floor_fraction * median_rms;

        let pixel_states: Vec<PixelState> = rms
            .iter()
            .zip(zero_samples.iter())
            .zip(clipped_samples.iter())
            .zip(samples_seen.iter())
            .map(|(((&rms, &zeros), &clips), &seen)| {
                if seen == 0 {
                    PixelState::Healthy
                } else if zeros == seen {
                    PixelState::Silent
                } else if (clips as f64) >= self.config.clip_sample_fraction * (seen as f64) {
                    PixelState::Clipping
                } else if rms < quiet_floor {
                    PixelState::Quiet
                } else {
                    PixelState::Healthy
                }
            })
            .collect();

        let lost_channels = detect_lost_channels(summary, cols, &pixel_states);
        let channel_pixels = channel_pixel_set(cols, summary.total_channels, &lost_channels, total);

        let dead_total = pixel_states
            .iter()
            .filter(|&&s| matches!(s, PixelState::Silent | PixelState::Quiet))
            .count();
        let mask_candidates: Vec<u32> = pixel_states
            .iter()
            .enumerate()
            .filter(|(idx, &state)| {
                matches!(state, PixelState::Silent | PixelState::Quiet)
                    && !channel_pixels.contains(&(*idx as u32))
                    && !masked.contains(&(*idx as u32))
            })
            .map(|(idx, _)| idx as u32)
            .collect();
        let clipping = pixel_states
            .iter()
            .filter(|&&s| s == PixelState::Clipping)
            .count();

        let effective_yield = (total - dead_total) as f64 / total as f64;
        let condition = if !lost_channels.is_empty() {
            ChipCondition::ChannelLoss
        } else if (mask_candidates.len() as f64) >= self.config.dead_floor * (total as f64) {
            ChipCondition::DeadPixels
        } else if (clipping as f64) >= self.config.clip_floor * (total as f64) {
            ChipCondition::Clipping
        } else {
            ChipCondition::Healthy
        };

        ChipAssessment {
            condition,
            effective_yield,
            pixel_states,
            mask_candidates,
            lost_channels,
        }
    }

    /// Classifies a DNA chip from one assay's per-pixel current
    /// estimates against the captured baseline. Without a baseline the
    /// chip is [`ChipCondition::Unobserved`].
    #[must_use]
    pub fn observe_dna(&self, summary: &YieldSummary, estimates: &[f64]) -> ChipAssessment {
        let total = estimates.len();
        let Some(baseline) = self
            .dna_baseline
            .as_ref()
            .filter(|b| b.len() == total && total > 0)
        else {
            return ChipAssessment {
                condition: ChipCondition::Unobserved,
                effective_yield: summary_yield(summary),
                pixel_states: Vec::new(),
                mask_candidates: Vec::new(),
                lost_channels: summary.lost_channels.clone(),
            };
        };

        let pixel_states: Vec<PixelState> = estimates
            .iter()
            .zip(baseline.iter())
            .map(|(&value, &reference)| {
                let reference_mag = reference.abs().max(f64::MIN_POSITIVE);
                if value.abs() >= self.config.hybridization_ratio * reference_mag {
                    PixelState::Elevated
                } else if (value - reference).abs() >= self.config.pixel_deviation * reference_mag {
                    PixelState::Drifted
                } else {
                    PixelState::Healthy
                }
            })
            .collect();

        let drifted = pixel_states
            .iter()
            .filter(|&&s| s == PixelState::Drifted)
            .count();
        let elevated = pixel_states
            .iter()
            .filter(|&&s| s == PixelState::Elevated)
            .count();

        let effective_yield = (total - drifted) as f64 / total as f64;
        let condition = if (elevated as f64) >= self.config.hybridization_floor * (total as f64)
            && (drifted as f64) < self.config.drift_floor * (total as f64)
        {
            ChipCondition::HybridizationDetected
        } else if (drifted as f64) >= self.config.drift_floor * (total as f64) {
            ChipCondition::BaselineDrift
        } else {
            ChipCondition::Healthy
        };

        ChipAssessment {
            condition,
            effective_yield,
            pixel_states,
            mask_candidates: Vec::new(),
            lost_channels: summary.lost_channels.clone(),
        }
    }
}

/// Median RMS over pixels with any signal at all (silent pixels would
/// otherwise drag the median toward zero on heavily faulted arrays).
fn median_of_positive(rms: &[f64]) -> f64 {
    let mut positive: Vec<f64> = rms.iter().copied().filter(|&r| r > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    positive.sort_by(f64::total_cmp);
    let mid = positive.len() / 2;
    positive.get(mid).copied().unwrap_or(0.0)
}

/// A channel is lost when every one of its pixels is silent, or the
/// chip's own health report says so.
fn detect_lost_channels(
    summary: &YieldSummary,
    cols: u16,
    pixel_states: &[PixelState],
) -> Vec<u32> {
    let mut lost: BTreeSet<u32> = summary.lost_channels.iter().copied().collect();
    let channels = summary.total_channels as usize;
    let cols = usize::from(cols);
    if channels > 0 && cols % channels == 0 && cols >= channels {
        let cols_per_ch = cols / channels;
        for ch in 0..channels {
            let all_silent = pixel_states
                .iter()
                .enumerate()
                .filter(|(idx, _)| (idx % cols) / cols_per_ch == ch)
                .all(|(_, &state)| state == PixelState::Silent);
            if all_silent && !pixel_states.is_empty() {
                lost.insert(ch as u32);
            }
        }
    }
    lost.into_iter().collect()
}

/// Usable-pixel fraction straight from a yield summary (healthy and
/// out-of-family pixels both produce data).
fn summary_yield(summary: &YieldSummary) -> f64 {
    if summary.total_pixels == 0 {
        return 0.0;
    }
    f64::from(summary.healthy + summary.out_of_family) / f64::from(summary.total_pixels)
}

/// Row-major indices belonging to the given lost channels.
fn channel_pixel_set(
    cols: u16,
    total_channels: u32,
    lost_channels: &[u32],
    total: usize,
) -> BTreeSet<u32> {
    let mut set = BTreeSet::new();
    let cols = usize::from(cols);
    let channels = total_channels as usize;
    if cols == 0 || channels == 0 || cols % channels != 0 {
        return set;
    }
    let cols_per_ch = cols / channels;
    for idx in 0..total {
        let ch = (idx % cols) / cols_per_ch;
        if lost_channels.contains(&(ch as u32)) {
            set.insert(idx as u32);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(total: u32, channels: u32) -> YieldSummary {
        YieldSummary {
            total_pixels: total,
            healthy: total,
            out_of_family: 0,
            dead: 0,
            lost_channels: Vec::new(),
            total_channels: channels,
            injected: 0,
            serial: Default::default(),
            degradation: bsa_link::DegradationSummary::FullPerformance,
        }
    }

    #[test]
    fn quiet_pixels_classify_dead() {
        let c = StateClassifier::new(ClassifierConfig::default());
        // 4x4, one channel; pixels 0 and 5 read only faint noise while
        // the rest carry signal.
        let mut frame = vec![1e-2; 16];
        for idx in [0usize, 5] {
            if let Some(s) = frame.get_mut(idx) {
                *s = 1e-4;
            }
        }
        let frames = vec![frame.clone(), frame];
        let a = c.observe_neuro(&summary(16, 1), 4, 4, &frames, &BTreeSet::new());
        assert_eq!(a.condition, ChipCondition::DeadPixels);
        assert_eq!(a.mask_candidates, vec![0, 5]);
        assert!((a.effective_yield - 14.0 / 16.0).abs() < 1e-12);
        assert_eq!(a.pixel_states.first(), Some(&PixelState::Quiet));
    }

    #[test]
    fn whole_silent_channel_classifies_channel_loss() {
        let c = StateClassifier::new(ClassifierConfig::default());
        // 4x4, two channels of two columns each; channel 1 silent.
        let frame: Vec<f64> = (0..16)
            .map(|idx| if (idx % 4) / 2 == 1 { 0.0 } else { 2e-3 })
            .collect();
        let frames = vec![frame];
        let a = c.observe_neuro(&summary(16, 2), 4, 4, &frames, &BTreeSet::new());
        assert_eq!(a.condition, ChipCondition::ChannelLoss);
        assert_eq!(a.lost_channels, vec![1]);
        // Channel pixels are not mask candidates.
        assert!(a.mask_candidates.is_empty());
    }

    #[test]
    fn clipped_pixels_classify_clipping() {
        let c = StateClassifier::new(ClassifierConfig::default());
        let frame: Vec<f64> = (0..16)
            .map(|idx| if idx == 3 { 0.05 } else { 1e-2 })
            .collect();
        let frames = vec![frame.clone(), frame];
        let a = c.observe_neuro(&summary(16, 1), 4, 4, &frames, &BTreeSet::new());
        assert_eq!(a.condition, ChipCondition::Clipping);
        assert_eq!(a.pixel_states.get(3), Some(&PixelState::Clipping));
    }

    #[test]
    fn masked_pixels_are_not_mask_candidates() {
        let c = StateClassifier::new(ClassifierConfig::default());
        let mut frame = vec![1e-2; 16];
        if let Some(s) = frame.get_mut(7) {
            *s = 1e-4;
        }
        let masked: BTreeSet<u32> = [7u32].into_iter().collect();
        let a = c.observe_neuro(&summary(16, 1), 4, 4, &[frame], &masked);
        assert!(a.mask_candidates.is_empty());
        // Condition clears once the only dead pixel is masked...
        assert_eq!(a.condition, ChipCondition::Healthy);
        // ...but the yield still reflects that the pixel carries no data
        // of its own this window.
        assert!((a.effective_yield - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn dna_drift_against_baseline() {
        let mut c = StateClassifier::new(ClassifierConfig::default());
        c.set_dna_baseline(vec![10e-9; 16]);
        // Half the pixels read 30% low, mirroring a 400 mV comparator
        // drift; the rest sit within calibration noise.
        let estimates: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 7e-9 } else { 10.1e-9 })
            .collect();
        let a = c.observe_dna(&summary(16, 1), &estimates);
        assert_eq!(a.condition, ChipCondition::BaselineDrift);
        assert!((a.effective_yield - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dna_elevated_subset_is_hybridization_not_drift() {
        let mut c = StateClassifier::new(ClassifierConfig::default());
        c.set_dna_baseline(vec![1e-9; 100]);
        let estimates: Vec<f64> = (0..100).map(|i| if i < 3 { 50e-9 } else { 1e-9 }).collect();
        let a = c.observe_dna(&summary(100, 1), &estimates);
        assert_eq!(a.condition, ChipCondition::HybridizationDetected);
        assert!((a.effective_yield - 1.0).abs() < 1e-12);
        assert_eq!(a.pixel_states.first(), Some(&PixelState::Elevated));
    }

    #[test]
    fn dna_without_baseline_is_unobserved() {
        let c = StateClassifier::new(ClassifierConfig::default());
        let a = c.observe_dna(&summary(16, 1), &[1e-9; 16]);
        assert_eq!(a.condition, ChipCondition::Unobserved);
    }
}
