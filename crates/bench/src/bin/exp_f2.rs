// Experiment binaries abort on broken I/O or impossible configs by design.
#![allow(clippy::unwrap_used)]
//! Experiment E-F2: DNA hybridization match/mismatch discrimination
//! (paper Fig. 2).
//!
//! Runs the full assay protocol — immobilization, hybridization, washing,
//! redox-cycling readout, in-pixel conversion — on a 16×8 chip spotted
//! with probes at 0–4 mismatches from the sample target, and reports the
//! per-class currents and calls.

use bsa_bench::{banner, eng, sig, Table};
use bsa_core::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use bsa_dsp::calling::{CallAccuracy, MatchCaller};
use bsa_dsp::stats::median;
use bsa_electrochem::sequence::DnaSequence;
use bsa_units::Molar;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E-F2",
        "Fig. 2 (hybridization: match vs mismatch sites)",
        "hybridization occurs for matching strands; washing leaves ssDNA at mismatch sites",
    );

    // Stringent wash: single-base mismatch discrimination needs the wash
    // pushed right to the perfect-match stability edge.
    let mut config = DnaChipConfig::default();
    config.assay.wash_stringency = 100.0;
    let mut chip = DnaChip::new(config).expect("config is valid");
    let mut rng = SmallRng::seed_from_u64(42);

    // One reference 20-mer; spot probes grouped by mismatch count:
    // columns 0–3: perfect probe, 4–7: 1 mm, 8–11: 2 mm, 12–13: 3 mm,
    // 14: 4 mm, 15: unrelated random probe.
    let reference = DnaSequence::random(20, &mut rng);
    let target = reference.reverse_complement();
    let geometry = chip.geometry();
    let mut mismatch_class = vec![0usize; geometry.len()];
    for addr in geometry.iter() {
        let class = match addr.col {
            0..=3 => 0,
            4..=7 => 1,
            8..=11 => 2,
            12..=13 => 3,
            14 => 4,
            _ => usize::MAX, // random control
        };
        let probe = if class == usize::MAX {
            DnaSequence::random(20, &mut rng)
        } else {
            // Probe that sees `class` mismatches against the true target.
            reference.with_mismatches(class)
        };
        mismatch_class[geometry.index_of(addr).unwrap()] = class;
        chip.spot(addr, probe).unwrap();
    }

    chip.auto_calibrate();
    let sample = SampleMix::new().with_target(target, Molar::from_nano(100.0));
    let readout = chip.run_assay(&sample);

    let mut t = Table::new(
        "Per-class coverages and currents after the full protocol",
        &[
            "probe class",
            "sites",
            "median coverage θ",
            "median current",
            "vs perfect match",
        ],
    );
    let classes: [(usize, &str); 6] = [
        (0, "perfect match"),
        (1, "1 mismatch"),
        (2, "2 mismatches"),
        (3, "3 mismatches"),
        (4, "4 mismatches"),
        (usize::MAX, "random probe"),
    ];
    let class_median = |class: usize, values: &dyn Fn(usize) -> f64| -> f64 {
        let v: Vec<f64> = (0..geometry.len())
            .filter(|i| mismatch_class[*i] == class)
            .map(values)
            .collect();
        median(&v).unwrap_or(0.0)
    };
    let match_current = class_median(0, &|i| readout.estimated_currents[i].value());
    for (class, name) in classes {
        let n = mismatch_class.iter().filter(|c| **c == class).count();
        let cov = class_median(class, &|i| readout.coverages[i]);
        let cur = class_median(class, &|i| readout.estimated_currents[i].value());
        t.add_row(vec![
            name.to_string(),
            n.to_string(),
            sig(cov, 3),
            eng(cur, "A"),
            format!("{:.1e}", cur / match_current),
        ]);
    }
    t.print();
    println!();

    // Match calling.
    let currents: Vec<f64> = readout
        .estimated_currents
        .iter()
        .map(|a| a.value())
        .collect();
    let result = MatchCaller::default().call(&currents);
    let truth: Vec<bool> = mismatch_class.iter().map(|c| *c == 0).collect();
    let acc = CallAccuracy::of(&result.calls, &truth);
    println!(
        "Match calling: {} matches called, accuracy {:.1} % (TP {}, FP {}, TN {}, FN {})",
        result.match_count(),
        acc.accuracy() * 100.0,
        acc.true_positives,
        acc.false_positives,
        acc.true_negatives,
        acc.false_negatives,
    );
    let ratio = MatchCaller::discrimination_ratio(&currents, &truth).unwrap_or(f64::NAN);
    println!(
        "Discrimination ratio (median match / median non-match): {:.1e}",
        ratio
    );
    println!();

    // Real-time association kinetics (the electrochemical chip can watch
    // hybridization happen — no optical scanner needed).
    let mut kin_chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    for addr in kin_chip.geometry().iter() {
        kin_chip.spot(addr, reference.clone()).unwrap();
    }
    kin_chip.auto_calibrate();
    let kin_sample =
        SampleMix::new().with_target(reference.reverse_complement(), Molar::from_nano(10.0));
    let times: Vec<bsa_units::Seconds> = [0.0, 60.0, 300.0, 900.0, 1800.0, 3600.0]
        .iter()
        .map(|s| bsa_units::Seconds::new(*s))
        .collect();
    let kinetics = kin_chip.monitor_hybridization(&kin_sample, &times);
    let mut t = Table::new(
        "Real-time hybridization kinetics at 10 nM (site 0)",
        &["time into hybridization", "coverage θ", "sensor current"],
    );
    for (k, time) in times.iter().enumerate() {
        t.add_row(vec![
            eng(time.value(), "s"),
            sig(kinetics.coverages[k][0], 3),
            eng(kinetics.currents[k][0].value(), "A"),
        ]);
    }
    t.print();
    println!();

    // Concentration series (Fig. 2's \"amount of specific DNA sequences\").
    let mut t = Table::new(
        "Dose response: perfect-match current vs target concentration",
        &[
            "target conc.",
            "median match coverage",
            "median match current",
        ],
    );
    for c_nm in [0.1, 1.0, 10.0, 100.0, 1000.0] {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        for addr in chip.geometry().iter() {
            chip.spot(addr, reference.clone()).unwrap();
        }
        chip.auto_calibrate();
        let sample =
            SampleMix::new().with_target(reference.reverse_complement(), Molar::from_nano(c_nm));
        let r = chip.run_assay(&sample);
        let cov: Vec<f64> = r.coverages.clone();
        let cur: Vec<f64> = r.estimated_currents.iter().map(|a| a.value()).collect();
        t.add_row(vec![
            eng(c_nm * 1e-9, "M"),
            sig(median(&cov).unwrap_or(0.0), 3),
            eng(median(&cur).unwrap_or(0.0), "A"),
        ]);
    }
    t.print();
}
