//! Hodgkin–Huxley membrane model.
//!
//! The classic squid-axon formulation in its standard parameterization
//! (voltages in mV relative to rest, currents in µA/cm², time in ms). The
//! model provides both the membrane voltage (whose ~100 mV spikes are the
//! "temporal peaks of the intracellular voltage" of paper Section 3) and
//! the individual ionic and capacitive membrane current densities that
//! drive the cell–chip junction.

use bsa_units::Seconds;
use serde::{Deserialize, Serialize};

/// Hodgkin–Huxley parameters (standard 1952 values, 6.3 °C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HhParams {
    /// Membrane capacitance in µF/cm².
    pub c_m: f64,
    /// Sodium conductance maximum in mS/cm².
    pub g_na: f64,
    /// Potassium conductance maximum in mS/cm².
    pub g_k: f64,
    /// Leak conductance in mS/cm².
    pub g_l: f64,
    /// Sodium reversal potential in mV.
    pub e_na: f64,
    /// Potassium reversal potential in mV.
    pub e_k: f64,
    /// Leak reversal potential in mV.
    pub e_l: f64,
}

impl Default for HhParams {
    fn default() -> Self {
        Self {
            c_m: 1.0,
            g_na: 120.0,
            g_k: 36.0,
            g_l: 0.3,
            e_na: 50.0,
            e_k: -77.0,
            e_l: -54.387,
        }
    }
}

/// Hodgkin–Huxley state, integrated with fourth-order Runge–Kutta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HodgkinHuxley {
    params: HhParams,
    /// Membrane potential in mV.
    v: f64,
    m: f64,
    h: f64,
    n: f64,
    /// Previous step's membrane potential, for spike-onset detection.
    v_prev: f64,
    above_threshold: bool,
}

/// Per-step outputs of the HH integration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HhStep {
    /// Membrane potential in mV.
    pub v_mv: f64,
    /// Total ionic current density (Na + K + leak) in µA/cm², outward
    /// positive.
    pub ionic_ua_per_cm2: f64,
    /// Capacitive current density C_m·dV/dt in µA/cm².
    pub capacitive_ua_per_cm2: f64,
    /// `true` on the step where the upstroke crosses 0 mV.
    pub spike_onset: bool,
}

impl Default for HodgkinHuxley {
    fn default() -> Self {
        Self::new()
    }
}

impl HodgkinHuxley {
    /// Creates a model at its resting state with default parameters.
    pub fn new() -> Self {
        Self::with_params(HhParams::default())
    }

    /// Creates a model with custom parameters, initialized at rest.
    pub fn with_params(params: HhParams) -> Self {
        let v = -65.0;
        Self {
            m: Self::m_inf(v),
            h: Self::h_inf(v),
            n: Self::n_inf(v),
            v,
            v_prev: v,
            above_threshold: false,
            params,
        }
    }

    /// Present membrane potential in mV.
    pub fn voltage_mv(&self) -> f64 {
        self.v
    }

    /// The parameter set.
    pub fn params(&self) -> &HhParams {
        &self.params
    }

    fn alpha_m(v: f64) -> f64 {
        let x = v + 40.0;
        if x.abs() < 1e-7 {
            1.0
        } else {
            0.1 * x / (1.0 - (-x / 10.0).exp())
        }
    }

    fn beta_m(v: f64) -> f64 {
        4.0 * (-(v + 65.0) / 18.0).exp()
    }

    fn alpha_h(v: f64) -> f64 {
        0.07 * (-(v + 65.0) / 20.0).exp()
    }

    fn beta_h(v: f64) -> f64 {
        1.0 / (1.0 + (-(v + 35.0) / 10.0).exp())
    }

    fn alpha_n(v: f64) -> f64 {
        let x = v + 55.0;
        if x.abs() < 1e-7 {
            0.1
        } else {
            0.01 * x / (1.0 - (-x / 10.0).exp())
        }
    }

    fn beta_n(v: f64) -> f64 {
        0.125 * (-(v + 65.0) / 80.0).exp()
    }

    fn m_inf(v: f64) -> f64 {
        let a = Self::alpha_m(v);
        a / (a + Self::beta_m(v))
    }

    fn h_inf(v: f64) -> f64 {
        let a = Self::alpha_h(v);
        a / (a + Self::beta_h(v))
    }

    fn n_inf(v: f64) -> f64 {
        let a = Self::alpha_n(v);
        a / (a + Self::beta_n(v))
    }

    /// Ionic current density at state `(v, m, h, n)`, outward positive.
    fn ionic(&self, v: f64, m: f64, h: f64, n: f64) -> f64 {
        let p = &self.params;
        p.g_na * m.powi(3) * h * (v - p.e_na)
            + p.g_k * n.powi(4) * (v - p.e_k)
            + p.g_l * (v - p.e_l)
    }

    fn derivatives(&self, v: f64, m: f64, h: f64, n: f64, i_stim: f64) -> (f64, f64, f64, f64) {
        let dv = (i_stim - self.ionic(v, m, h, n)) / self.params.c_m;
        let dm = Self::alpha_m(v) * (1.0 - m) - Self::beta_m(v) * m;
        let dh = Self::alpha_h(v) * (1.0 - h) - Self::beta_h(v) * h;
        let dn = Self::alpha_n(v) * (1.0 - n) - Self::beta_n(v) * n;
        (dv, dm, dh, dn)
    }

    /// Advances the model by `dt` under stimulus current density
    /// `i_stim_ua_per_cm2` (inward positive), using one RK4 step.
    pub fn step(&mut self, i_stim_ua_per_cm2: f64, dt: Seconds) -> HhStep {
        let dt_ms = dt.value() * 1e3;
        let (v0, m0, h0, n0) = (self.v, self.m, self.h, self.n);

        let k1 = self.derivatives(v0, m0, h0, n0, i_stim_ua_per_cm2);
        let k2 = self.derivatives(
            v0 + 0.5 * dt_ms * k1.0,
            m0 + 0.5 * dt_ms * k1.1,
            h0 + 0.5 * dt_ms * k1.2,
            n0 + 0.5 * dt_ms * k1.3,
            i_stim_ua_per_cm2,
        );
        let k3 = self.derivatives(
            v0 + 0.5 * dt_ms * k2.0,
            m0 + 0.5 * dt_ms * k2.1,
            h0 + 0.5 * dt_ms * k2.2,
            n0 + 0.5 * dt_ms * k2.3,
            i_stim_ua_per_cm2,
        );
        let k4 = self.derivatives(
            v0 + dt_ms * k3.0,
            m0 + dt_ms * k3.1,
            h0 + dt_ms * k3.2,
            n0 + dt_ms * k3.3,
            i_stim_ua_per_cm2,
        );

        self.v_prev = self.v;
        self.v = v0 + dt_ms / 6.0 * (k1.0 + 2.0 * k2.0 + 2.0 * k3.0 + k4.0);
        self.m = (m0 + dt_ms / 6.0 * (k1.1 + 2.0 * k2.1 + 2.0 * k3.1 + k4.1)).clamp(0.0, 1.0);
        self.h = (h0 + dt_ms / 6.0 * (k1.2 + 2.0 * k2.2 + 2.0 * k3.2 + k4.2)).clamp(0.0, 1.0);
        self.n = (n0 + dt_ms / 6.0 * (k1.3 + 2.0 * k2.3 + 2.0 * k3.3 + k4.3)).clamp(0.0, 1.0);

        let spike_onset = !self.above_threshold && self.v > 0.0;
        if self.v > 0.0 {
            self.above_threshold = true;
        } else if self.v < -30.0 {
            self.above_threshold = false;
        }

        let ionic = self.ionic(self.v, self.m, self.h, self.n);
        let capacitive = self.params.c_m * (self.v - self.v_prev) / dt_ms;
        HhStep {
            v_mv: self.v,
            ionic_ua_per_cm2: ionic,
            capacitive_ua_per_cm2: capacitive,
            spike_onset,
        }
    }

    /// Runs the model for `duration` with a constant stimulus, returning
    /// the membrane-voltage trace (mV) sampled at `dt`.
    pub fn run(&mut self, i_stim_ua_per_cm2: f64, dt: Seconds, duration: Seconds) -> Vec<f64> {
        let steps = (duration.value() / dt.value()).round() as usize;
        (0..steps)
            .map(|_| self.step(i_stim_ua_per_cm2, dt).v_mv)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(10e-6);

    #[test]
    fn rests_near_minus_65() {
        let mut n = HodgkinHuxley::new();
        let trace = n.run(0.0, DT, Seconds::from_milli(50.0));
        let last = *trace.last().unwrap();
        assert!((last + 65.0).abs() < 1.5, "rest = {last} mV");
    }

    #[test]
    fn suprathreshold_pulse_fires_full_spike() {
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(20.0));
        let mut peak = f64::MIN;
        let mut fired = false;
        for k in 0..5000 {
            let stim = if k < 100 { 20.0 } else { 0.0 };
            let s = n.step(stim, DT);
            peak = peak.max(s.v_mv);
            fired |= s.spike_onset;
        }
        assert!(fired);
        assert!(peak > 20.0, "spike peak = {peak} mV");
        // Spike height ~100 mV from rest.
        assert!(peak - (-65.0) > 80.0);
    }

    #[test]
    fn subthreshold_pulse_does_not_fire() {
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(20.0));
        let mut fired = false;
        for k in 0..5000 {
            let stim = if k < 100 { 1.0 } else { 0.0 };
            fired |= n.step(stim, DT).spike_onset;
        }
        assert!(!fired);
    }

    #[test]
    fn sustained_current_fires_repetitively() {
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(20.0));
        let mut spikes = 0;
        for _ in 0..100_000 {
            if n.step(10.0, DT).spike_onset {
                spikes += 1;
            }
        }
        // 1 s of 10 µA/cm²: tonic firing at tens of Hz.
        assert!((20..120).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn refractoriness_blocks_immediate_second_spike() {
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(20.0));
        // First pulse fires.
        let mut fired1 = false;
        for k in 0..200 {
            let stim = if k < 100 { 20.0 } else { 0.0 };
            fired1 |= n.step(stim, DT).spike_onset;
        }
        // Second identical pulse 2 ms later lands in the refractory period.
        let mut fired2 = false;
        for k in 0..200 {
            let stim = if k < 100 { 20.0 } else { 0.0 };
            fired2 |= n.step(stim, DT).spike_onset;
        }
        assert!(fired1);
        assert!(!fired2, "second pulse must be blocked by refractoriness");
    }

    #[test]
    fn spike_width_is_milliseconds() {
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(20.0));
        let mut above = 0usize;
        for k in 0..5000 {
            let stim = if k < 100 { 20.0 } else { 0.0 };
            if n.step(stim, DT).v_mv > -20.0 {
                above += 1;
            }
        }
        let width_ms = above as f64 * DT.value() * 1e3;
        assert!((0.3..3.0).contains(&width_ms), "width = {width_ms} ms");
    }

    #[test]
    fn membrane_currents_balance_capacitive_plus_ionic() {
        // With zero stimulus, C·dV/dt = −I_ionic: the two outputs must sum
        // to ~0 at every step.
        let mut n = HodgkinHuxley::new();
        n.run(0.0, DT, Seconds::from_milli(5.0));
        for _ in 0..1000 {
            let s = n.step(0.0, DT);
            let sum = s.capacitive_ua_per_cm2 + s.ionic_ua_per_cm2;
            assert!(sum.abs() < 1.0, "current balance violated: {sum}");
        }
    }

    #[test]
    fn gating_variables_stay_in_unit_interval() {
        let mut n = HodgkinHuxley::new();
        for k in 0..20_000 {
            let stim = if k % 3000 < 100 { 25.0 } else { 0.0 };
            n.step(stim, DT);
            assert!((0.0..=1.0).contains(&n.m));
            assert!((0.0..=1.0).contains(&n.h));
            assert!((0.0..=1.0).contains(&n.n));
            assert!(n.v.is_finite());
        }
    }

    #[test]
    fn alpha_functions_are_finite_at_singularities() {
        assert!(HodgkinHuxley::alpha_m(-40.0).is_finite());
        assert!(HodgkinHuxley::alpha_n(-55.0).is_finite());
        assert!((HodgkinHuxley::alpha_m(-40.0) - 1.0).abs() < 0.01);
    }
}
