//! Wall-clock budget for the full-workspace analysis (ISSUE 8 satellite).
//!
//! The linter runs on every CI push, so its own latency is a committed
//! artifact like the allowlist budget: this test re-runs the whole
//! pipeline against the real workspace and fails if it blows past the
//! ceiling. The ceiling is deliberately generous — a debug-profile run
//! measures ~150-200 ms on the reference container (the interprocedural
//! summary and taint passes roughly doubled the pipeline), so tripping
//! 15 s means an accidental quadratic blowup (or an analysis loop that
//! stopped terminating), not a noisy neighbour.

use bsa_lint::{check_workspace, workspace_root, Allowlist};

/// Committed ceiling for one full `check` pipeline, in milliseconds.
const WALL_CLOCK_CEILING_MS: u128 = 15_000;

#[test]
fn full_workspace_check_stays_under_wall_clock_ceiling() {
    let root = workspace_root();
    let outcome = check_workspace(&root, &Allowlist::default()).expect("workspace sources load");

    let t = &outcome.timings;
    // The heavyweight passes measurably ran (µs resolution; the light
    // passes can legitimately round to 0).
    assert!(t.lexical_us > 0, "lexical pass unmeasured: {t:?}");
    assert!(t.parse_us > 0, "parse pass unmeasured: {t:?}");
    assert!(t.summary_us > 0, "summary pass unmeasured: {t:?}");
    assert!(t.flow_us > 0, "flow pass unmeasured: {t:?}");
    assert!(t.taint_us > 0, "taint pass unmeasured: {t:?}");
    assert!(t.total_us > 0, "total unmeasured: {t:?}");

    // Per-pass timings nest inside the end-to-end total.
    let parts = t.lexical_us
        + t.parse_us
        + t.summary_us
        + t.flow_us
        + t.taint_us
        + t.reach_us
        + t.proto_us
        + t.conc_us
        + t.lock_order_us
        + t.abi_us;
    assert!(parts <= t.total_us, "pass timings exceed the total: {t:?}");

    assert!(
        t.total_us / 1000 < WALL_CLOCK_CEILING_MS,
        "full-workspace check took {} ms, ceiling is {WALL_CLOCK_CEILING_MS} ms — \
         profile the pass timings: {t:?}",
        t.total_us / 1000,
    );
}
