//! Quickstart: detect a target DNA sequence with the 16×8 microarray chip.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cmos_biosensor_arrays::chips::array::PixelAddress;
use cmos_biosensor_arrays::chips::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use cmos_biosensor_arrays::dsp::calling::MatchCaller;
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::units::Molar;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Instantiate a die (mismatch and noise are seeded per die).
    let mut chip = DnaChip::new(DnaChipConfig::default())?;
    println!(
        "DNA microarray chip: {}×{} sensor sites.",
        chip.geometry().rows(),
        chip.geometry().cols()
    );

    // 2. Spot a probe for the sequence we care about on site (0, 0); the
    //    rest of the array carries unrelated probes.
    let probe: DnaSequence = "ACGTTGCAGGTCCATAGCTA".parse()?;
    chip.spot(PixelAddress::new(0, 0), probe.clone())?;
    let mut rng = rand::thread_rng();
    for addr in chip.geometry().iter().skip(1) {
        chip.spot(addr, DnaSequence::random(20, &mut rng))?;
    }

    // 3. Run the periphery auto-calibration (removes per-pixel converter
    //    gain spread).
    let cal = chip.auto_calibrate();
    println!(
        "Auto-calibration: conversion spread {:.2} % → {:.2} %.",
        cal.spread_before * 100.0,
        cal.spread_after * 100.0
    );

    // 4. Apply a sample containing the target at 100 nM, hybridize, wash,
    //    and read out the redox-cycling currents through the in-pixel
    //    converters.
    let sample = SampleMix::new().with_target(probe.reverse_complement(), Molar::from_nano(100.0));
    let readout = chip.run_assay(&sample);

    // 5. Call matches from the recovered currents.
    let currents: Vec<f64> = readout
        .estimated_currents
        .iter()
        .map(|a| a.value())
        .collect();
    let calls = MatchCaller::default().call(&currents);
    println!(
        "Site (0, 0) current: {} — array background: {}.",
        readout.estimated_currents[0],
        cmos_biosensor_arrays::units::format_eng(calls.background_current, "A"),
    );
    println!(
        "Match calls: {:?} (expected exactly site 0).",
        calls.match_indices()
    );
    Ok(())
}
