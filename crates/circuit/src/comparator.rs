//! Clocked/continuous comparator with offset, hysteresis and propagation
//! delay, plus the monostable delay stage that shapes the reset pulse of
//! the in-pixel sawtooth converter (paper Fig. 3: "comparator", "delay
//! stage", τ_delay, τ₁, τ₂).

use crate::error::{require_in_range, CircuitError};
use bsa_units::{Seconds, Volt};
use serde::{Deserialize, Serialize};

/// Continuous-time comparator.
///
/// The output goes high once the positive input exceeds the threshold plus
/// half the hysteresis, and low again below threshold minus half the
/// hysteresis. Transitions propagate to the output after a fixed delay,
/// which in the sawtooth converter adds a current-independent term to the
/// conversion period and compresses the transfer curve at high currents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparator {
    threshold: Volt,
    offset: Volt,
    hysteresis: Volt,
    delay: Seconds,
    state: bool,
    /// Pending output transition: (time it becomes visible, new value).
    pending: Option<(Seconds, bool)>,
}

impl Comparator {
    /// Creates a comparator switching at `threshold`.
    ///
    /// * `offset` — input-referred offset added to the effective threshold;
    /// * `hysteresis` — total hysteresis window (may be zero);
    /// * `delay` — propagation delay from input crossing to output edge.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `hysteresis` or `delay` is negative.
    pub fn new(
        threshold: Volt,
        offset: Volt,
        hysteresis: Volt,
        delay: Seconds,
    ) -> Result<Self, CircuitError> {
        require_in_range("hysteresis", hysteresis.value(), 0.0, f64::MAX)?;
        require_in_range("delay", delay.value(), 0.0, f64::MAX)?;
        Ok(Self {
            threshold,
            offset,
            hysteresis,
            delay,
            state: false,
            pending: None,
        })
    }

    /// An ideal comparator: no offset, hysteresis or delay.
    pub fn ideal(threshold: Volt) -> Self {
        // All-zero imperfections trivially satisfy `new`'s validation, so
        // construct directly and keep this constructor infallible.
        Self {
            threshold,
            offset: Volt::ZERO,
            hysteresis: Volt::ZERO,
            delay: Seconds::ZERO,
            state: false,
            pending: None,
        }
    }

    /// The nominal switching threshold (excluding offset).
    pub fn threshold(&self) -> Volt {
        self.threshold
    }

    /// Effective rising-edge threshold including offset and hysteresis.
    pub fn rising_threshold(&self) -> Volt {
        self.threshold + self.offset + self.hysteresis * 0.5
    }

    /// Effective falling-edge threshold including offset and hysteresis.
    pub fn falling_threshold(&self) -> Volt {
        self.threshold + self.offset - self.hysteresis * 0.5
    }

    /// The propagation delay.
    pub fn delay(&self) -> Seconds {
        self.delay
    }

    /// Evaluates the comparator at absolute time `now` with input `v_in`,
    /// returning the (delayed) output and whether a rising edge became
    /// visible during this call.
    pub fn evaluate(&mut self, v_in: Volt, now: Seconds) -> ComparatorOutput {
        // Instantaneous decision.
        let decided = if self.pending.map(|(_, v)| v).unwrap_or(self.state) {
            v_in > self.falling_threshold()
        } else {
            v_in > self.rising_threshold()
        };
        let latest = self.pending.map(|(_, v)| v).unwrap_or(self.state);
        if decided != latest {
            // Schedule the transition.
            self.pending = Some((now + self.delay, decided));
        }

        // Commit a due transition.
        let mut rising_edge = false;
        if let Some((t, v)) = self.pending {
            if now >= t {
                rising_edge = v && !self.state;
                self.state = v;
                self.pending = None;
            }
        }
        ComparatorOutput {
            high: self.state,
            rising_edge,
        }
    }

    /// Resets dynamic state (output low, nothing pending).
    pub fn reset(&mut self) {
        self.state = false;
        self.pending = None;
    }
}

/// Result of a comparator evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparatorOutput {
    /// Present (delayed) logic state of the output.
    pub high: bool,
    /// `true` exactly once per low→high transition.
    pub rising_edge: bool,
}

/// Monostable delay stage: converts a trigger edge into a reset pulse of
/// fixed width, after a fixed delay (paper Fig. 3 timing: τ_delay sets when
/// the reset transistor M_res closes, τ₂−τ₁ its on-time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayStage {
    delay: Seconds,
    pulse_width: Seconds,
    /// Absolute start time of the currently scheduled pulse, if any.
    scheduled: Option<Seconds>,
}

impl DelayStage {
    /// Creates a delay stage producing `pulse_width` pulses `delay` after
    /// each trigger.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if either duration is negative or the pulse
    /// width is zero.
    pub fn new(delay: Seconds, pulse_width: Seconds) -> Result<Self, CircuitError> {
        require_in_range("delay", delay.value(), 0.0, f64::MAX)?;
        if pulse_width.value() <= 0.0 {
            return Err(CircuitError::NonPositiveParameter {
                name: "pulse width",
                value: pulse_width.value(),
            });
        }
        Ok(Self {
            delay,
            pulse_width,
            scheduled: None,
        })
    }

    /// The trigger-to-pulse delay.
    pub fn delay(&self) -> Seconds {
        self.delay
    }

    /// The pulse width.
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// Registers a trigger at absolute time `now`. Retriggers are ignored
    /// while a pulse is scheduled or active (non-retriggerable monostable).
    pub fn trigger(&mut self, now: Seconds) {
        if self.scheduled.is_none() {
            self.scheduled = Some(now + self.delay);
        }
    }

    /// Is the pulse output high at absolute time `now`?
    pub fn is_active(&mut self, now: Seconds) -> bool {
        match self.scheduled {
            Some(start) => {
                if now < start {
                    false
                } else if now < start + self.pulse_width {
                    true
                } else {
                    self.scheduled = None;
                    false
                }
            }
            None => false,
        }
    }

    /// Clears any scheduled pulse.
    pub fn reset(&mut self) {
        self.scheduled = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_comparator_switches_at_threshold() {
        let mut c = Comparator::ideal(Volt::new(1.0));
        let t = Seconds::ZERO;
        assert!(!c.evaluate(Volt::new(0.99), t).high);
        let out = c.evaluate(Volt::new(1.01), t);
        assert!(out.high);
        assert!(out.rising_edge);
        // No repeated rising edge while held high.
        assert!(!c.evaluate(Volt::new(1.5), t).rising_edge);
    }

    #[test]
    fn offset_shifts_threshold() {
        let mut c = Comparator::new(
            Volt::new(1.0),
            Volt::from_milli(50.0),
            Volt::ZERO,
            Seconds::ZERO,
        )
        .unwrap();
        assert!(!c.evaluate(Volt::new(1.02), Seconds::ZERO).high);
        assert!(c.evaluate(Volt::new(1.06), Seconds::ZERO).high);
    }

    #[test]
    fn hysteresis_window() {
        let mut c = Comparator::new(
            Volt::new(1.0),
            Volt::ZERO,
            Volt::from_milli(100.0),
            Seconds::ZERO,
        )
        .unwrap();
        assert!(
            !c.evaluate(Volt::new(1.02), Seconds::ZERO).high,
            "below +hys/2"
        );
        assert!(c.evaluate(Volt::new(1.06), Seconds::ZERO).high);
        // Falls only below 0.95.
        assert!(c.evaluate(Volt::new(0.97), Seconds::ZERO).high);
        assert!(!c.evaluate(Volt::new(0.94), Seconds::ZERO).high);
    }

    #[test]
    fn propagation_delay_defers_edge() {
        let mut c = Comparator::new(
            Volt::new(1.0),
            Volt::ZERO,
            Volt::ZERO,
            Seconds::from_micro(1.0),
        )
        .unwrap();
        let out = c.evaluate(Volt::new(1.5), Seconds::ZERO);
        assert!(!out.high, "edge not yet visible");
        let out = c.evaluate(Volt::new(1.5), Seconds::from_micro(0.5));
        assert!(!out.high);
        let out = c.evaluate(Volt::new(1.5), Seconds::from_micro(1.0));
        assert!(out.high && out.rising_edge);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Comparator::ideal(Volt::new(1.0));
        c.evaluate(Volt::new(2.0), Seconds::ZERO);
        c.reset();
        let out = c.evaluate(Volt::new(2.0), Seconds::ZERO);
        assert!(out.rising_edge, "after reset the edge fires again");
    }

    #[test]
    fn negative_delay_rejected() {
        assert!(
            Comparator::new(Volt::new(1.0), Volt::ZERO, Volt::ZERO, Seconds::new(-1.0)).is_err()
        );
    }

    #[test]
    fn delay_stage_pulse_timing() {
        let mut d = DelayStage::new(Seconds::from_micro(1.0), Seconds::from_micro(2.0)).unwrap();
        d.trigger(Seconds::ZERO);
        assert!(!d.is_active(Seconds::from_micro(0.5)), "during delay");
        assert!(d.is_active(Seconds::from_micro(1.5)), "pulse active");
        assert!(d.is_active(Seconds::from_micro(2.9)));
        assert!(!d.is_active(Seconds::from_micro(3.1)), "pulse over");
    }

    #[test]
    fn delay_stage_ignores_retrigger() {
        let mut d = DelayStage::new(Seconds::from_micro(1.0), Seconds::from_micro(2.0)).unwrap();
        d.trigger(Seconds::ZERO);
        d.trigger(Seconds::from_micro(0.5)); // ignored
        assert!(!d.is_active(Seconds::from_micro(3.2)));
        // After completion a new trigger is accepted.
        d.trigger(Seconds::from_micro(4.0));
        assert!(d.is_active(Seconds::from_micro(5.5)));
    }

    #[test]
    fn delay_stage_rejects_zero_width() {
        assert!(DelayStage::new(Seconds::ZERO, Seconds::ZERO).is_err());
    }
}
