//! Robust statistics used throughout the readout pipeline.

use crate::error::DspError;
use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// `true` if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative spread σ/|µ| (0 if the mean is zero).
    pub fn rel_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Extends the accumulator with more samples.
impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Median of an already sorted slice (averages the middle pair for even
/// lengths); NaN for an empty slice — public callers have already
/// rejected that.
fn median_of_sorted(v: &[f64]) -> f64 {
    let n = v.len();
    let at = |i: usize| v.get(i).copied().unwrap_or(f64::NAN);
    if n % 2 == 1 {
        at(n / 2)
    } else {
        0.5 * (at((n / 2).wrapping_sub(1)) + at(n / 2))
    }
}

/// Median of a slice (averages the middle pair for even lengths).
///
/// Errors on an empty slice. NaNs sort last (total order), so a
/// NaN-contaminated input yields a NaN/odd median rather than a panic.
pub fn median(values: &[f64]) -> Result<f64, DspError> {
    median_with(values, &mut Vec::with_capacity(values.len()))
}

/// [`median`] using a caller-provided scratch buffer for the sort copy —
/// the allocation-free form for hot loops. Errors on an empty slice.
pub fn median_with(values: &[f64], scratch: &mut Vec<f64>) -> Result<f64, DspError> {
    if values.is_empty() {
        return Err(DspError::EmptyInput { what: "median" });
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_by(|a, b| a.total_cmp(b));
    Ok(median_of_sorted(scratch))
}

/// Median absolute deviation, scaled by 1.4826 to estimate σ for Gaussian
/// data. Errors on an empty slice.
pub fn mad_sigma(values: &[f64]) -> Result<f64, DspError> {
    mad_sigma_with(values, &mut Vec::with_capacity(values.len()))
}

/// [`mad_sigma`] using a caller-provided scratch buffer — the
/// allocation-free form for hot loops. Errors on an empty slice.
pub fn mad_sigma_with(values: &[f64], scratch: &mut Vec<f64>) -> Result<f64, DspError> {
    let med = median_with(values, scratch)?;
    scratch.clear();
    scratch.extend(values.iter().map(|x| (x - med).abs()));
    scratch.sort_by(|a, b| a.total_cmp(b));
    Ok(1.4826 * median_of_sorted(scratch))
}

/// Linear-interpolated percentile `p` ∈ [0, 100].
///
/// Errors on an empty slice or a `p` outside [0, 100].
pub fn percentile(values: &[f64], p: f64) -> Result<f64, DspError> {
    if values.is_empty() {
        return Err(DspError::EmptyInput { what: "percentile" });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(DspError::InvalidArgument {
            what: "percentile p",
            expected: "[0, 100]",
        });
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let interpolated = if lo == hi {
        v.get(lo).copied().unwrap_or(f64::NAN)
    } else {
        let frac = rank - lo as f64;
        let (a, b) = (v.get(lo), v.get(hi));
        match (a, b) {
            (Some(a), Some(b)) => a * (1.0 - frac) + b * frac,
            _ => f64::NAN,
        }
    };
    Ok(interpolated)
}

/// Fixed-width histogram over `[lo, hi)`; under/overflow are clamped into
/// the end bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds a sample (clamped into the range).
    pub fn push(&mut self, x: f64) {
        let frac = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
        if let Some(bin) = self.bins.get_mut(idx) {
            *bin += 1;
        }
    }

    /// The bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let s: RunningStats = data.iter().copied().collect();
        assert_eq!(s.len(), 6);
        assert!((s.mean() - 3.5).abs() < 1e-12);
        assert!((s.variance() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_for_offset_data() {
        // Large offset + tiny variance: naive sum-of-squares would lose it.
        let s: RunningStats = (0..1000).map(|k| 1e9 + (k % 2) as f64 * 1e-3).collect();
        // Rounding at the 1e9 offset scale limits accuracy to a few %.
        assert!((s.variance() - 2.5e-7).abs() / 2.5e-7 < 0.05);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.rel_spread(), 0.0);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn median_rejects_empty() {
        assert_eq!(median(&[]), Err(DspError::EmptyInput { what: "median" }));
        assert!(mad_sigma(&[]).is_err());
    }

    #[test]
    fn mad_estimates_gaussian_sigma() {
        // Deterministic pseudo-Gaussian via the central limit of a LCG.
        let mut state = 12345u64;
        let mut next = || {
            let mut sum = 0.0;
            for _ in 0..12 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                sum += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            (sum - 6.0) * 2.0 // σ = 2
        };
        let data: Vec<f64> = (0..5000).map(|_| next()).collect();
        let sigma = mad_sigma(&data).unwrap();
        assert!((sigma - 2.0).abs() < 0.15, "sigma = {sigma}");
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        let mut data = vec![0.0; 99];
        for (k, d) in data.iter_mut().enumerate() {
            *d = (k as f64 - 49.0) / 50.0; // uniform in [-0.98, 1.0]
        }
        data.push(1e9); // one wild outlier
        let sigma = mad_sigma(&data).unwrap();
        assert!(sigma < 2.0, "MAD must ignore the outlier, got {sigma}");
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 0.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 40.0);
        assert_eq!(percentile(&v, 50.0).unwrap(), 20.0);
        assert_eq!(percentile(&v, 62.5).unwrap(), 25.0);
        assert!(percentile(&v, 101.0).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 5.0, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bins()[0], 3); // 0.5, 1.5, and clamped −3
        assert_eq!(h.bins()[4], 2); // 9.9 and clamped 42
        assert_eq!(h.bins()[2], 1); // 5.0
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }
}
