//! Izhikevich point neuron.
//!
//! Two coupled ODEs reproduce a zoo of cortical firing patterns (regular
//! spiking, bursting, chattering) at trivial cost — used to give cultured
//! networks on the chip realistic temporal structure, in particular the
//! bursting typical of dissociated cultures.

use bsa_units::Seconds;
use serde::{Deserialize, Serialize};

/// Izhikevich model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhikevichParams {
    /// Recovery time scale.
    pub a: f64,
    /// Recovery sensitivity.
    pub b: f64,
    /// Post-spike voltage reset in mV.
    pub c: f64,
    /// Post-spike recovery increment.
    pub d: f64,
}

impl IzhikevichParams {
    /// Regular-spiking cortical neuron.
    pub fn regular_spiking() -> Self {
        Self {
            a: 0.02,
            b: 0.2,
            c: -65.0,
            d: 8.0,
        }
    }

    /// Intrinsically bursting neuron.
    pub fn intrinsically_bursting() -> Self {
        Self {
            a: 0.02,
            b: 0.2,
            c: -55.0,
            d: 4.0,
        }
    }

    /// Chattering (fast-bursting) neuron.
    pub fn chattering() -> Self {
        Self {
            a: 0.02,
            b: 0.2,
            c: -50.0,
            d: 2.0,
        }
    }

    /// Fast-spiking interneuron.
    pub fn fast_spiking() -> Self {
        Self {
            a: 0.1,
            b: 0.2,
            c: -65.0,
            d: 2.0,
        }
    }
}

/// Izhikevich neuron state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Izhikevich {
    params: IzhikevichParams,
    v: f64,
    u: f64,
}

impl Izhikevich {
    /// Creates a neuron at rest.
    pub fn new(params: IzhikevichParams) -> Self {
        let v = -65.0;
        Self {
            params,
            v,
            u: params.b * v,
        }
    }

    /// Present membrane potential in mV.
    pub fn voltage_mv(&self) -> f64 {
        self.v
    }

    /// Advances by `dt` with dimensionless input drive `i` (typically
    /// 0–20). Returns `true` if the neuron spiked this step.
    pub fn step(&mut self, i: f64, dt: Seconds) -> bool {
        let dt_ms = dt.value() * 1e3;
        // Sub-stepping at ≤0.25 ms for numerical stability of the quadratic
        // upstroke.
        let substeps = (dt_ms / 0.25).ceil().max(1.0) as usize;
        let h = dt_ms / substeps as f64;
        let mut spiked = false;
        for _ in 0..substeps {
            let dv = 0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + i;
            let du = self.params.a * (self.params.b * self.v - self.u);
            self.v += h * dv;
            self.u += h * du;
            if self.v >= 30.0 {
                self.v = self.params.c;
                self.u += self.params.d;
                spiked = true;
            }
        }
        spiked
    }

    /// Runs for `duration` with constant drive, returning spike times.
    pub fn run(&mut self, i: f64, dt: Seconds, duration: Seconds) -> Vec<Seconds> {
        let steps = (duration.value() / dt.value()).round() as usize;
        let mut spikes = Vec::new();
        for k in 0..steps {
            if self.step(i, dt) {
                spikes.push(dt * k as f64);
            }
        }
        spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(0.5e-3);

    #[test]
    fn rests_without_input() {
        let mut n = Izhikevich::new(IzhikevichParams::regular_spiking());
        let spikes = n.run(0.0, DT, Seconds::new(1.0));
        assert!(spikes.is_empty());
        assert!((n.voltage_mv() + 65.0).abs() < 15.0);
    }

    #[test]
    fn regular_spiking_is_tonic() {
        let mut n = Izhikevich::new(IzhikevichParams::regular_spiking());
        let spikes = n.run(10.0, DT, Seconds::new(1.0));
        assert!(spikes.len() > 5, "{} spikes", spikes.len());
        // Inter-spike intervals of tonic firing are nearly uniform (after
        // the initial adaptation transient).
        let isis: Vec<f64> = spikes.windows(2).map(|w| (w[1] - w[0]).value()).collect();
        let tail = &isis[isis.len() / 2..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let max_dev = tail.iter().map(|x| (x - mean).abs()).fold(0.0, f64::max);
        assert!(max_dev / mean < 0.2, "ISI jitter {max_dev}/{mean}");
    }

    #[test]
    fn chattering_bursts() {
        let mut n = Izhikevich::new(IzhikevichParams::chattering());
        let spikes = n.run(10.0, DT, Seconds::new(1.0));
        assert!(spikes.len() > 10);
        // Burstiness: the ISI distribution is bimodal — the ratio of max to
        // min ISI is large.
        let isis: Vec<f64> = spikes.windows(2).map(|w| (w[1] - w[0]).value()).collect();
        let min = isis.iter().cloned().fold(f64::MAX, f64::min);
        let max = isis.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "ISI ratio = {}", max / min);
    }

    #[test]
    fn fast_spiking_outpaces_regular() {
        let mut rs = Izhikevich::new(IzhikevichParams::regular_spiking());
        let mut fs = Izhikevich::new(IzhikevichParams::fast_spiking());
        let n_rs = rs.run(10.0, DT, Seconds::new(1.0)).len();
        let n_fs = fs.run(10.0, DT, Seconds::new(1.0)).len();
        assert!(n_fs > n_rs, "fs = {n_fs}, rs = {n_rs}");
    }

    #[test]
    fn stronger_drive_fires_faster() {
        let p = IzhikevichParams::regular_spiking();
        let n5 = Izhikevich::new(p).run(5.0, DT, Seconds::new(1.0)).len();
        let n15 = Izhikevich::new(p).run(15.0, DT, Seconds::new(1.0)).len();
        assert!(n15 > n5);
    }

    #[test]
    fn state_stays_finite_under_large_steps() {
        let mut n = Izhikevich::new(IzhikevichParams::chattering());
        for _ in 0..1000 {
            n.step(20.0, Seconds::from_milli(5.0));
            assert!(n.voltage_mv().is_finite());
        }
    }
}
