//! Byte-level segment format: header, per-frame records, index footer.
//!
//! ```text
//! HEADER
//!   magic        4 B   b"BSSG"
//!   version      u16   SEGMENT_VERSION
//!   kind         u8    0 = DNA, 1 = neuro (same mapping as the wire)
//!   flags        u8    reserved, 0
//!   chip         u32   session chip handle at record time
//!   rows         u16   frame height
//!   cols         u16   frame width
//!   config_hash  u64   FNV-1a-64 of the spec snapshot bytes
//!   spec_len     u32
//!   spec         spec_len B (UTF-8 chip-config snapshot)
//!   header_crc   u8    CRC-8 over every preceding header byte
//!
//! RECORD (× frame count, back to back)
//!   frame_index  u64   position in the segment (0, 1, 2, …)
//!   epoch        u32   acquisition epoch (stream request ordinal)
//!   payload_len  u32
//!   payload      payload_len B
//!   record_crc   u8    CRC-8 over the record's preceding bytes
//!
//! INDEX FOOTER
//!   offsets      frame_count × u64 (absolute offset of each record)
//!   frame_count  u64
//!   index_off    u64   absolute offset where offsets[] begins
//!   epochs       u32   number of acquisition epochs recorded
//!   footer_crc   u8    CRC-8 over offsets[] and the three fields above
//!   tail magic   4 B   b"BSIX"
//! ```
//!
//! Every byte of the file is guarded by exactly one of the three CRC-8
//! trailers or pinned by a structural equation (the offset table must
//! account for every byte between the records and the tail; the spec
//! length must account for every header byte before the first record), so
//! any single corrupted byte is detected before a frame is served: CRC-8
//! catches every error burst of eight bits or fewer, and the fields used
//! to locate CRC-guarded regions are cross-checked against the file size
//! first.

use crate::error::StoreError;
use bsa_link::crc::Crc8;
use bsa_link::{ChipKind, PixelCount};

/// First bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"BSSG";

/// Last bytes of every finalised segment file.
pub const FOOTER_MAGIC: &[u8; 4] = b"BSIX";

/// Segment format version this build reads and writes.
pub const SEGMENT_VERSION: u16 = 1;

/// Header length up to (not including) the spec bytes.
pub const HEADER_FIXED_LEN: usize = 4 + 2 + 1 + 1 + 4 + 2 + 2 + 8 + 4;

/// Fixed-size tail of the index footer: `frame_count`, `index_off`,
/// `epochs`, `footer_crc`, tail magic.
pub const FOOTER_TAIL_LEN: usize = 8 + 8 + 4 + 1 + 4;

/// Per-record metadata bytes preceding the payload.
pub const RECORD_META_LEN: usize = 8 + 4 + 4;

/// Record bytes that are not payload (metadata plus CRC trailer).
pub const RECORD_OVERHEAD: usize = RECORD_META_LEN + 1;

/// Bytes one stored DNA reading occupies (`row`, `col`, `count`).
pub const DNA_READING_LEN: usize = 2 + 2 + 8;

/// Longest accepted spec snapshot, far above anything the station emits.
pub const MAX_SPEC_LEN: usize = 1 << 20;

/// FNV-1a-64 over `bytes` — the segment header's config-hash function.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bytes one frame payload of this kind/geometry must occupy: a neuro
/// frame is `rows × cols` raw IEEE-754 samples, a DNA "frame" is one
/// count reading.
#[must_use]
pub fn frame_payload_len(kind: ChipKind, rows: u16, cols: u16) -> usize {
    match kind {
        ChipKind::Neuro => usize::from(rows) * usize::from(cols) * 8,
        ChipKind::Dna => DNA_READING_LEN,
    }
}

/// Serialises a neuro frame payload: each sample as raw IEEE-754 bits,
/// little-endian, bit-exact.
#[must_use]
pub fn encode_neuro_frame(samples: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 8);
    for &s in samples {
        out.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    out
}

/// Appends the samples stored in a neuro frame payload to `out`,
/// bit-exact (`f64::from_bits` of the stored words).
pub fn decode_neuro_frame(payload: &[u8], out: &mut Vec<f64>) -> Result<(), StoreError> {
    if !payload.len().is_multiple_of(8) {
        return Err(StoreError::InvalidValue {
            what: "neuro frame payload length",
        });
    }
    out.reserve(payload.len() / 8);
    for chunk in payload.chunks_exact(8) {
        let bits: [u8; 8] = chunk.try_into().map_err(|_| StoreError::InvalidValue {
            what: "neuro frame payload chunk",
        })?;
        out.push(f64::from_bits(u64::from_le_bytes(bits)));
    }
    Ok(())
}

/// Serialises one DNA count reading payload.
#[must_use]
pub fn encode_dna_reading(reading: &PixelCount) -> Vec<u8> {
    let mut out = Vec::with_capacity(DNA_READING_LEN);
    out.extend_from_slice(&reading.row.to_le_bytes());
    out.extend_from_slice(&reading.col.to_le_bytes());
    out.extend_from_slice(&reading.count.to_le_bytes());
    out
}

/// Decodes one DNA count reading payload.
pub fn decode_dna_reading(payload: &[u8]) -> Result<PixelCount, StoreError> {
    let mut cur = Cursor::new(payload);
    let reading = PixelCount {
        row: cur.u16("dna reading row")?,
        col: cur.u16("dna reading col")?,
        count: cur.u64("dna reading count")?,
    };
    cur.finish("dna reading")?;
    Ok(reading)
}

/// Everything the segment header records about the acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Session chip handle at record time (provenance only).
    pub chip: u32,
    /// Which array kind produced the frames.
    pub kind: ChipKind,
    /// Frame height in pixels.
    pub rows: u16,
    /// Frame width in pixels.
    pub cols: u16,
    /// FNV-1a-64 of the spec snapshot bytes.
    pub config_hash: u64,
    /// Human-readable chip-config snapshot captured at record time.
    pub spec: String,
}

impl SegmentMeta {
    /// Wire encoding of `kind` (shared with `bsa-link`'s `ChipKind`).
    pub(crate) fn kind_tag(kind: ChipKind) -> u8 {
        match kind {
            ChipKind::Dna => 0,
            ChipKind::Neuro => 1,
        }
    }

    pub(crate) fn kind_from_tag(tag: u8) -> Result<ChipKind, StoreError> {
        match tag {
            0 => Ok(ChipKind::Dna),
            1 => Ok(ChipKind::Neuro),
            tag => Err(StoreError::UnknownKind { tag }),
        }
    }

    /// Serialises the header, CRC trailer included.
    pub(crate) fn encode_header(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_FIXED_LEN + self.spec.len() + 1);
        out.extend_from_slice(SEGMENT_MAGIC);
        out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        out.push(Self::kind_tag(self.kind));
        out.push(0); // flags, reserved
        out.extend_from_slice(&self.chip.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.cols.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&(self.spec.len() as u32).to_le_bytes());
        out.extend_from_slice(self.spec.as_bytes());
        let mut crc = Crc8::new();
        crc.update_bytes(&out);
        out.push(crc.finish());
        out
    }

    /// Parses and CRC-checks a header occupying exactly `bytes`.
    pub(crate) fn decode_header(bytes: &[u8]) -> Result<Self, StoreError> {
        let Some((body, &[crc_byte])) = bytes.split_at_checked(bytes.len().saturating_sub(1))
        else {
            return Err(StoreError::Truncated {
                what: "segment header",
                needed: (HEADER_FIXED_LEN + 1) as u64,
                available: bytes.len() as u64,
            });
        };
        let mut cur = Cursor::new(body);
        let magic = cur.take(4, "segment header magic")?;
        if magic != SEGMENT_MAGIC {
            return Err(StoreError::BadMagic {
                what: "segment header",
            });
        }
        let version = cur.u16("segment version")?;
        if version != SEGMENT_VERSION {
            return Err(StoreError::UnsupportedVersion { got: version });
        }
        let kind = Self::kind_from_tag(cur.u8("segment kind")?)?;
        let _flags = cur.u8("segment flags")?;
        let chip = cur.u32("segment chip")?;
        let rows = cur.u16("segment rows")?;
        let cols = cur.u16("segment cols")?;
        let config_hash = cur.u64("segment config hash")?;
        let spec_len = cur.u32("segment spec length")? as usize;
        // The header region's size was already pinned by the caller; the
        // stored spec length must account for every remaining byte.
        if spec_len != cur.remaining() {
            return Err(StoreError::InvalidValue {
                what: "segment spec length",
            });
        }
        let spec_bytes = cur.take(spec_len, "segment spec")?;
        let spec = std::str::from_utf8(spec_bytes)
            .map_err(|_| StoreError::BadUtf8)?
            .to_string();
        cur.finish("segment header")?;
        let mut crc = Crc8::new();
        crc.update_bytes(body);
        if crc.finish() != crc_byte {
            return Err(StoreError::BadCrc {
                what: "segment header",
            });
        }
        Ok(Self {
            chip,
            kind,
            rows,
            cols,
            config_hash,
            spec,
        })
    }
}

/// Bounds-checked little-endian slice reader: every primitive read is
/// total, so malformed files surface as typed errors, never panics.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(StoreError::InvalidValue { what })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| StoreError::Truncated {
                what,
                needed: n as u64,
                available: self.remaining() as u64,
            })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, StoreError> {
        let slice = self.take(1, what)?;
        slice
            .first()
            .copied()
            .ok_or(StoreError::InvalidValue { what })
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, StoreError> {
        let slice = self.take(2, what)?;
        let arr: [u8; 2] = slice
            .try_into()
            .map_err(|_| StoreError::InvalidValue { what })?;
        Ok(u16::from_le_bytes(arr))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, StoreError> {
        let slice = self.take(4, what)?;
        let arr: [u8; 4] = slice
            .try_into()
            .map_err(|_| StoreError::InvalidValue { what })?;
        Ok(u32::from_le_bytes(arr))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, StoreError> {
        let slice = self.take(8, what)?;
        let arr: [u8; 8] = slice
            .try_into()
            .map_err(|_| StoreError::InvalidValue { what })?;
        Ok(u64::from_le_bytes(arr))
    }

    pub(crate) fn finish(&self, what: &'static str) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::InvalidValue { what })
        }
    }
}

impl std::fmt::Debug for Cursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor")
            .field("len", &self.bytes.len())
            .field("pos", &self.pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn header_roundtrips() {
        let meta = SegmentMeta {
            chip: 7,
            kind: ChipKind::Neuro,
            rows: 128,
            cols: 128,
            config_hash: fnv1a64(b"spec"),
            spec: "NeuroChipConfig { .. }".into(),
        };
        let bytes = meta.encode_header();
        assert_eq!(bytes.len(), HEADER_FIXED_LEN + meta.spec.len() + 1);
        let back = SegmentMeta::decode_header(&bytes).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn neuro_payload_roundtrips_bit_exact() {
        let samples = [0.0, -0.0, 1.5e-12, f64::MAX, -3.25];
        let payload = encode_neuro_frame(&samples);
        let mut back = Vec::new();
        decode_neuro_frame(&payload, &mut back).unwrap();
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dna_payload_roundtrips() {
        let reading = PixelCount {
            row: 3,
            col: 15,
            count: 123_456_789,
        };
        let payload = encode_dna_reading(&reading);
        assert_eq!(payload.len(), DNA_READING_LEN);
        assert_eq!(decode_dna_reading(&payload).unwrap(), reading);
    }

    #[test]
    fn ragged_payloads_rejected() {
        let mut out = Vec::new();
        assert!(matches!(
            decode_neuro_frame(&[0u8; 7], &mut out),
            Err(StoreError::InvalidValue { .. })
        ));
        assert!(decode_dna_reading(&[0u8; 11]).is_err());
        assert!(decode_dna_reading(&[0u8; 13]).is_err());
    }
}
