// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Neuro-electrophysiology substrate for the neural-recording chip.
//!
//! Section 3 of Thewes et al. (DATE 2005) records "from nerve cells and
//! neural tissue": neurons in electrolyte sit on the chip surface with a
//! ~60 nm cleft, and their action-potential ion currents produce a cleft
//! voltage of 100 µV – 5 mV that the sensor transistors probe capacitively.
//! This crate provides the biology/electrolyte side:
//!
//! * [`hh`] — the Hodgkin–Huxley membrane model (ground truth for action
//!   potential shape and the underlying ionic currents);
//! * [`lif`] / [`izhikevich`] — cheaper point-neuron models for large
//!   cultures;
//! * [`firing`] — spike-train statistics (Poisson, regular, bursting);
//! * [`junction`] — the point-contact cell–chip junction (Fromherz model,
//!   paper refs [16–18]): seal resistance of the cleft and the resulting
//!   extracellular transient;
//! * [`culture`] — spatially placed neuron populations over the 1 mm²
//!   sensor area.
//!
//! # Examples
//!
//! ```
//! use bsa_neuro::hh::HodgkinHuxley;
//! use bsa_units::Seconds;
//!
//! let mut n = HodgkinHuxley::new();
//! let dt = Seconds::from_micro(10.0);
//! let mut spiked = false;
//! for k in 0..20_000 {
//!     // 1 ms suprathreshold current pulse at t = 50 ms.
//!     let stim = if (5000..5100).contains(&k) { 15.0 } else { 0.0 };
//!     let s = n.step(stim, dt);
//!     spiked |= s.spike_onset;
//! }
//! assert!(spiked);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod culture;
pub mod firing;
pub mod hh;
pub mod izhikevich;
pub mod junction;
pub mod lif;
pub mod network;
