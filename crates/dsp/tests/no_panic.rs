#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Property-based totality checks: the allocation-free DSP entry points
//! must never panic, whatever finite data a scan hands them — empty
//! series, single samples, constant frames, out-of-range event indices.
//! These are the APIs the readout engine calls per pixel, where one
//! panicking corner case would abort a whole 128×128 sweep.

use bsa_dsp::filter::{BandPass, Biquad};
use bsa_dsp::snr::{peak_snr_with, SnrScratch};
use bsa_dsp::spike::{DetectionMethod, SpikeDetector, SpikeScratch};
use bsa_dsp::stats::{mad_sigma_with, median_with};
use bsa_units::Hertz;
use proptest::prelude::*;

/// Arbitrary finite sample vectors, length 0..=64 — deliberately includes
/// the empty and single-element cases the hot paths must tolerate.
fn arb_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 0..=64)
}

fn arb_method() -> impl Strategy<Value = DetectionMethod> {
    prop_oneof![
        Just(DetectionMethod::AmplitudeThreshold),
        Just(DetectionMethod::Neo),
    ]
}

proptest! {
    #[test]
    fn biquad_process_into_is_total(xs in arb_series(), fc in 1.0f64..900.0) {
        let fs = Hertz::new(2000.0);
        let mut out = Vec::new();
        Biquad::lowpass(Hertz::new(fc), fs).process_into(&xs, &mut out);
        prop_assert_eq!(out.len(), xs.len());
        Biquad::highpass(Hertz::new(fc), fs).process_into(&xs, &mut out);
        prop_assert_eq!(out.len(), xs.len());
    }

    #[test]
    fn bandpass_process_into_is_total(xs in arb_series(), f_lo in 1.0f64..400.0, width in 1.0f64..400.0) {
        let fs = Hertz::new(2000.0);
        let mut filter = BandPass::new(Hertz::new(f_lo), Hertz::new(f_lo + width), fs);
        let mut out = Vec::new();
        filter.process_into(&xs, &mut out);
        prop_assert_eq!(out.len(), xs.len());
    }

    #[test]
    fn detect_into_is_total(
        xs in arb_series(),
        method in arb_method(),
        sigmas in 0.5f64..10.0,
        refractory in 0usize..8,
    ) {
        let detector = SpikeDetector { method, threshold_sigmas: sigmas, refractory_samples: refractory };
        let mut out = Vec::new();
        detector.detect_into(&xs, &mut SpikeScratch::new(), &mut out);
        // Detections are valid indices in ascending order.
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.iter().all(|&i| i < xs.len()));
    }

    #[test]
    fn median_with_never_panics(xs in arb_series()) {
        let mut scratch = Vec::new();
        let median = median_with(&xs, &mut scratch);
        prop_assert_eq!(median.is_ok(), !xs.is_empty());
        let sigma = mad_sigma_with(&xs, &mut scratch);
        prop_assert_eq!(sigma.is_ok(), !xs.is_empty());
        if let Ok(s) = sigma {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn peak_snr_with_tolerates_any_indices(
        xs in arb_series(),
        // Unvalidated event indices, including far out of range.
        events in prop::collection::vec(0usize..1000, 0..=8),
    ) {
        let snr = peak_snr_with(&xs, &events, &mut SnrScratch::new());
        if let Some(snr) = snr {
            prop_assert!(snr >= 0.0);
        }
    }

    #[test]
    fn detect_into_scratch_state_does_not_leak(
        first in arb_series(),
        second in arb_series(),
    ) {
        // Reusing scratch across series of different lengths must give the
        // same result as a fresh scratch (the engine reuses one per pixel).
        let detector = SpikeDetector::default();
        let mut scratch = SpikeScratch::new();
        let mut reused = Vec::new();
        detector.detect_into(&first, &mut scratch, &mut reused);
        detector.detect_into(&second, &mut scratch, &mut reused);
        let mut fresh = Vec::new();
        detector.detect_into(&second, &mut SpikeScratch::new(), &mut fresh);
        prop_assert_eq!(reused, fresh);
    }
}
