//! Case generation and execution.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed: the property does not hold for these inputs.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is redrawn.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic per-test seed: stable across runs so failures reproduce.
fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` over generated cases until `config.cases` succeed.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the generated inputs, or if too many cases are rejected.
pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = SmallRng::seed_from_u64(seed_for(test_name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        let rendered = format!("{value:?}");
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {test_name}: too many prop_assume! rejections \
                         ({rejected}); last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {test_name}: case {n} failed: {msg}\n  inputs: {inputs}",
                    n = passed + 1,
                    inputs = rendered,
                );
            }
        }
    }
}
