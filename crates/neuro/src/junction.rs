//! The cell–chip point-contact junction.
//!
//! "When neurons within a electrolyte are brought in intimate contact with
//! a planar surface, a cleft of order of 60 nm between cell membrane and
//! surface is obtained. Ion currents flowing through the cleft lead to a
//! potential drop due to the resistance of the cleft" (paper Section 3,
//! refs [16–18]). This module implements that point-contact model: the
//! attached membrane patch drives its ionic + capacitive current through
//! the cleft's seal resistance, producing the 100 µV – 5 mV transient the
//! sensor transistor probes.

use crate::hh::HodgkinHuxley;
use bsa_units::{Meter, Ohm, Seconds, SquareMeter, Volt};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error constructing a junction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidJunctionError {
    what: &'static str,
}

impl fmt::Display for InvalidJunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid junction: {}", self.what)
    }
}

impl Error for InvalidJunctionError {}

/// Point-contact junction between an attached membrane patch and the chip.
///
/// For a perfectly uniform isopotential cell the attached patch's ionic and
/// capacitive currents cancel and no cleft signal arises; real junction
/// signals come from the attached (junction) membrane carrying a different
/// ion-channel density than the free membrane. `channel_density_ratio` is
/// that ratio µ (junction/free); the net current driven through the seal
/// resistance is (µ − 1)·j_ionic per unit area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleftJunction {
    cleft_height: Meter,
    contact_radius: Meter,
    resistivity_ohm_m: f64,
    channel_density_ratio: f64,
}

impl CleftJunction {
    /// The paper's nominal junction: 60 nm cleft under a 20 µm-diameter
    /// contact in physiological saline (ρ ≈ 0.7 Ω·m), with the junction
    /// membrane carrying 30 % of the free membrane's channel density.
    pub fn nominal() -> Self {
        Self {
            cleft_height: Meter::from_nano(60.0),
            contact_radius: Meter::from_micro(10.0),
            resistivity_ohm_m: 0.7,
            channel_density_ratio: 0.3,
        }
    }

    /// Creates a junction with the given cleft height, contact radius and
    /// electrolyte resistivity.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidJunctionError`] if any parameter is non-positive.
    pub fn new(
        cleft_height: Meter,
        contact_radius: Meter,
        resistivity_ohm_m: f64,
    ) -> Result<Self, InvalidJunctionError> {
        if cleft_height.value() <= 0.0 {
            return Err(InvalidJunctionError {
                what: "cleft height must be positive",
            });
        }
        if contact_radius.value() <= 0.0 {
            return Err(InvalidJunctionError {
                what: "contact radius must be positive",
            });
        }
        if resistivity_ohm_m <= 0.0 {
            return Err(InvalidJunctionError {
                what: "resistivity must be positive",
            });
        }
        Ok(Self {
            cleft_height,
            contact_radius,
            resistivity_ohm_m,
            channel_density_ratio: 0.3,
        })
    }

    /// Sets the junction-membrane channel-density ratio µ (clamped to
    /// non-negative). µ = 1 reproduces the uniform-cell null result.
    #[must_use]
    pub fn with_channel_density_ratio(mut self, ratio: f64) -> Self {
        self.channel_density_ratio = ratio.max(0.0);
        self
    }

    /// The junction-membrane channel-density ratio µ.
    pub fn channel_density_ratio(&self) -> f64 {
        self.channel_density_ratio
    }

    /// The cleft height.
    pub fn cleft_height(&self) -> Meter {
        self.cleft_height
    }

    /// The contact radius.
    pub fn contact_radius(&self) -> Meter {
        self.contact_radius
    }

    /// Attached membrane patch area π·r².
    pub fn contact_area(&self) -> SquareMeter {
        SquareMeter::new(std::f64::consts::PI * self.contact_radius.value().powi(2))
    }

    /// Seal resistance of the sheet-like cleft: R_j = ρ/(8π·h) for a disk
    /// contact (point-contact model).
    pub fn seal_resistance(&self) -> Ohm {
        Ohm::new(self.resistivity_ohm_m / (8.0 * std::f64::consts::PI * self.cleft_height.value()))
    }

    /// Cleft voltage for a membrane current density `j_ua_per_cm2`
    /// (µA/cm², outward positive) flowing through the attached patch:
    /// V_j = R_j · A_j · j.
    pub fn cleft_voltage(&self, j_ua_per_cm2: f64) -> Volt {
        let j_a_per_m2 = j_ua_per_cm2 * 1e-2; // µA/cm² → A/m²
        let i = self.contact_area().value() * j_a_per_m2;
        Volt::new(self.seal_resistance().value() * i)
    }
}

/// A precomputed extracellular action-potential waveform at the junction.
///
/// Running a full Hodgkin–Huxley model per neuron per pixel per frame is
/// wasteful; cultures instead stamp this template (one HH run through the
/// junction model) at each spike time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApTemplate {
    dt: Seconds,
    /// Cleft-voltage samples, starting `pre` seconds before the upstroke.
    samples: Vec<Volt>,
    /// Time of the upstroke (0 mV crossing) within the template.
    align: Seconds,
}

impl ApTemplate {
    /// Generates a template by firing one HH action potential through the
    /// given junction.
    ///
    /// The template spans 2 ms before to 6 ms after the upstroke, sampled
    /// at `dt`.
    pub fn from_hh(junction: &CleftJunction, dt: Seconds) -> Self {
        let mut hh = HodgkinHuxley::new();
        // Settle to rest.
        let settle = (0.02 / dt.value()).round() as usize;
        for _ in 0..settle {
            hh.step(0.0, dt);
        }
        // Record with a strong brief pulse.
        let total = (0.02 / dt.value()).round() as usize;
        let pulse = (0.5e-3 / dt.value()).round() as usize;
        let mut v_cleft = Vec::with_capacity(total);
        let mut onset_idx = None;
        for k in 0..total {
            let stim = if k < pulse { 25.0 } else { 0.0 };
            let s = hh.step(stim, dt);
            if s.spike_onset && onset_idx.is_none() {
                onset_idx = Some(k);
            }
            // Net junction current density: capacitive current is common to
            // both membranes and cancels in the whole-cell balance, leaving
            // (µ − 1)·j_ionic to return through the cleft.
            let j_net = (junction.channel_density_ratio - 1.0) * s.ionic_ua_per_cm2;
            v_cleft.push(junction.cleft_voltage(j_net));
        }
        let onset = onset_idx.unwrap_or(pulse);
        let pre = (2e-3 / dt.value()).round() as usize;
        let post = (6e-3 / dt.value()).round() as usize;
        let lo = onset.saturating_sub(pre);
        let hi = (onset + post).min(v_cleft.len());
        let samples = v_cleft[lo..hi].to_vec();
        Self {
            dt,
            samples,
            align: dt * (onset - lo) as f64,
        }
    }

    /// Sample interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Template duration.
    pub fn duration(&self) -> Seconds {
        self.dt * self.samples.len() as f64
    }

    /// Peak-to-peak amplitude of the transient.
    pub fn amplitude(&self) -> Volt {
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(Volt::new(f64::MIN), Volt::max);
        let min = self
            .samples
            .iter()
            .cloned()
            .fold(Volt::new(f64::MAX), Volt::min);
        max - min
    }

    /// Waveform value at time `t` relative to the spike upstroke (negative
    /// `t` = before the upstroke); zero outside the template.
    pub fn sample_at(&self, t: Seconds) -> Volt {
        let idx = ((t + self.align).value() / self.dt.value()).floor();
        if idx < 0.0 {
            return Volt::ZERO;
        }
        let i = idx as usize;
        if i + 1 >= self.samples.len() {
            return Volt::ZERO;
        }
        let frac = (t + self.align).value() / self.dt.value() - idx;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// The raw samples.
    pub fn samples(&self) -> &[Volt] {
        &self.samples
    }

    /// Scales the template amplitude by `factor` (e.g. per-neuron coupling
    /// variability).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        for s in &mut self.samples {
            *s *= factor;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_seal_resistance_magnitude() {
        let j = CleftJunction::nominal();
        let r = j.seal_resistance();
        // ρ/(8πh) = 0.7/(8π·60 nm) ≈ 464 kΩ.
        assert!(
            (r.value() - 4.64e5).abs() / r.value() < 0.01,
            "R_seal = {r}"
        );
    }

    #[test]
    fn smaller_cleft_raises_seal_resistance() {
        let near =
            CleftJunction::new(Meter::from_nano(30.0), Meter::from_micro(10.0), 0.7).unwrap();
        let far =
            CleftJunction::new(Meter::from_nano(120.0), Meter::from_micro(10.0), 0.7).unwrap();
        assert!(near.seal_resistance() > far.seal_resistance());
        let ratio = near.seal_resistance().value() / far.seal_resistance().value();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert!(CleftJunction::new(Meter::ZERO, Meter::from_micro(10.0), 0.7).is_err());
        assert!(CleftJunction::new(Meter::from_nano(60.0), Meter::ZERO, 0.7).is_err());
        assert!(CleftJunction::new(Meter::from_nano(60.0), Meter::from_micro(10.0), 0.0).is_err());
    }

    #[test]
    fn cleft_voltage_scales_with_current_density() {
        let j = CleftJunction::nominal();
        let v1 = j.cleft_voltage(100.0);
        let v2 = j.cleft_voltage(200.0);
        assert!((v2.value() / v1.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn template_amplitude_in_paper_window() {
        // The paper states sensor-level amplitudes of 100 µV … 5 mV.
        let j = CleftJunction::nominal();
        let t = ApTemplate::from_hh(&j, Seconds::new(10e-6));
        let amp = t.amplitude();
        assert!(
            amp.value() > 100e-6 && amp.value() < 5e-3,
            "amplitude = {amp}"
        );
    }

    #[test]
    fn template_is_transient_and_biphasic() {
        let j = CleftJunction::nominal();
        let t = ApTemplate::from_hh(&j, Seconds::new(10e-6));
        let max = t
            .samples()
            .iter()
            .cloned()
            .fold(Volt::new(f64::MIN), Volt::max);
        let min = t
            .samples()
            .iter()
            .cloned()
            .fold(Volt::new(f64::MAX), Volt::min);
        assert!(max.value() > 0.0 && min.value() < 0.0, "biphasic shape");
        // Returns near zero at the template edges.
        let first = t.samples().first().unwrap();
        let last = t.samples().last().unwrap();
        assert!(first.abs().value() < 0.2 * t.amplitude().value());
        assert!(last.abs().value() < 0.2 * t.amplitude().value());
    }

    #[test]
    fn template_sampling_is_zero_outside() {
        let j = CleftJunction::nominal();
        let t = ApTemplate::from_hh(&j, Seconds::new(10e-6));
        assert_eq!(t.sample_at(Seconds::new(-1.0)), Volt::ZERO);
        assert_eq!(t.sample_at(Seconds::new(1.0)), Volt::ZERO);
        // Near the upstroke the waveform is nonzero.
        assert!(t.sample_at(Seconds::new(0.2e-3)).abs().value() > 0.0);
    }

    #[test]
    fn scaled_template_scales_amplitude() {
        let j = CleftJunction::nominal();
        let t = ApTemplate::from_hh(&j, Seconds::new(10e-6));
        let half = t.clone().scaled(0.5);
        assert!((half.amplitude().value() - 0.5 * t.amplitude().value()).abs() < 1e-12);
    }

    #[test]
    fn tighter_cleft_gives_larger_signal() {
        let dt = Seconds::new(10e-6);
        let tight = ApTemplate::from_hh(
            &CleftJunction::new(Meter::from_nano(20.0), Meter::from_micro(10.0), 0.7).unwrap(),
            dt,
        );
        let loose = ApTemplate::from_hh(
            &CleftJunction::new(Meter::from_nano(200.0), Meter::from_micro(10.0), 0.7).unwrap(),
            dt,
        );
        assert!(tight.amplitude() > loose.amplitude());
    }
}
