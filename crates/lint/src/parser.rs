//! A lightweight item parser over the lexer's token stream.
//!
//! Extracts just enough structure for the semantic passes: function items
//! (with their `impl` qualification, visibility and body extent), call
//! sites inside those bodies, and enum definitions with their variants.
//! It is *not* a Rust parser — expressions are never built, and a handful
//! of exotic shapes (turbofish calls, tuple-type impls, const-generic
//! braces) are knowingly approximated; DESIGN.md §11 lists them. In
//! exchange the whole analyzer stays dependency-free.
//!
//! Like the rule passes, this module practises what bsa-lint preaches:
//! every token access is bounds-checked (`get`), so a degenerate token
//! stream can produce a wrong parse but never a panic.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// Parsed structure of one source file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Every `fn` item with a body, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Every `enum` item, in source order.
    pub enums: Vec<EnumItem>,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `Type::name` when defined inside `impl Type` (or `impl Trait for
    /// Type`), otherwise the bare name.
    pub qualified: String,
    /// `pub` / `pub(crate)` / `pub(in …)` visibility.
    pub is_pub: bool,
    /// 1-based line of the function name.
    pub line: usize,
    /// Token-index range of the signature: from the `fn` keyword up to
    /// (excluding) the body's opening brace — name, generics, parameter
    /// list, return type and where clause.
    pub sig: Range<usize>,
    /// Token-index range of the body, including both braces.
    pub body: Range<usize>,
    /// Call sites inside the body (attributed to the innermost fn).
    pub calls: Vec<CallSite>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment).
    pub callee: String,
    /// The path segment before `::`, with `Self` resolved to the
    /// enclosing impl type. `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// `true` for `receiver.callee(…)` method syntax.
    pub is_method: bool,
    /// 1-based line of the callee token.
    pub line: usize,
}

/// One enum definition.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the enum name.
    pub line: usize,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: usize,
}

/// Parses a (test-stripped) token stream into items.
pub fn parse_file(path: &str, tokens: &[Token]) -> ParsedFile {
    let impls = impl_regions(tokens);
    let mut fns = fn_items(tokens, &impls);
    attribute_calls(tokens, &impls, &mut fns);
    let enums = enum_items(tokens);
    ParsedFile {
        path: path.to_string(),
        fns,
        enums,
    }
}

// ---------------------------------------------------------------------------
// impl blocks
// ---------------------------------------------------------------------------

/// An `impl` block: its body extent and the `Self` type name.
struct ImplRegion {
    body: Range<usize>,
    self_type: String,
}

fn impl_regions(tokens: &[Token]) -> Vec<ImplRegion> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("impl")) {
            if let Some((region, resume)) = parse_impl_header(tokens, i) {
                regions.push(region);
                // Resume just inside the body so nothing is skipped (impls
                // do not nest, but fns inside must still be visible).
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Parses one `impl … {` header starting at the `impl` keyword. The self
/// type is the last path ident at angle-depth 0 — after `for` when the
/// block is a trait impl — with the `where` clause ignored.
fn parse_impl_header(tokens: &[Token], start: usize) -> Option<(ImplRegion, usize)> {
    let mut j = start + 1;
    let mut angle = 0usize;
    let mut self_type: Option<String> = None;
    let mut in_where = false;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !is_arrow(tokens, j) {
            angle = angle.saturating_sub(1);
        } else if angle == 0 {
            if t.is_punct('{') {
                let close = matching_brace(tokens, j)?;
                return Some((
                    ImplRegion {
                        body: j..close + 1,
                        self_type: self_type?,
                    },
                    j + 1,
                ));
            }
            if t.is_punct(';') {
                return None;
            }
            if t.is_ident("where") {
                in_where = true;
            } else if !in_where {
                if t.is_ident("for") {
                    self_type = None;
                } else if let Some(name) = t.ident() {
                    if !matches!(name, "dyn" | "mut" | "const" | "unsafe") {
                        self_type = Some(name.to_string());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// The impl type enclosing token index `idx`, innermost first.
fn enclosing_impl(impls: &[ImplRegion], idx: usize) -> Option<String> {
    impls
        .iter()
        .filter(|r| r.body.contains(&idx))
        .max_by_key(|r| r.body.start)
        .map(|r| r.self_type.clone())
}

// ---------------------------------------------------------------------------
// fn items
// ---------------------------------------------------------------------------

fn fn_items(tokens: &[Token], impls: &[ImplRegion]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("fn")) {
            if let Some(item) = parse_fn(tokens, i, impls) {
                // Descend into the body so nested fns are found too.
                i = item.body.start + 1;
                fns.push(item);
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parses one `fn name…(…) … { … }` starting at the `fn` keyword.
/// Returns `None` for bodyless declarations (trait methods, `extern`).
fn parse_fn(tokens: &[Token], fn_idx: usize, impls: &[ImplRegion]) -> Option<FnItem> {
    let name_tok = tokens.get(fn_idx + 1)?;
    let name = name_tok.ident()?.to_string();
    let line = name_tok.line;
    let mut j = fn_idx + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j)?;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    j = skip_balanced(tokens, j)?;
    // Return type and where clause: scan to the body `{` (or `;` for a
    // declaration) at bracket depth 0. Braces cannot appear before the
    // body in the shapes this workspace uses.
    let mut depth = 0usize;
    let body_open = loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('{') {
            break j;
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    };
    let body_close = matching_brace(tokens, body_open)?;
    let qualified = match enclosing_impl(impls, fn_idx) {
        Some(ty) => format!("{ty}::{name}"),
        None => name.clone(),
    };
    Some(FnItem {
        name,
        qualified,
        is_pub: pub_before(tokens, fn_idx),
        line,
        sig: fn_idx..body_open,
        body: body_open..body_close + 1,
        calls: Vec::new(),
    })
}

/// `true` if the item keyword at `item_idx` is preceded by `pub` (with any
/// visibility restriction and any fn qualifiers in between).
fn pub_before(tokens: &[Token], item_idx: usize) -> bool {
    let mut j = item_idx;
    loop {
        let Some(prev) = j.checked_sub(1) else {
            return false;
        };
        let Some(t) = tokens.get(prev) else {
            return false;
        };
        match t.ident() {
            Some("const" | "unsafe" | "async" | "extern") => {
                j = prev;
            }
            Some("pub") => return true,
            Some(_) => return false,
            None => match &t.kind {
                // The "C" in `extern "C"`.
                TokenKind::Literal(_) => {
                    j = prev;
                }
                TokenKind::Punct(')') => {
                    // Possible `pub(crate)` / `pub(in …)` restriction:
                    // walk back to the matching `(` and check for `pub`.
                    return pub_before_restriction(tokens, prev);
                }
                _ => return false,
            },
        }
    }
}

fn pub_before_restriction(tokens: &[Token], close_idx: usize) -> bool {
    let mut depth = 0usize;
    let mut k = close_idx;
    loop {
        let Some(t) = tokens.get(k) else {
            return false;
        };
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|t| t.is_ident("pub"));
            }
        }
        let Some(prev) = k.checked_sub(1) else {
            return false;
        };
        k = prev;
    }
}

// ---------------------------------------------------------------------------
// call sites
// ---------------------------------------------------------------------------

/// Keywords that can directly precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "fn", "loop", "in", "as", "move", "unsafe",
    "let", "break", "continue", "yield", "await", "ref", "mut", "box", "dyn", "impl", "where",
    "use", "pub", "crate", "self", "super", "Self",
];

fn attribute_calls(tokens: &[Token], impls: &[ImplRegion], fns: &mut [FnItem]) {
    for (k, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !tokens.get(k + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| tokens.get(p));
        // `fn name(` is the definition, not a call.
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue;
        }
        let is_method = prev.is_some_and(|p| p.is_punct('.'));
        let mut qualifier = None;
        if !is_method {
            let qualified = prev.is_some_and(|p| p.is_punct(':'))
                && k.checked_sub(2)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|p| p.is_punct(':'));
            if qualified {
                qualifier = k
                    .checked_sub(3)
                    .and_then(|p| tokens.get(p))
                    .and_then(Token::ident)
                    .map(str::to_string);
                if qualifier.as_deref() == Some("Self") {
                    qualifier = enclosing_impl(impls, k);
                }
                // `Self::` outside an impl (or `::foo()`): unresolvable —
                // recording it as a bare call would mis-resolve.
                if qualifier.is_none() {
                    continue;
                }
            }
        }
        let call = CallSite {
            callee: name.to_string(),
            qualifier,
            is_method,
            line: t.line,
        };
        // Attribute to the innermost fn whose body contains the call.
        let mut best: Option<usize> = None;
        for (fi, f) in fns.iter().enumerate() {
            if f.body.contains(&k) {
                let better = match best.and_then(|b| fns.get(b)) {
                    Some(bf) => f.body.start > bf.body.start,
                    None => true,
                };
                if better {
                    best = Some(fi);
                }
            }
        }
        if let Some(f) = best.and_then(|fi| fns.get_mut(fi)) {
            f.calls.push(call);
        }
    }
}

// ---------------------------------------------------------------------------
// enum items
// ---------------------------------------------------------------------------

fn enum_items(tokens: &[Token]) -> Vec<EnumItem> {
    let mut enums = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens.get(i).is_some_and(|t| t.is_ident("enum")) {
            if let Some((item, resume)) = parse_enum(tokens, i) {
                enums.push(item);
                i = resume;
                continue;
            }
        }
        i += 1;
    }
    enums
}

fn parse_enum(tokens: &[Token], enum_idx: usize) -> Option<(EnumItem, usize)> {
    let name_tok = tokens.get(enum_idx + 1)?;
    let name = name_tok.ident()?.to_string();
    let line = name_tok.line;
    let mut j = enum_idx + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(tokens, j)?;
    }
    // `where` clause: bounds contain parens/angles but never braces, so
    // the enum body starts at the next `{`.
    if tokens.get(j).is_some_and(|t| t.is_ident("where")) {
        while tokens.get(j).is_some() && !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
            j += 1;
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
        return None;
    }
    let close = matching_brace(tokens, j)?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expecting = true;
    let mut k = j + 1;
    while k < close {
        let Some(t) = tokens.get(k) else { break };
        // Attribute on a variant (`#[…]`): skip it whole.
        if depth == 0 && t.is_punct('#') && tokens.get(k + 1).is_some_and(|n| n.is_punct('[')) {
            if let Some(end) = skip_balanced(tokens, k + 1) {
                k = end;
                continue;
            }
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(',') {
            expecting = true;
        } else if depth == 0 && expecting {
            if let Some(vname) = t.ident() {
                variants.push(Variant {
                    name: vname.to_string(),
                    line: t.line,
                });
                expecting = false;
            }
        }
        k += 1;
    }
    Some((
        EnumItem {
            name,
            is_pub: pub_before(tokens, enum_idx),
            line,
            variants,
        },
        close + 1,
    ))
}

// ---------------------------------------------------------------------------
// token-walk helpers (all bounds-checked)
// ---------------------------------------------------------------------------

/// `true` when the `>` at `idx` is the second half of a `->` arrow.
fn is_arrow(tokens: &[Token], idx: usize) -> bool {
    idx.checked_sub(1)
        .and_then(|p| tokens.get(p))
        .is_some_and(|t| t.is_punct('-'))
}

/// From an opening `<`, returns the index one past its matching `>`.
fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !is_arrow(tokens, j) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// From an opening `(`/`[`/`{`, returns the index one past the matching
/// closer, treating all three bracket kinds as one nesting family.
fn skip_balanced(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// From an opening `{`, returns the index of its matching `}`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    fn parse(src: &str) -> ParsedFile {
        parse_file("test.rs", &strip_test_code(&lex(src)))
    }

    #[test]
    fn finds_free_and_impl_fns_with_qualification() {
        let src = r#"
            pub fn free(x: u8) -> u8 { helper(x) }
            fn helper(x: u8) -> u8 { x }
            struct Chip;
            impl Chip {
                pub fn new() -> Self { Chip }
                fn tick(&mut self) { Self::check(); }
                fn check() {}
            }
            impl Default for Chip {
                fn default() -> Self { Chip::new() }
            }
        "#;
        let p = parse(src);
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "free",
                "helper",
                "Chip::new",
                "Chip::tick",
                "Chip::check",
                "Chip::default"
            ]
        );
        let free = p.fns.iter().find(|f| f.name == "free").expect("free");
        assert!(free.is_pub);
        let helper = p.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(!helper.is_pub);
    }

    #[test]
    fn trait_impl_type_is_after_for() {
        let src = r#"
            impl<T: Clone> From<Wrapper<T>> for Target where T: Send {
                fn from(w: Wrapper<T>) -> Self { Target }
            }
        "#;
        let p = parse(src);
        let f = p.fns.first().expect("one fn");
        assert_eq!(f.qualified, "Target::from");
    }

    #[test]
    fn pub_crate_and_qualifiers_are_detected() {
        let p = parse("pub(crate) const unsafe fn f() {}\npub(in crate::x) fn g() {}\nfn h() {}");
        let pubs: Vec<bool> = p.fns.iter().map(|f| f.is_pub).collect();
        assert_eq!(pubs, vec![true, true, false]);
    }

    #[test]
    fn trait_method_declarations_have_no_body_and_are_skipped() {
        let src = r#"
            trait T {
                fn decl(&self) -> u8;
                fn provided(&self) -> u8 { 1 }
            }
        "#;
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["provided"]);
    }

    #[test]
    fn call_sites_are_classified_and_attributed() {
        let src = r#"
            impl Engine {
                fn run(&self) {
                    self.step();
                    Engine::halt();
                    Self::halt();
                    spin();
                    ready!();
                    let closure = |x: u8| lift(x);
                }
            }
        "#;
        let p = parse(src);
        let run = p.fns.first().expect("run");
        let calls: Vec<(String, Option<String>, bool)> = run
            .calls
            .iter()
            .map(|c| (c.callee.clone(), c.qualifier.clone(), c.is_method))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("step".into(), None, true),
                ("halt".into(), Some("Engine".into()), false),
                ("halt".into(), Some("Engine".into()), false),
                ("spin".into(), None, false),
                ("lift".into(), None, false),
            ]
        );
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let src = r#"
            fn outer() {
                fn inner() { deep(); }
                shallow();
            }
        "#;
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(
            outer.calls.first().map(|c| c.callee.as_str()),
            Some("shallow")
        );
        assert_eq!(inner.calls.first().map(|c| c.callee.as_str()), Some("deep"));
    }

    #[test]
    fn enums_and_variants_with_payloads_and_discriminants() {
        let src = r#"
            #[derive(Debug)]
            #[non_exhaustive]
            pub enum Wire {
                Idle,
                Byte(u8),
                Frame { seq: u32, body: Vec<u8> },
                Tagged = 7,
            }
            enum Private { A, B }
        "#;
        let p = parse(src);
        assert_eq!(p.enums.len(), 2);
        let wire = p.enums.first().expect("wire");
        assert!(wire.is_pub);
        let names: Vec<&str> = wire.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Idle", "Byte", "Frame", "Tagged"]);
        let private = p.enums.get(1).expect("private");
        assert!(!private.is_pub);
        assert_eq!(private.variants.len(), 2);
    }

    #[test]
    fn variant_attributes_and_generics_do_not_confuse_the_walk() {
        let src = r#"
            pub enum E<T> where T: Clone {
                #[doc(hidden)]
                Hidden(Box<dyn Fn(u8) -> T>),
                Pair { a: Vec<(u8, u8)>, b: [u8; 4] },
            }
        "#;
        let p = parse(src);
        let e = p.enums.first().expect("enum");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Hidden", "Pair"]);
    }

    #[test]
    fn test_code_is_stripped_before_parsing() {
        let src = r#"
            pub fn keep() {}
            #[cfg(test)]
            mod tests {
                fn dropped() { gone(); }
            }
        "#;
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns.first().map(|f| f.name.as_str()), Some("keep"));
    }

    #[test]
    fn arrow_in_return_type_does_not_break_generics() {
        let src = "pub fn apply<F: Fn(u8) -> u8>(f: F) -> u8 { f(1) }";
        let p = parse(src);
        let f = p.fns.first().expect("fn");
        assert_eq!(f.name, "apply");
        assert_eq!(f.calls.len(), 1);
    }

    #[test]
    fn degenerate_streams_do_not_panic() {
        for src in [
            "fn", "fn (", "impl {", "enum", "enum E {", "fn f(", "impl X",
        ] {
            let _ = parse(src);
        }
    }
}
