//! `--format json` / `--format sarif`: machine-readable reports for the
//! CI artifacts.
//!
//! Rendered by hand (the workspace vendors no serde); the JSON schema is
//! flat and stable so the CI job can diff `lint-report.json` across
//! commits, and the SARIF document is the minimal 2.1.0 subset
//! code-scanning UIs ingest (driver rules + per-result physical
//! locations).

use crate::abi::AbiSummary;
use crate::allow::{Allowlist, Reconciliation};
use crate::proto::ProtoSummary;
use crate::rules::{rule_description, Violation, RULE_IDS};
use crate::workspace::PassTimings;

/// Everything one `check` run produces.
#[derive(Debug)]
pub struct Report<'a> {
    /// Files scanned.
    pub files_checked: usize,
    /// Raw violation count before reconciliation.
    pub violations_total: usize,
    /// Outcome of budget reconciliation.
    pub rec: &'a Reconciliation,
    /// The allowlist in force.
    pub allow: &'a Allowlist,
    /// Protocol coverage counts.
    pub proto: &'a ProtoSummary,
    /// Wire-ABI lock comparison, when the pass ran.
    pub abi: Option<&'a AbiSummary>,
    /// Per-pass elapsed wall-clock.
    pub timings: &'a PassTimings,
}

/// Renders the report as a JSON document (trailing newline included).
pub fn render_json(r: &Report<'_>) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let status = if r.rec.clean() { "clean" } else { "failed" };
    push_kv_str(&mut s, 1, "status", status, true);
    push_kv_num(&mut s, 1, "files_checked", r.files_checked, true);

    s.push_str("  \"violations\": {\n");
    push_kv_num(&mut s, 2, "total", r.violations_total, true);
    let allowed = r.violations_total.saturating_sub(r.rec.unallowed.len());
    push_kv_num(&mut s, 2, "allowed", allowed, true);
    s.push_str("    \"unallowed\": [");
    for (i, v) in r.rec.unallowed.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n      {\"file\": \"");
        s.push_str(&json_escape(&v.file));
        s.push_str("\", \"line\": ");
        s.push_str(&v.line.to_string());
        s.push_str(", \"rule\": \"");
        s.push_str(&json_escape(v.rule));
        s.push_str("\", \"message\": \"");
        s.push_str(&json_escape(&v.message));
        s.push_str("\"}");
    }
    if !r.rec.unallowed.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("],\n");
    s.push_str("    \"stale_budgets\": [");
    for (i, (entry, actual)) in r.rec.stale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n      {\"file\": \"");
        s.push_str(&json_escape(&entry.file));
        s.push_str("\", \"rule\": \"");
        s.push_str(&json_escape(&entry.rule));
        s.push_str("\", \"max\": ");
        s.push_str(&entry.max.to_string());
        s.push_str(", \"actual\": ");
        s.push_str(&actual.to_string());
        s.push('}');
    }
    if !r.rec.stale.is_empty() {
        s.push_str("\n    ");
    }
    s.push_str("]\n  },\n");

    s.push_str("  \"budget\": {\n");
    push_kv_num(&mut s, 2, "entries", r.allow.entries.len(), true);
    push_kv_num(&mut s, 2, "total", r.allow.total_budget(), false);
    s.push_str("  },\n");

    s.push_str("  \"proto\": {\n");
    s.push_str("    \"message\": ");
    push_coverage(
        &mut s,
        r.proto.message_found,
        &[
            ("variants", r.proto.message_variants),
            ("encoded", r.proto.encoded),
            ("decoded", r.proto.decoded),
            ("handled", r.proto.handled),
        ],
    );
    s.push_str(",\n    \"protocol_error\": ");
    push_coverage(
        &mut s,
        r.proto.error_found,
        &[
            ("variants", r.proto.error_variants),
            ("mapped", r.proto.error_mapped),
        ],
    );
    s.push_str(",\n    \"error_code\": ");
    push_coverage(
        &mut s,
        r.proto.reply_found,
        &[
            ("variants", r.proto.reply_variants),
            ("constructed", r.proto.reply_constructed),
        ],
    );
    s.push_str("\n  },\n");

    s.push_str("  \"abi\": ");
    match r.abi {
        Some(abi) => {
            s.push_str("{\"lock_present\": ");
            s.push_str(if abi.lock_present { "true" } else { "false" });
            s.push_str(", \"variants\": ");
            s.push_str(&abi.variants.to_string());
            s.push_str(", \"matched\": ");
            s.push_str(&abi.matched.to_string());
            s.push('}');
        }
        None => s.push_str("null"),
    }
    s.push_str(",\n");

    s.push_str("  \"timings_us\": {\n");
    let t = r.timings;
    for (key, us, comma) in [
        ("lexical", t.lexical_us, true),
        ("parse", t.parse_us, true),
        ("summary", t.summary_us, true),
        ("flow", t.flow_us, true),
        ("taint", t.taint_us, true),
        ("reach", t.reach_us, true),
        ("proto", t.proto_us, true),
        ("conc", t.conc_us, true),
        ("lock_order", t.lock_order_us, true),
        ("abi", t.abi_us, true),
        ("total", t.total_us, false),
    ] {
        push_indent(&mut s, 2);
        s.push('"');
        s.push_str(key);
        s.push_str("\": ");
        s.push_str(&us.to_string());
        if comma {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  },\n");

    s.push_str("  \"rules\": [");
    for (i, id) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(id);
        s.push('"');
    }
    s.push_str("]\n}\n");
    s
}

/// Renders the run as a SARIF 2.1.0 log (trailing newline included).
///
/// Non-allowlisted violations surface as `error`-level results;
/// violations covered by an allowlist budget report as `note`, so a
/// code-scanning UI shows exactly the gate CI enforces.
pub fn render_sarif(violations: &[Violation], rec: &Reconciliation) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"bsa-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, id) in RULE_IDS.iter().enumerate() {
        s.push_str("            {\"id\": \"");
        s.push_str(id);
        s.push_str("\", \"shortDescription\": {\"text\": \"");
        s.push_str(&json_escape(rule_description(id)));
        s.push_str("\"}}");
        if i + 1 < RULE_IDS.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    // Consume one unallowed entry per matching violation so duplicate
    // findings on one line keep their levels balanced.
    let mut unallowed: Vec<&Violation> = rec.unallowed.iter().collect();
    for (i, v) in violations.iter().enumerate() {
        let level = match unallowed.iter().position(|u| {
            u.file == v.file && u.line == v.line && u.rule == v.rule && u.message == v.message
        }) {
            Some(pos) => {
                unallowed.swap_remove(pos);
                "error"
            }
            None => "note",
        };
        s.push_str("        {\"ruleId\": \"");
        s.push_str(&json_escape(v.rule));
        s.push_str("\", \"level\": \"");
        s.push_str(level);
        s.push_str("\", \"message\": {\"text\": \"");
        s.push_str(&json_escape(&v.message));
        s.push_str("\"}, \"locations\": [{\"physicalLocation\": ");
        s.push_str("{\"artifactLocation\": {\"uri\": \"");
        s.push_str(&json_escape(&v.file));
        s.push_str("\"}, \"region\": {\"startLine\": ");
        s.push_str(&v.line.max(1).to_string());
        s.push_str("}}}]}");
        if i + 1 < violations.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

fn push_kv_str(s: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    push_indent(s, indent);
    s.push('"');
    s.push_str(key);
    s.push_str("\": \"");
    s.push_str(&json_escape(value));
    s.push('"');
    if comma {
        s.push(',');
    }
    s.push('\n');
}

fn push_kv_num(s: &mut String, indent: usize, key: &str, value: usize, comma: bool) {
    push_indent(s, indent);
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(&value.to_string());
    if comma {
        s.push(',');
    }
    s.push('\n');
}

fn push_indent(s: &mut String, indent: usize) {
    for _ in 0..indent {
        s.push_str("  ");
    }
}

fn push_coverage(s: &mut String, found: bool, fields: &[(&str, usize)]) {
    s.push_str("{\"found\": ");
    s.push_str(if found { "true" } else { "false" });
    for (k, v) in fields {
        s.push_str(", \"");
        s.push_str(k);
        s.push_str("\": ");
        s.push_str(&v.to_string());
    }
    s.push('}');
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let hi = (c as u32) >> 4;
                let lo = (c as u32) & 0xf;
                out.push(char::from_digit(hi, 16).unwrap_or('0'));
                out.push(char::from_digit(lo, 16).unwrap_or('0'));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::{reconcile, AllowEntry};
    use crate::rules::Violation;

    #[test]
    fn clean_report_renders_and_balances() {
        let rec = Reconciliation::default();
        let allow = Allowlist {
            entries: vec![AllowEntry {
                file: "crates/core/src/a.rs".to_string(),
                rule: "panic.indexing".to_string(),
                max: 3,
                reason: "bounds proven by construction".to_string(),
            }],
        };
        let proto = ProtoSummary {
            message_found: true,
            message_variants: 24,
            encoded: 24,
            decoded: 24,
            handled: 24,
            ..ProtoSummary::default()
        };
        let abi = AbiSummary {
            variants: 27,
            matched: 27,
            lock_present: true,
        };
        let timings = PassTimings {
            lexical_us: 1200,
            total_us: 9000,
            ..PassTimings::default()
        };
        let json = render_json(&Report {
            files_checked: 42,
            violations_total: 3,
            rec: &rec,
            allow: &allow,
            proto: &proto,
            abi: Some(&abi),
            timings: &timings,
        });
        assert!(json.contains("\"status\": \"clean\""), "{json}");
        assert!(json.contains("\"handled\": 24"), "{json}");
        assert!(json.contains("\"total\": 3"), "{json}");
        assert!(
            json.contains("\"abi\": {\"lock_present\": true, \"variants\": 27, \"matched\": 27}"),
            "{json}"
        );
        assert!(json.contains("\"lexical\": 1200"), "{json}");
        assert!(json.contains("\"total\": 9000"), "{json}");
        // Brackets and braces balance.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn sarif_levels_follow_the_allowlist() {
        let violations = vec![
            Violation {
                file: "crates/dsp/src/x.rs".to_string(),
                line: 7,
                rule: "panic.unwrap",
                message: "budgeted".to_string(),
            },
            Violation {
                file: "crates/link/src/y.rs".to_string(),
                line: 0,
                rule: "taint.wire-alloc",
                message: "a \"quoted\" size".to_string(),
            },
        ];
        let allow = Allowlist {
            entries: vec![AllowEntry {
                file: "crates/dsp/src/x.rs".to_string(),
                rule: "panic.unwrap".to_string(),
                max: 1,
                reason: "test".to_string(),
            }],
        };
        let rec = reconcile(&violations, &allow);
        let sarif = render_sarif(&violations, &rec);
        assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
        // Every rule id ships a driver entry.
        for id in RULE_IDS {
            assert!(sarif.contains(&format!("{{\"id\": \"{id}\"")), "{sarif}");
        }
        // The budgeted violation is a note, the wire finding an error.
        assert!(
            sarif.contains("\"ruleId\": \"panic.unwrap\", \"level\": \"note\""),
            "{sarif}"
        );
        assert!(
            sarif.contains("\"ruleId\": \"taint.wire-alloc\", \"level\": \"error\""),
            "{sarif}"
        );
        assert!(sarif.contains("\\\"quoted\\\" size"), "{sarif}");
        // Line 0 is clamped to SARIF's 1-based region.
        assert!(sarif.contains("\"startLine\": 1"), "{sarif}");
        let opens = sarif.matches(['{', '[']).count();
        let closes = sarif.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{sarif}");
    }

    #[test]
    fn failed_report_lists_unallowed_with_escaping() {
        let violations = vec![Violation {
            file: "crates/dsp/src/x.rs".to_string(),
            line: 7,
            rule: "panic.unwrap",
            message: "a \"quoted\"\nmessage".to_string(),
        }];
        let allow = Allowlist::default();
        let rec = reconcile(&violations, &allow);
        let json = render_json(&Report {
            files_checked: 1,
            violations_total: 1,
            rec: &rec,
            allow: &allow,
            proto: &ProtoSummary::default(),
            abi: None,
            timings: &PassTimings::default(),
        });
        assert!(json.contains("\"status\": \"failed\""), "{json}");
        assert!(json.contains("\"abi\": null"), "{json}");
        assert!(json.contains("\\\"quoted\\\"\\nmessage"), "{json}");
        assert!(json.contains("\"line\": 7"), "{json}");
    }
}
