//! Label-free gravimetric (mass) detection.
//!
//! The second label-free route of paper refs [9, 10]: a film bulk acoustic
//! resonator (FBAR) under the sensor surface shifts its resonance
//! frequency when hybridized DNA adds mass, following the Sauerbrey
//! relation:
//!
//! ```text
//! Δf = −2·f₀²·Δm″ / (ρ_q·v_q)    (Δm″ = areal mass density, kg/m²)
//! ```

use bsa_units::{Hertz, SquareMeter};
use serde::{Deserialize, Serialize};

/// Average molar mass of one DNA base in kg/mol.
const BASE_MASS_KG_PER_MOL: f64 = 0.330;

/// Film-bulk-acoustic-resonator mass sensor under one array site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FbarSensor {
    /// Unloaded resonance frequency (ZnO/AlN FBARs: ~2 GHz).
    pub f0: Hertz,
    /// Acoustic impedance ρ·v of the resonator material in kg/(m²·s)
    /// (AlN: ≈ 3.4e7).
    pub acoustic_impedance: f64,
    /// Frequency-readout noise floor (one measurement).
    pub frequency_noise: Hertz,
    /// Probe site density in 1/m².
    pub probe_density_per_m2: f64,
    /// Bound-target length in bases (long targets: big mass per event).
    pub target_length_bases: usize,
}

impl Default for FbarSensor {
    /// A 2 GHz AlN FBAR with 3e15/m² probes binding 200-base targets,
    /// 1 kHz frequency noise.
    fn default() -> Self {
        Self {
            f0: Hertz::new(2.0e9),
            acoustic_impedance: 3.4e7,
            frequency_noise: Hertz::from_kilo(1.0),
            probe_density_per_m2: 3e15,
            target_length_bases: 200,
        }
    }
}

impl FbarSensor {
    /// Mass sensitivity in Hz per (kg/m²): 2·f₀²/(ρ·v).
    pub fn sensitivity_hz_per_kg_m2(&self) -> f64 {
        2.0 * self.f0.value() * self.f0.value() / self.acoustic_impedance
    }

    /// Areal mass added by duplex coverage `theta` in kg/m².
    pub fn areal_mass(&self, theta: f64) -> f64 {
        let per_molecule =
            self.target_length_bases as f64 * BASE_MASS_KG_PER_MOL / bsa_units::consts::AVOGADRO;
        theta.clamp(0.0, 1.0) * self.probe_density_per_m2 * per_molecule
    }

    /// Resonance downshift for coverage `theta` (positive number).
    pub fn frequency_shift(&self, theta: f64) -> Hertz {
        Hertz::new(self.sensitivity_hz_per_kg_m2() * self.areal_mass(theta))
    }

    /// Loaded resonance frequency at coverage `theta`.
    pub fn resonance(&self, theta: f64) -> Hertz {
        self.f0 - self.frequency_shift(theta)
    }

    /// Smallest coverage detectable at SNR = 3 against the frequency
    /// noise floor.
    pub fn minimum_detectable_coverage(&self) -> f64 {
        let full = self.frequency_shift(1.0).value();
        if full <= 0.0 {
            return 1.0;
        }
        (3.0 * self.frequency_noise.value() / full).min(1.0)
    }

    /// Mass per site area resolved at the noise floor, in kg/m².
    pub fn mass_resolution_kg_m2(&self) -> f64 {
        3.0 * self.frequency_noise.value() / self.sensitivity_hz_per_kg_m2()
    }

    /// Total detected mass on a site of the given area at coverage
    /// `theta`, in kilograms.
    pub fn bound_mass_kg(&self, area: SquareMeter, theta: f64) -> f64 {
        self.areal_mass(theta) * area.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_magnitude() {
        let s = FbarSensor::default();
        // 2·(2e9)²/3.4e7 ≈ 2.35e11 Hz/(kg/m²).
        let k = s.sensitivity_hz_per_kg_m2();
        assert!((k - 2.35e11).abs() / k < 0.01, "k = {k}");
    }

    #[test]
    fn shift_is_linear_in_coverage() {
        let s = FbarSensor::default();
        let half = s.frequency_shift(0.5).value();
        let full = s.frequency_shift(1.0).value();
        assert!((full / half - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_shift_is_resolvable() {
        // 3e15/m² × 200 bases × 0.33 kg/mol / N_A ≈ 3.3e-7 kg/m²
        // ⇒ Δf ≈ 77 kHz at 2 GHz — two orders above the 1 kHz noise.
        let s = FbarSensor::default();
        let df = s.frequency_shift(1.0);
        assert!(df.value() > 10e3, "Δf = {df}");
        assert!(df.value() < 1e6, "Δf = {df}");
        assert!(s.minimum_detectable_coverage() < 0.1);
    }

    #[test]
    fn resonance_moves_down() {
        let s = FbarSensor::default();
        assert!(s.resonance(1.0) < s.resonance(0.0));
        assert_eq!(s.resonance(0.0), s.f0);
    }

    #[test]
    fn longer_targets_are_easier_to_detect() {
        let short = FbarSensor {
            target_length_bases: 20,
            ..FbarSensor::default()
        };
        let long = FbarSensor {
            target_length_bases: 2000,
            ..FbarSensor::default()
        };
        assert!(long.minimum_detectable_coverage() < short.minimum_detectable_coverage());
    }

    #[test]
    fn coverage_clamped() {
        let s = FbarSensor::default();
        assert_eq!(s.frequency_shift(5.0), s.frequency_shift(1.0));
        assert_eq!(s.frequency_shift(-1.0).value(), 0.0);
    }

    #[test]
    fn mass_resolution_consistent_with_coverage_limit() {
        let s = FbarSensor::default();
        let theta_min = s.minimum_detectable_coverage();
        let mass_at_theta_min = s.areal_mass(theta_min);
        assert!((mass_at_theta_min - s.mass_resolution_kg_m2()).abs() / mass_at_theta_min < 1e-9);
    }

    #[test]
    fn bound_mass_scales_with_area() {
        let s = FbarSensor::default();
        let a1 = s.bound_mass_kg(SquareMeter::new(1e-8), 1.0);
        let a2 = s.bound_mass_kg(SquareMeter::new(2e-8), 1.0);
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
        // Femtogram–picogram scale per site: (100 µm)² × 3.3e-7 kg/m².
        assert!(a1 > 1e-18 && a1 < 1e-12, "mass = {a1} kg");
    }
}
