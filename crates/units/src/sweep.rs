//! Parameter-sweep helpers: linear and logarithmic ranges.
//!
//! The evaluation harness sweeps sensor currents over five decades
//! (1 pA … 100 nA, Fig. 3 of the paper) and chip parameters over linear
//! ranges; these helpers generate those grids deterministically.

/// Returns `n` points linearly spaced over `[lo, hi]`, inclusive.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use bsa_units::sweep::linspace;
/// assert_eq!(linspace(0.0, 1.0, 5), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace requires at least one point");
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// Returns `n` points logarithmically spaced over `[lo, hi]`, inclusive.
///
/// # Panics
///
/// Panics if `n == 0`, or if `lo` or `hi` is not strictly positive.
///
/// # Examples
///
/// ```
/// use bsa_units::sweep::logspace;
/// let pts = logspace(1e-12, 1e-7, 6);
/// assert_eq!(pts.len(), 6);
/// assert!((pts[1] - 1e-11).abs() < 1e-22);
/// ```
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "logspace requires at least one point");
    assert!(lo > 0.0 && hi > 0.0, "logspace requires positive bounds");
    linspace(lo.log10(), hi.log10(), n)
        .into_iter()
        .map(|e| 10f64.powf(e))
        .collect()
}

/// Returns points per decade over `[lo, hi]`: `per_decade` log-spaced points
/// in each factor-of-ten interval, endpoints included.
///
/// # Panics
///
/// Panics if `per_decade == 0`, `lo <= 0`, or `hi < lo`.
///
/// # Examples
///
/// ```
/// use bsa_units::sweep::decades;
/// // Five decades, 1 point per decade: the classic 1 pA … 100 nA sweep.
/// let pts = decades(1e-12, 1e-7, 1);
/// assert_eq!(pts.len(), 6);
/// ```
pub fn decades(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
    assert!(per_decade > 0, "decades requires at least one point/decade");
    assert!(lo > 0.0, "decades requires positive lower bound");
    assert!(hi >= lo, "decades requires hi >= lo");
    let n_dec = (hi / lo).log10();
    let n = (n_dec * per_decade as f64).round() as usize + 1;
    logspace(lo, hi, n.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let v = linspace(-1.0, 1.0, 3);
        assert_eq!(v, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_monotone() {
        let v = logspace(1e-12, 1e-7, 26);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert!((v[0] - 1e-12).abs() < 1e-24);
        assert!((v[25] - 1e-7).abs() < 1e-18);
    }

    #[test]
    fn logspace_ratio_is_constant() {
        let v = logspace(1.0, 1000.0, 4);
        for w in v.windows(2) {
            assert!((w[1] / w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn decades_counts() {
        assert_eq!(decades(1e-12, 1e-7, 5).len(), 26);
        assert_eq!(decades(1e-12, 1e-7, 1).len(), 6);
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn logspace_rejects_zero() {
        logspace(0.0, 1.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_rejects_empty() {
        linspace(0.0, 1.0, 0);
    }
}
