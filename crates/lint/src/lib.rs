// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-lint` — workspace-wide invariant checker.
//!
//! Enforces three rule families over the biosensor-array crates, mirroring
//! the guarantees the chips enforce in circuitry (DESIGN.md §9):
//!
//! 1. **Determinism** (`det.*`) — no wall-clock, unseeded RNG, hash-order
//!    iteration or thread-order float reductions in the scan and DSP
//!    paths, protecting the bit-identical-across-thread-counts replay
//!    guarantee.
//! 2. **Panic-freedom** (`panic.*`) — no `unwrap`/`expect`/panicking
//!    macros/direct indexing in non-test library code; justified
//!    exceptions live in `lint.allow.toml`, whose budgets are exact and
//!    can only shrink.
//! 3. **Unit-safety** (`units.raw-f64`) — public functions take
//!    `bsa-units` newtypes (`Hertz`, `Volt`, `Ampere`, `Seconds`) rather
//!    than raw `f64` for dimensioned scalars, so a pA-vs-nA or Hz-vs-rad
//!    mixup fails to compile instead of silently corrupting a readout.
//!
//! On top of the lexical passes sit three *semantic* families that need
//! the whole workspace at once (DESIGN.md §11): a lightweight parser
//! ([`parser`]) extracts fns, impls, enums and call sites; a cross-crate
//! call graph then powers `reach.panic` (transitive panic reachability
//! behind public APIs, [`reach`]), `proto.*` (wire-protocol
//! encode/decode/handler exhaustiveness, [`proto`]) and `conc.*`
//! (atomic read-modify-write and lock discipline in the station,
//! [`conc`]).
//!
//! Run it as `cargo run -p bsa-lint -- check` (add `--format json` for
//! the CI artifact). The analyzer is dependency-free: it lexes Rust
//! itself ([`lexer`]) instead of pulling in `syn`, so it keeps working in
//! a bare offline checkout.

pub mod allow;
pub mod conc;
pub mod lexer;
pub mod parser;
pub mod proto;
pub mod reach;
pub mod report;
pub mod rules;
pub mod workspace;

pub use allow::{reconcile, AllowEntry, Allowlist, Reconciliation};
pub use conc::{conc_pass, STATION_PREFIX};
pub use parser::{parse_file, ParsedFile};
pub use proto::{proto_pass, ProtoConfig, ProtoSummary};
pub use reach::reach_pass;
pub use report::{render_json, Report};
pub use rules::{rule_description, run_rules, RuleSet, Violation, RULE_IDS};
pub use workspace::{
    check_file, check_sources, check_workspace, collect_files, load_sources, rules_for,
    workspace_root, SourceFile,
};
