//! The controller's edge to the instrument: a thin trait over the
//! station client so the loop can be driven against a live loopback
//! station in tests and against real deployments identically.
//!
//! This is where the determinism boundary sits. Everything behind
//! [`ControlLink`] may touch sockets, deadlines and wall-clock pauses;
//! everything in front of it (classifier, policy, trace) is pure.

use bsa_link::{
    ChipId, CultureSpec, DnaChipSpec, FaultPlanSpec, NeuroChipSpec, TargetSpec, YieldSummary,
};
use bsa_station::{
    AssayOutcome, AttachedChip, CalibrationCounts, ClientError, NeuroStream, StationClient,
};
use bsa_units::Seconds;
use std::thread;
use std::time::Duration;

/// Everything the controller needs from the instrument side.
pub trait ControlLink {
    /// Attaches a simulated neuro chip.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn attach_neuro(&mut self, spec: &NeuroChipSpec) -> Result<AttachedChip, ClientError>;

    /// Attaches a simulated DNA chip.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn attach_dna(&mut self, spec: &DnaChipSpec) -> Result<AttachedChip, ClientError>;

    /// Detaches a chip, releasing its handle.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn detach(&mut self, chip: ChipId) -> Result<(), ClientError>;

    /// Spots probes / sets the sample mix on a DNA chip.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn configure_assay(
        &mut self,
        chip: ChipId,
        probes: Vec<String>,
        targets: Vec<TargetSpec>,
    ) -> Result<(), ClientError>;

    /// Runs auto-calibration.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn calibrate(&mut self, chip: ChipId) -> Result<CalibrationCounts, ClientError>;

    /// Fetches the chip's yield report.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn health(&mut self, chip: ChipId) -> Result<YieldSummary, ClientError>;

    /// Masks pixels for neighbor interpolation; returns the mask size
    /// after the union.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn mask_pixels(&mut self, chip: ChipId, pixels: &[u32]) -> Result<u32, ClientError>;

    /// Injects a compiled fault plan (scenario setup).
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn inject_faults(&mut self, chip: ChipId, plan: FaultPlanSpec) -> Result<(), ClientError>;

    /// Runs the configured assay and returns its counts.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn run_assay(&mut self, chip: ChipId) -> Result<AssayOutcome, ClientError>;

    /// Streams `frames` frames from a neuro chip at a fixed logical
    /// start time, so repeat windows are bit-exact.
    ///
    /// # Errors
    /// Transport or typed server failures.
    fn stream_frames(
        &mut self,
        chip: ChipId,
        frames: u32,
        culture: &CultureSpec,
    ) -> Result<NeuroStream, ClientError>;

    /// Sleeps for a backoff delay. The trait owns this so tests can
    /// observe (or skip) pauses without touching a clock in the loop.
    fn pause_ms(&mut self, delay_ms: u64);
}

/// [`ControlLink`] over a live [`StationClient`].
#[derive(Debug)]
pub struct StationLink {
    client: StationClient,
}

impl StationLink {
    /// Wraps a connected client.
    #[must_use]
    pub fn new(client: StationClient) -> Self {
        Self { client }
    }

    /// The wrapped client, for protocol calls outside the trait.
    pub fn client_mut(&mut self) -> &mut StationClient {
        &mut self.client
    }
}

impl ControlLink for StationLink {
    fn attach_neuro(&mut self, spec: &NeuroChipSpec) -> Result<AttachedChip, ClientError> {
        self.client.attach_neuro(spec)
    }

    fn attach_dna(&mut self, spec: &DnaChipSpec) -> Result<AttachedChip, ClientError> {
        self.client.attach_dna(spec)
    }

    fn detach(&mut self, chip: ChipId) -> Result<(), ClientError> {
        self.client.detach(chip)
    }

    fn configure_assay(
        &mut self,
        chip: ChipId,
        probes: Vec<String>,
        targets: Vec<TargetSpec>,
    ) -> Result<(), ClientError> {
        self.client.configure_assay(chip, probes, targets)
    }

    fn calibrate(&mut self, chip: ChipId) -> Result<CalibrationCounts, ClientError> {
        self.client.calibrate(chip)
    }

    fn health(&mut self, chip: ChipId) -> Result<YieldSummary, ClientError> {
        self.client.health(chip)
    }

    fn mask_pixels(&mut self, chip: ChipId, pixels: &[u32]) -> Result<u32, ClientError> {
        self.client.mask_pixels(chip, pixels)
    }

    fn inject_faults(&mut self, chip: ChipId, plan: FaultPlanSpec) -> Result<(), ClientError> {
        self.client.inject_faults(chip, plan)
    }

    fn run_assay(&mut self, chip: ChipId) -> Result<AssayOutcome, ClientError> {
        self.client.run_assay(chip, false)
    }

    fn stream_frames(
        &mut self,
        chip: ChipId,
        frames: u32,
        culture: &CultureSpec,
    ) -> Result<NeuroStream, ClientError> {
        // Fixed t0: the chip model re-seeds per recording, so the same
        // window replays bit-exactly and recovery is measurable against
        // a stable reference.
        self.client
            .stream_neuro(chip, frames, 0, Seconds::new(0.0), culture)
    }

    fn pause_ms(&mut self, delay_ms: u64) {
        thread::sleep(Duration::from_millis(delay_ms));
    }
}
