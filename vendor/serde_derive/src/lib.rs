//! No-op `Serialize`/`Deserialize` derives for the offline serde facade.
//!
//! The facade's traits are empty markers, so the derives only need to name
//! the type being derived for — including its generic parameters — and
//! emit an empty `impl`. The input item is parsed directly from the token
//! stream (no `syn`/`quote` available offline).

use proc_macro::{TokenStream, TokenTree};

/// One parsed generic parameter: declaration (bounds kept, defaults
/// stripped) and bare name usable in the type position.
struct GenericParam {
    decl: String,
    name: String,
}

struct ParsedItem {
    name: String,
    generics: Vec<GenericParam>,
}

/// Extracts the item name and generic-parameter list from a
/// struct/enum/union definition.
fn parse_item(input: TokenStream) -> ParsedItem {
    let mut tokens = input.into_iter().peekable();

    // Find the `struct` / `enum` / `union` keyword, skipping attributes,
    // doc comments and visibility.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Ident(id))
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => break name.to_string(),
                    other => panic!("expected type name after item keyword, got {other:?}"),
                }
            }
            Some(_) => continue,
            None => panic!("no struct/enum/union found in derive input"),
        }
    };

    // Optional `<...>` generics directly after the name.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut raw: Vec<TokenTree> = Vec::new();
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(ref p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                raw.push(tt);
            }
            generics = split_params(&raw);
        }
    }

    ParsedItem { name, generics }
}

/// Splits a generics token list at top-level commas and derives each
/// parameter's declaration (default stripped) and bare name.
fn split_params(raw: &[TokenTree]) -> Vec<GenericParam> {
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0usize;
    for tt in raw {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        params.push(parse_param(&current));
                        current.clear();
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        params.push(parse_param(&current));
    }
    params
}

/// Parses one parameter's tokens into its declaration and bare name.
fn parse_param(tokens: &[TokenTree]) -> GenericParam {
    // Declaration: everything before a top-level `=` (default value).
    let mut depth = 0usize;
    let mut decl_tokens: Vec<TokenTree> = Vec::new();
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                '=' if depth == 0 => break,
                _ => {}
            }
        }
        decl_tokens.push(tt.clone());
    }
    let decl = decl_tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");

    // Name: `'lifetime`, `const N`, or the first ident.
    let name = match &decl_tokens[..] {
        [TokenTree::Punct(p), TokenTree::Ident(id), ..] if p.as_char() == '\'' => {
            format!("'{id}")
        }
        [TokenTree::Ident(kw), TokenTree::Ident(id), ..] if kw.to_string() == "const" => {
            id.to_string()
        }
        [TokenTree::Ident(id), ..] => id.to_string(),
        other => panic!("unsupported generic parameter: {other:?}"),
    };

    GenericParam { decl, name }
}

fn empty_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let item = parse_item(input);
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(item.generics.iter().map(|p| p.decl.clone()));
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let type_args = if item.generics.is_empty() {
        String::new()
    } else {
        format!(
            "<{}>",
            item.generics
                .iter()
                .map(|p| p.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let trait_args = extra_lifetime
        .map(|lt| format!("<{lt}>"))
        .unwrap_or_default();
    format!(
        "impl{impl_generics} {trait_path}{trait_args} for {name}{type_args} {{}}",
        name = item.name
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives the facade's empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "serde::Serialize", None)
}

/// Derives the facade's empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "serde::Deserialize", Some("'de"))
}
