//! Extension experiment E-X3: noise floors of the two readout paths.
//!
//! The paper's detection limits (1 pA currents, 100 µV potentials) are set
//! by noise. This experiment measures, in simulation, (a) the counting
//! noise of the DNA pixel's converter vs current — shot-noise limited at
//! the bottom of the range — and (b) the spectral noise floor of a neural
//! channel, and checks both against the analytic models in
//! `bsa_circuit::noise`.

use bsa_bench::{banner, eng, sig, Table};
use bsa_circuit::noise::{shot_current_density, white_rms};
use bsa_core::dna_chip::{DnaPixel, DnaPixelConfig};
use bsa_core::neuro_chip::{ChainConfig, ChannelChain};
use bsa_dsp::spectrum::Periodogram;
use bsa_dsp::stats::RunningStats;
use bsa_units::{Ampere, Hertz, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E-X3",
        "§2/§3 detection limits (1 pA, 100 µV)",
        "shot noise bounds the converter at low currents; channel noise bounds the 100 µV floor",
    );

    // (a) Converter counting noise vs current.
    let mut rng = SmallRng::seed_from_u64(1);
    let mut t = Table::new(
        "DNA converter: relative count noise over one 10 s frame",
        &[
            "I_sensor",
            "mean count",
            "σ(count)",
            "relative",
            "shot-limit prediction",
        ],
    );
    let frame = Seconds::new(10.0);
    for i_val in [1e-12, 10e-12, 100e-12, 1e-9, 10e-9] {
        let i = Ampere::new(i_val);
        let mut pixel = DnaPixel::nominal(DnaPixelConfig::default());
        let stats: RunningStats = (0..400)
            .map(|_| pixel.convert(i, frame, &mut rng).count as f64)
            .collect();
        // Shot-limit: σ_N/N = sqrt(1/(N·n_e)) with n_e electrons per ramp,
        // plus the ±1 quantization floor.
        let n_e = 100e-15 / bsa_units::consts::ELEMENTARY_CHARGE;
        let n = stats.mean();
        let predicted = ((n / n_e + 1.0 / 12.0).sqrt()) / n;
        t.add_row(vec![
            eng(i_val, "A"),
            sig(stats.mean(), 4),
            sig(stats.std_dev(), 3),
            format!("{:.2e}", stats.rel_spread()),
            format!("{predicted:.2e}"),
        ]);
    }
    t.print();
    println!();
    println!(
        "Shot density at 1 pA: {} — integrated over the frame this is the",
        eng(shot_current_density(Ampere::from_pico(1.0)), "A²/Hz")
    );
    println!("counting fluctuation the table shows; the converter is shot-noise-limited.");
    println!();

    // (b) Neural channel noise spectrum at zero signal.
    let mut chain = ChannelChain::sample(ChainConfig::default(), &mut rng);
    chain.calibrate();
    let fs = Hertz::from_kilo(2.0); // per-pixel sample rate at 2 kfps
    let dwell = Seconds::from_nano(488.0);
    let samples: Vec<f64> = (0..4096)
        .map(|_| {
            chain.reset_settling();
            chain.process_sample(Ampere::ZERO, dwell, &mut rng).value()
        })
        .collect();
    let p = Periodogram::compute(&samples, fs);
    let floor = p.noise_floor(Hertz::new(100.0), Hertz::new(900.0));
    let gain = chain.current_gain() * chain.config().conversion_resistance.value();
    let input_floor_a = floor.sqrt() / gain;
    let mut t = Table::new(
        "Neural channel output noise (zero signal, per-pixel 2 kS/s)",
        &["quantity", "value"],
    );
    t.add_row(vec![
        "output PSD floor".into(),
        format!("{:.2e} V²/Hz", floor),
    ]);
    t.add_row(vec![
        "input-referred current density".into(),
        format!("{} /√Hz", eng(input_floor_a, "A")),
    ]);
    let total_rms = p.band_power(Hertz::new(1.0), Hertz::new(1000.0)).sqrt();
    t.add_row(vec![
        "output RMS (1 Hz – 1 kHz)".into(),
        eng(total_rms, "V"),
    ]);
    let spec_rms = white_rms(
        (chain.config().input_noise.value() * gain).powi(2),
        Hertz::new(1.0),
    );
    t.add_row(vec!["per-sample RMS from spec".into(), eng(spec_rms, "V")]);
    let input_v = total_rms / gain / 24e-6 * 1e6; // vs a 24 µS/0.8 pixel
    t.add_row(vec![
        "input-referred voltage RMS".into(),
        format!("{:.1} µV (vs the 100 µV floor)", input_v),
    ]);
    let slope = p.loglog_slope(Hertz::new(20.0), Hertz::new(800.0));
    t.add_row(vec![
        "PSD log-log slope".into(),
        format!("{slope:.2} (white ≈ 0)"),
    ]);
    t.print();
}
