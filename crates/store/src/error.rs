//! Typed store failures. Every way a segment file can be malformed,
//! truncated or misused maps to a [`StoreError`] variant — the reader and
//! writer have no panicking paths.

use std::fmt;
use std::io;

/// Why a store operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A magic marker (segment header or index footer) was wrong.
    BadMagic {
        /// Which marker was being checked.
        what: &'static str,
    },
    /// The segment declares a format version this build does not read.
    UnsupportedVersion {
        /// The version actually stored.
        got: u16,
    },
    /// A CRC-8 trailer did not match the bytes it guards.
    BadCrc {
        /// Which structure failed its checksum.
        what: &'static str,
    },
    /// The file ended before the structure it claimed to hold.
    Truncated {
        /// Which structure was being read.
        what: &'static str,
        /// Bytes the reader needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A field held a value outside its domain (impossible length,
    /// non-monotonic index offset, record/index disagreement, …).
    InvalidValue {
        /// Which field was being validated.
        what: &'static str,
    },
    /// A stored kind tag named no known chip kind.
    UnknownKind {
        /// The offending tag byte.
        tag: u8,
    },
    /// The requested frame index is past the end of the segment.
    FrameOutOfRange {
        /// Requested frame index.
        index: u64,
        /// Frames the segment holds.
        frames: u64,
    },
    /// A frame payload had the wrong size for the segment's chip kind.
    PayloadSize {
        /// Bytes one frame of this kind must occupy.
        expected: usize,
        /// Bytes actually seen.
        got: usize,
    },
    /// The recording name contains characters outside `[A-Za-z0-9._-]`,
    /// is empty, starts with a dot, or is longer than 64 bytes.
    BadName {
        /// The rejected name.
        name: String,
    },
    /// A recording with that name already exists in the store root.
    AlreadyExists {
        /// The conflicting name.
        name: String,
    },
    /// No recording with that name exists in the store root.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// The stored spec snapshot is not valid UTF-8.
    BadUtf8,
    /// The writer thread terminated before the segment was finalised.
    WriterGone,
    /// The underlying filesystem failed.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { what } => write!(f, "bad {what} magic"),
            Self::UnsupportedVersion { got } => {
                write!(f, "unsupported segment version {got}")
            }
            Self::BadCrc { what } => write!(f, "{what} CRC mismatch"),
            Self::Truncated {
                what,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated {what}: needed {needed} bytes, had {available}"
                )
            }
            Self::InvalidValue { what } => write!(f, "invalid value for {what}"),
            Self::UnknownKind { tag } => write!(f, "unknown chip kind tag {tag:#04x}"),
            Self::FrameOutOfRange { index, frames } => {
                write!(f, "frame {index} out of range (segment holds {frames})")
            }
            Self::PayloadSize { expected, got } => {
                write!(f, "frame payload of {got} bytes, expected {expected}")
            }
            Self::BadName { name } => write!(f, "invalid recording name {name:?}"),
            Self::AlreadyExists { name } => {
                write!(f, "recording {name:?} already exists")
            }
            Self::NotFound { name } => write!(f, "no recording named {name:?}"),
            Self::BadUtf8 => write!(f, "stored spec snapshot is not valid UTF-8"),
            Self::WriterGone => write!(f, "store writer thread terminated early"),
            Self::Io(err) => write!(f, "store I/O error: {err}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}
