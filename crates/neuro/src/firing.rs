//! Spike-train generators.
//!
//! Cultured networks on the chip fire with characteristic statistics:
//! irregular (Poisson-like) background activity, pacemaker-like regular
//! units, and the population bursts typical of dissociated cultures. The
//! neural-recording experiments drive each simulated neuron from one of
//! these generators.

use bsa_units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A spike-train pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FiringPattern {
    /// Homogeneous Poisson process at the given mean rate (Hz).
    Poisson {
        /// Mean firing rate in Hz.
        rate_hz: f64,
    },
    /// Regular (pacemaker) firing with optional phase and jitter.
    Regular {
        /// Firing rate in Hz.
        rate_hz: f64,
        /// Start phase as a fraction of the period, in `[0, 1)`.
        phase: f64,
        /// Gaussian jitter σ applied to each spike time, in seconds.
        jitter_s: f64,
    },
    /// Bursts of `spikes_per_burst` at `intra_burst_hz`, with burst onsets
    /// following a Poisson process at `burst_rate_hz`.
    Bursting {
        /// Burst-onset rate in Hz.
        burst_rate_hz: f64,
        /// Spikes in each burst.
        spikes_per_burst: u32,
        /// Intra-burst firing rate in Hz.
        intra_burst_hz: f64,
    },
    /// No spontaneous activity.
    Silent,
}

impl FiringPattern {
    /// Generates spike times over `[0, duration)`, sorted ascending.
    pub fn generate<R: Rng>(&self, duration: Seconds, rng: &mut R) -> Vec<Seconds> {
        let mut spikes = match self {
            Self::Poisson { rate_hz } => poisson_train(*rate_hz, duration, rng),
            Self::Regular {
                rate_hz,
                phase,
                jitter_s,
            } => {
                if *rate_hz <= 0.0 {
                    return Vec::new();
                }
                let period = 1.0 / rate_hz;
                let mut t = phase.rem_euclid(1.0) * period;
                let mut out = Vec::new();
                while t < duration.value() {
                    let jitter = if *jitter_s > 0.0 {
                        gaussian(rng) * jitter_s
                    } else {
                        0.0
                    };
                    let jt = t + jitter;
                    if jt >= 0.0 && jt < duration.value() {
                        out.push(Seconds::new(jt));
                    }
                    t += period;
                }
                out
            }
            Self::Bursting {
                burst_rate_hz,
                spikes_per_burst,
                intra_burst_hz,
            } => {
                let onsets = poisson_train(*burst_rate_hz, duration, rng);
                let isi = 1.0 / intra_burst_hz.max(1e-9);
                let mut out = Vec::new();
                for onset in onsets {
                    for k in 0..*spikes_per_burst {
                        let t = onset.value() + k as f64 * isi;
                        if t < duration.value() {
                            out.push(Seconds::new(t));
                        }
                    }
                }
                out
            }
            Self::Silent => Vec::new(),
        };
        spikes.sort_by(|a, b| a.value().total_cmp(&b.value()));
        spikes
    }

    /// Expected mean rate of the pattern in Hz.
    pub fn mean_rate_hz(&self) -> f64 {
        match self {
            Self::Poisson { rate_hz } => *rate_hz,
            Self::Regular { rate_hz, .. } => *rate_hz,
            Self::Bursting {
                burst_rate_hz,
                spikes_per_burst,
                ..
            } => burst_rate_hz * *spikes_per_burst as f64,
            Self::Silent => 0.0,
        }
    }
}

/// Homogeneous Poisson spike train via exponential inter-arrival times.
fn poisson_train<R: Rng>(rate_hz: f64, duration: Seconds, rng: &mut R) -> Vec<Seconds> {
    if rate_hz <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        let u: f64 = 1.0 - rng.gen::<f64>();
        t += -u.ln() / rate_hz;
        if t >= duration.value() {
            return out;
        }
        out.push(Seconds::new(t));
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_matches() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = FiringPattern::Poisson { rate_hz: 10.0 };
        let spikes = p.generate(Seconds::new(100.0), &mut rng);
        let rate = spikes.len() as f64 / 100.0;
        assert!((rate - 10.0).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn poisson_isi_cv_is_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        let p = FiringPattern::Poisson { rate_hz: 50.0 };
        let spikes = p.generate(Seconds::new(200.0), &mut rng);
        let isis: Vec<f64> = spikes.windows(2).map(|w| (w[1] - w[0]).value()).collect();
        let mean = isis.iter().sum::<f64>() / isis.len() as f64;
        let sd = (isis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / isis.len() as f64).sqrt();
        let cv = sd / mean;
        assert!((cv - 1.0).abs() < 0.1, "CV = {cv}");
    }

    #[test]
    fn regular_is_periodic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = FiringPattern::Regular {
            rate_hz: 5.0,
            phase: 0.25,
            jitter_s: 0.0,
        };
        let spikes = p.generate(Seconds::new(2.0), &mut rng);
        assert_eq!(spikes.len(), 10);
        assert!((spikes[0].value() - 0.05).abs() < 1e-12);
        for w in spikes.windows(2) {
            assert!(((w[1] - w[0]).value() - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn regular_jitter_perturbs_but_preserves_count() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = FiringPattern::Regular {
            rate_hz: 10.0,
            phase: 0.5,
            jitter_s: 1e-3,
        };
        let spikes = p.generate(Seconds::new(10.0), &mut rng);
        assert!((spikes.len() as i64 - 100).abs() <= 2);
        let irregular = spikes
            .windows(2)
            .any(|w| ((w[1] - w[0]).value() - 0.1).abs() > 1e-5);
        assert!(irregular);
    }

    #[test]
    fn bursting_produces_clusters() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = FiringPattern::Bursting {
            burst_rate_hz: 1.0,
            spikes_per_burst: 5,
            intra_burst_hz: 200.0,
        };
        let spikes = p.generate(Seconds::new(60.0), &mut rng);
        assert!(spikes.len() > 100, "{} spikes", spikes.len());
        // ISIs split into intra-burst (5 ms) and inter-burst (~1 s) modes.
        let isis: Vec<f64> = spikes.windows(2).map(|w| (w[1] - w[0]).value()).collect();
        let short = isis.iter().filter(|x| **x < 0.01).count();
        let long = isis.iter().filter(|x| **x > 0.1).count();
        assert!(short > 3 * long, "short = {short}, long = {long}");
    }

    #[test]
    fn silent_generates_nothing() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(FiringPattern::Silent
            .generate(Seconds::new(10.0), &mut rng)
            .is_empty());
    }

    #[test]
    fn spikes_are_sorted_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for p in [
            FiringPattern::Poisson { rate_hz: 30.0 },
            FiringPattern::Regular {
                rate_hz: 20.0,
                phase: 0.0,
                jitter_s: 2e-3,
            },
            FiringPattern::Bursting {
                burst_rate_hz: 2.0,
                spikes_per_burst: 4,
                intra_burst_hz: 100.0,
            },
        ] {
            let spikes = p.generate(Seconds::new(5.0), &mut rng);
            assert!(spikes.windows(2).all(|w| w[0] <= w[1]));
            assert!(spikes.iter().all(|t| t.value() >= 0.0 && t.value() < 5.0));
        }
    }

    #[test]
    fn mean_rate_reports_expected_values() {
        assert_eq!(FiringPattern::Silent.mean_rate_hz(), 0.0);
        assert_eq!(FiringPattern::Poisson { rate_hz: 7.0 }.mean_rate_hz(), 7.0);
        let b = FiringPattern::Bursting {
            burst_rate_hz: 2.0,
            spikes_per_burst: 5,
            intra_burst_hz: 100.0,
        };
        assert_eq!(b.mean_rate_hz(), 10.0);
    }

    #[test]
    fn zero_rate_poisson_is_empty() {
        let mut rng = SmallRng::seed_from_u64(8);
        let p = FiringPattern::Poisson { rate_hz: 0.0 };
        assert!(p.generate(Seconds::new(10.0), &mut rng).is_empty());
    }
}
