//! Protocol correctness: `decode ∘ encode = id` for every message type
//! (proptest-generated), and corruption safety — any single flipped byte
//! in a framed message is rejected with a typed error, never a panic and
//! never a wrong-but-valid message.

#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically

use bsa_link::{
    decode_frame, encode_frame, read_message, ChipKind, CultureSpec, DegradationSummary,
    DnaChipSpec, ErrorCode, FaultEntrySpec, FaultKindSpec, FaultPlanSpec, FaultTargetSpec, Message,
    NeuroChipSpec, PixelCount, ProtocolError, RecordingEntry, SerialLinkSummary, StatsSnapshot,
    StreamPayload, TargetSpec, YieldSummary,
};
use proptest::prelude::*;

/// Finite, bit-stable floats: NaN is excluded because `PartialEq` cannot
/// certify a NaN roundtrip, not because the wire cannot carry it (f64
/// travels as raw IEEE-754 bits).
fn wire_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.5e-12),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        -1e15..1e15f64,
    ]
}

fn wire_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7F, 0..24)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn sequence_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..4, 1..16).prop_map(|indices| {
        indices
            .into_iter()
            .map(|i| match i {
                0 => 'A',
                1 => 'C',
                2 => 'G',
                _ => 'T',
            })
            .collect()
    })
}

fn chip_kind() -> impl Strategy<Value = ChipKind> {
    prop_oneof![Just(ChipKind::Dna), Just(ChipKind::Neuro)]
}

fn error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::UnknownChip),
        Just(ErrorCode::WrongChipKind),
        Just(ErrorCode::ChipError),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Internal),
        Just(ErrorCode::StoreError),
    ]
}

fn recording_entry() -> impl Strategy<Value = RecordingEntry> {
    (
        wire_string(),
        chip_kind(),
        any::<u16>(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(name, kind, rows, cols, frames, bytes, config_hash)| RecordingEntry {
                name,
                kind,
                rows,
                cols,
                frames,
                bytes,
                config_hash,
            },
        )
}

fn dna_spec() -> impl Strategy<Value = DnaChipSpec> {
    (any::<u16>(), any::<u16>(), any::<u64>(), wire_f64()).prop_map(
        |(rows, cols, seed, frame_time_s)| DnaChipSpec {
            rows,
            cols,
            seed,
            frame_time_s,
        },
    )
}

fn neuro_spec() -> impl Strategy<Value = NeuroChipSpec> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u64>(),
        wire_f64(),
    )
        .prop_map(
            |(rows, cols, channels, seed, frame_rate_hz)| NeuroChipSpec {
                rows,
                cols,
                channels,
                seed,
                frame_rate_hz,
            },
        )
}

fn culture_spec() -> impl Strategy<Value = CultureSpec> {
    (any::<u64>(), any::<u32>(), wire_f64()).prop_map(|(seed, neuron_count, spike_duration_s)| {
        CultureSpec {
            seed,
            neuron_count,
            spike_duration_s,
        }
    })
}

fn target_spec() -> impl Strategy<Value = TargetSpec> {
    (sequence_string(), wire_f64()).prop_map(|(sequence, concentration_molar)| TargetSpec {
        sequence,
        concentration_molar,
    })
}

fn pixel_count() -> impl Strategy<Value = PixelCount> {
    (any::<u16>(), any::<u16>(), any::<u64>()).prop_map(|(row, col, count)| PixelCount {
        row,
        col,
        count,
    })
}

fn stream_payload() -> impl Strategy<Value = StreamPayload> {
    prop_oneof![
        (
            any::<u32>(),
            1u16..8,
            1u16..8,
            prop::collection::vec(wire_f64(), 0..64)
        )
            .prop_map(|(first_frame, rows, cols, samples)| {
                StreamPayload::NeuroFrames {
                    first_frame,
                    rows,
                    cols,
                    samples,
                }
            }),
        prop::collection::vec(pixel_count(), 0..32)
            .prop_map(|readings| StreamPayload::DnaCounts { readings }),
    ]
}

fn fault_target() -> impl Strategy<Value = FaultTargetSpec> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(row, col)| FaultTargetSpec::Pixel { row, col }),
        (0.0..1.0f64).prop_map(|density| FaultTargetSpec::ArrayWide { density }),
        Just(FaultTargetSpec::Global),
    ]
}

fn fault_kind() -> impl Strategy<Value = FaultKindSpec> {
    prop_oneof![
        Just(FaultKindSpec::DeadPixel),
        any::<u64>().prop_map(|count| FaultKindSpec::StuckCount { count }),
        wire_f64().prop_map(|leakage_a| FaultKindSpec::LeakyElectrode { leakage_a }),
        wire_f64().prop_map(|offset_v| FaultKindSpec::ComparatorDrift { offset_v }),
        any::<bool>().prop_map(|high| FaultKindSpec::ComparatorStuck { high }),
        wire_f64().prop_map(|limit| FaultKindSpec::DacSaturation { limit }),
        wire_f64().prop_map(|limit_v| FaultKindSpec::GainClipping { limit_v }),
        any::<u32>().prop_map(|channel| FaultKindSpec::ChannelLoss { channel }),
        (0.0..1.0f64).prop_map(|rate| FaultKindSpec::SerialBitErrors { rate }),
    ]
}

fn fault_plan() -> impl Strategy<Value = FaultPlanSpec> {
    (
        any::<u64>(),
        prop::collection::vec(
            (fault_target(), fault_kind())
                .prop_map(|(target, kind)| FaultEntrySpec { target, kind }),
            0..8,
        ),
    )
        .prop_map(|(seed, entries)| FaultPlanSpec { seed, entries })
}

fn yield_summary() -> impl Strategy<Value = YieldSummary> {
    (
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        prop::collection::vec(any::<u32>(), 0..8),
        any::<u32>(),
        any::<u32>(),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        prop_oneof![
            Just(DegradationSummary::FullPerformance),
            Just(DegradationSummary::Degraded),
            Just(DegradationSummary::Unusable),
        ],
    )
        .prop_map(
            |(
                (total_pixels, healthy, out_of_family, dead),
                lost_channels,
                total_channels,
                injected,
                (clean_words, recovered_words, unrecovered_words, rereads),
                degradation,
            )| YieldSummary {
                total_pixels,
                healthy,
                out_of_family,
                dead,
                lost_channels,
                total_channels,
                injected,
                serial: SerialLinkSummary {
                    clean_words,
                    recovered_words,
                    unrecovered_words,
                    rereads,
                },
                degradation,
            },
        )
}

fn stats_snapshot() -> impl Strategy<Value = StatsSnapshot> {
    prop::collection::vec(any::<u64>(), 9).prop_map(|v| {
        let get = |i: usize| v.get(i).copied().unwrap_or(0);
        StatsSnapshot {
            sessions_opened: get(0),
            sessions_active: get(1),
            chips_attached: get(2),
            requests: get(3),
            frames_served: get(4),
            frames_dropped: get(5),
            chunks_sent: get(6),
            bytes_sent: get(7),
            queue_peak: get(8),
        }
    })
}

/// Every message variant the protocol defines.
fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        wire_string().prop_map(|client| Message::Hello { client }),
        (wire_string(), any::<u8>())
            .prop_map(|(server, version)| Message::HelloAck { server, version }),
        any::<u64>().prop_map(|token| Message::Ping { token }),
        any::<u64>().prop_map(|token| Message::Pong { token }),
        dna_spec().prop_map(Message::AttachDna),
        neuro_spec().prop_map(Message::AttachNeuro),
        (any::<u32>(), chip_kind(), any::<u16>(), any::<u16>()).prop_map(
            |(chip, kind, rows, cols)| Message::Attached {
                chip,
                kind,
                rows,
                cols
            }
        ),
        any::<u32>().prop_map(|chip| Message::Detach { chip }),
        any::<u32>().prop_map(|chip| Message::Detached { chip }),
        (
            any::<u32>(),
            prop::collection::vec(sequence_string(), 0..8),
            prop::collection::vec(target_spec(), 0..4)
        )
            .prop_map(|(chip, probes, targets)| Message::ConfigureAssay {
                chip,
                probes,
                targets
            }),
        any::<u32>().prop_map(|chip| Message::Calibrate { chip }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(chip, healthy, out_of_family, dead)| Message::CalibrationDone {
                chip,
                healthy,
                out_of_family,
                dead
            }
        ),
        (any::<u32>(), fault_plan()).prop_map(|(chip, plan)| Message::InjectFaults { chip, plan }),
        any::<u32>().prop_map(|chip| Message::QueryHealth { chip }),
        (any::<u32>(), yield_summary())
            .prop_map(|(chip, report)| Message::HealthReport { chip, report }),
        (any::<u32>(), prop::collection::vec(any::<u32>(), 0..16))
            .prop_map(|(chip, pixels)| Message::MaskPixels { chip, pixels }),
        (any::<u32>(), any::<u32>()).prop_map(|(chip, masked)| Message::Masked { chip, masked }),
        (any::<u32>(), any::<bool>()).prop_map(|(chip, stream_counts)| Message::RunAssay {
            chip,
            stream_counts
        }),
        (
            any::<u32>(),
            prop::collection::vec(any::<u64>(), 0..16),
            prop::collection::vec(wire_f64(), 0..16)
        )
            .prop_map(
                |(chip, counts, estimated_currents_a)| Message::AssayResult {
                    chip,
                    counts,
                    estimated_currents_a
                }
            ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            wire_f64(),
            culture_spec()
        )
            .prop_map(|(chip, frames, chunk_frames, t0_s, culture)| {
                Message::StartNeuroStream {
                    chip,
                    frames,
                    chunk_frames,
                    t0_s,
                    culture,
                }
            }),
        (any::<u32>(), any::<u32>(), stream_payload())
            .prop_map(|(chip, seq, payload)| { Message::StreamData { chip, seq, payload } }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(chip, frames_sent, frames_dropped)| Message::StreamEnd {
                chip,
                frames_sent,
                frames_dropped
            }
        ),
        Just(Message::QueryStats),
        stats_snapshot().prop_map(Message::StatsReport),
        Just(Message::Ack),
        (error_code(), wire_string())
            .prop_map(|(code, message)| Message::ErrorReply { code, message }),
        (any::<u32>(), wire_string())
            .prop_map(|(chip, name)| Message::StartRecording { chip, name }),
        (any::<u32>(), wire_string())
            .prop_map(|(chip, name)| Message::RecordingStarted { chip, name }),
        any::<u32>().prop_map(|chip| Message::StopRecording { chip }),
        (
            any::<u32>(),
            wire_string(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(chip, name, frames_written, frames_dropped, bytes_written)| {
                    Message::RecordingStopped {
                        chip,
                        name,
                        frames_written,
                        frames_dropped,
                        bytes_written,
                    }
                }
            ),
        Just(Message::ListRecordings),
        prop::collection::vec(recording_entry(), 0..4)
            .prop_map(|recordings| Message::RecordingList { recordings }),
        (wire_string(), any::<u32>())
            .prop_map(|(name, chunk_frames)| Message::Replay { name, chunk_frames }),
    ]
}

proptest! {
    // Miri interprets every execution (~300× slowdown): keep the sampled
    // suites tiny there so the UB check stays in CI budget, and leave the
    // native runs at full depth.
    #![proptest_config(ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 256 },
        ..ProptestConfig::default()
    })]

    /// decode ∘ encode = id, through the full framing layer.
    #[test]
    fn encode_decode_is_identity(msg in message()) {
        let frame = encode_frame(&msg);
        let back = decode_frame(&frame).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The streaming reader reproduces the same identity.
    #[test]
    fn read_message_is_identity(msg in message()) {
        let frame = encode_frame(&msg);
        let mut cursor = std::io::Cursor::new(frame);
        let back = read_message(&mut cursor).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Any single flipped byte anywhere in a frame is rejected with a
    /// typed error — never a panic, never a wrong-but-valid message.
    /// (CRC-8 detects every burst up to 8 bits, i.e. any one-byte flip.)
    #[test]
    fn single_byte_flip_rejected(msg in message(), pos_seed in any::<u64>(), mask in 1u8..=255) {
        let frame = encode_frame(&msg);
        let pos = (pos_seed % frame.len() as u64) as usize;
        let mut corrupt = frame.clone();
        if let Some(byte) = corrupt.get_mut(pos) {
            *byte ^= mask;
        }
        prop_assert!(decode_frame(&corrupt).is_err(), "flip at {} mask {:#x}", pos, mask);
    }

    /// Arbitrary garbage never decodes to a panic (errors are fine, and
    /// a lucky valid frame is fine too — the property is totality).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_message(&mut cursor);
    }

    /// Truncating a frame anywhere yields a typed error.
    #[test]
    fn truncation_rejected(msg in message(), cut_seed in any::<u64>()) {
        let frame = encode_frame(&msg);
        let cut = (cut_seed % frame.len() as u64) as usize;
        prop_assert!(decode_frame(frame.get(..cut).unwrap()).is_err());
    }
}

/// Exhaustive (not sampled) single-byte corruption over a representative
/// message: every byte position × three masks, via both decoders.
#[test]
fn exhaustive_single_byte_corruption() {
    let msg = Message::StreamData {
        chip: 7,
        seq: 3,
        payload: StreamPayload::NeuroFrames {
            first_frame: 40,
            rows: 2,
            cols: 3,
            samples: vec![0.5, -1.25, 3.75, 0.0, -0.0, 9.5],
        },
    };
    let frame = encode_frame(&msg);
    // Under Miri the positions are strided so the sweep still crosses the
    // magic, version, length, payload and CRC regions without interpreting
    // the full frame × mask product; native runs stay exhaustive.
    let stride = if cfg!(miri) { 13 } else { 1 };
    for pos in (0..frame.len()).step_by(stride) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = frame.clone();
            if let Some(byte) = corrupt.get_mut(pos) {
                *byte ^= mask;
            }
            let direct = decode_frame(&corrupt);
            assert!(
                direct.is_err(),
                "decode_frame accepted flip at {pos} mask {mask:#x}"
            );
            let mut cursor = std::io::Cursor::new(corrupt);
            let streamed = read_message(&mut cursor);
            assert!(
                streamed.is_err(),
                "read_message accepted flip at {pos} mask {mask:#x}"
            );
        }
    }
}

/// The decode-order contract: each header failure maps to its own error.
#[test]
fn error_taxonomy() {
    let frame = encode_frame(&Message::Ack);

    let mut bad_magic = frame.clone();
    if let Some(b) = bad_magic.first_mut() {
        *b ^= 0xFF;
    }
    assert!(matches!(
        decode_frame(&bad_magic),
        Err(ProtocolError::BadMagic { .. })
    ));

    let mut bad_version = frame.clone();
    if let Some(b) = bad_version.get_mut(2) {
        *b = 99;
    }
    assert!(matches!(
        decode_frame(&bad_version),
        Err(ProtocolError::UnsupportedVersion { got: 99 })
    ));

    let mut bad_crc = frame.clone();
    if let Some(b) = bad_crc.last_mut() {
        *b ^= 0x55;
    }
    assert!(matches!(
        decode_frame(&bad_crc),
        Err(ProtocolError::BadCrc { .. })
    ));

    let mut trailing = frame;
    trailing.push(0xAA);
    assert!(matches!(
        decode_frame(&trailing),
        Err(ProtocolError::TrailingBytes { count: 1 })
    ));
}
