// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-link` — the wire protocol between acquisition hosts and the
//! biosensor station.
//!
//! The paper's chips (Thewes et al., DATE 2005) are slaves on a 6-pin
//! serial digital interface; `bsa-core` models that chip-side link in
//! `dna_chip::interface`. This crate is the *host-side* contract: a
//! versioned binary protocol that a controller process
//! ([`bsa-station`](../bsa_station/index.html)) and its clients speak over
//! any ordered byte stream (TCP in practice).
//!
//! Design rules:
//!
//! * **Dependency-free.** The protocol is the boundary between processes;
//!   it must not drag the simulation crates into every client.
//! * **Panic-free decoding.** Every malformed input maps to a typed
//!   [`ProtocolError`]; the decoder never panics and never returns a
//!   wrong-but-valid message for a corrupted frame (the frame CRC covers
//!   header and payload).
//! * **One CRC.** The CRC-8 (polynomial 0x07) that guards the chip's
//!   56-bit serial words lives here in [`crc`] and is reused by
//!   `bsa-core`, so both layers of the stack share a single
//!   implementation.
//!
//! # Frame format
//!
//! ```text
//! +-------+-------+---------+-----------------+-------+
//! | MAGIC | VER   | LEN     | PAYLOAD         | CRC-8 |
//! | 2 B   | 1 B   | 4 B LE  | LEN bytes       | 1 B   |
//! +-------+-------+---------+-----------------+-------+
//!          CRC is computed over every preceding byte.
//! ```
//!
//! The payload is a tagged [`Message`]; see [`message`] for the grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
mod error;
mod frame;
pub mod message;
mod wire;

pub use error::ProtocolError;
pub use frame::{
    decode_frame, decode_frame_prefix, encode_frame, read_message, write_message, FRAME_OVERHEAD,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTOCOL_VERSION,
};
pub use message::{
    ChipId, ChipKind, CultureSpec, DegradationSummary, DnaChipSpec, ErrorCode, FaultEntrySpec,
    FaultKindSpec, FaultPlanSpec, FaultTargetSpec, Message, NeuroChipSpec, PixelCount,
    RecordingEntry, SerialLinkSummary, StatsSnapshot, StreamPayload, TargetSpec, YieldSummary,
};
