//! Label-free impedance detection.
//!
//! "Alternative label-free principles are under development. They focus on
//! the effect of impedance or mass changes at the sensors' surfaces after
//! hybridization" (paper Section 2, refs [7, 8, 10, 11]). This module
//! models the interfacial-impedance route: hybridized DNA displaces ions
//! and water from the double layer, reducing the interface capacitance and
//! increasing the charge-transfer resistance of a Randles-type interface:
//!
//! ```text
//! Z(ω) = R_s + 1 / ( jω·C_dl(θ) + 1/R_ct(θ) )
//! ```

use bsa_units::{Farad, Hertz, Ohm};
use serde::{Deserialize, Serialize};

/// Randles-style interfacial impedance sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpedanceSensor {
    /// Series solution resistance.
    pub r_solution: Ohm,
    /// Double-layer capacitance of the bare (probe-only) surface.
    pub c_dl_bare: Farad,
    /// Relative capacitance drop at full duplex coverage (θ = 1),
    /// typically 1 … 15 %.
    pub c_drop_rel: f64,
    /// Charge-transfer resistance of the bare surface.
    pub r_ct_bare: Ohm,
    /// Multiplicative R_ct increase at full coverage (blocking layer).
    pub r_ct_gain: f64,
    /// Relative measurement noise of a capacitance readout (one sample).
    pub readout_noise_rel: f64,
}

impl Default for ImpedanceSensor {
    /// A (100 µm)² gold site in buffer: 20 µF/cm² ⇒ 2 nF, R_s = 1 kΩ,
    /// R_ct = 100 kΩ, 10 % capacitance window, 0.1 % readout noise.
    fn default() -> Self {
        Self {
            r_solution: Ohm::from_kilo(1.0),
            c_dl_bare: Farad::from_nano(2.0),
            c_drop_rel: 0.10,
            r_ct_bare: Ohm::from_kilo(100.0),
            r_ct_gain: 5.0,
            readout_noise_rel: 1e-3,
        }
    }
}

/// Complex impedance as magnitude and phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpedancePoint {
    /// Frequency of the measurement.
    pub frequency: Hertz,
    /// |Z| in ohms.
    pub magnitude: f64,
    /// Phase in radians (negative = capacitive).
    pub phase: f64,
}

impl ImpedanceSensor {
    /// Interface capacitance at duplex coverage `theta`.
    pub fn capacitance(&self, theta: f64) -> Farad {
        self.c_dl_bare * (1.0 - self.c_drop_rel * theta.clamp(0.0, 1.0))
    }

    /// Charge-transfer resistance at coverage `theta`.
    pub fn charge_transfer_resistance(&self, theta: f64) -> Ohm {
        self.r_ct_bare * (1.0 + (self.r_ct_gain - 1.0) * theta.clamp(0.0, 1.0))
    }

    /// Complex impedance at frequency `f` and coverage `theta`.
    pub fn impedance_at(&self, f: Hertz, theta: f64) -> ImpedancePoint {
        let w = 2.0 * std::f64::consts::PI * f.value();
        let c = self.capacitance(theta).value();
        let g = 1.0 / self.charge_transfer_resistance(theta).value();
        // Y = G + jωC; Z_int = 1/Y.
        let denom = g * g + (w * c) * (w * c);
        let re_int = g / denom;
        let im_int = -w * c / denom;
        let re = self.r_solution.value() + re_int;
        let im = im_int;
        ImpedancePoint {
            frequency: f,
            magnitude: (re * re + im * im).sqrt(),
            phase: im.atan2(re),
        }
    }

    /// Impedance spectrum over logarithmically spaced frequencies.
    pub fn spectrum(
        &self,
        f_lo: Hertz,
        f_hi: Hertz,
        points: usize,
        theta: f64,
    ) -> Vec<ImpedancePoint> {
        bsa_units::sweep::logspace(f_lo.value(), f_hi.value(), points)
            .into_iter()
            .map(|f| self.impedance_at(Hertz::new(f), theta))
            .collect()
    }

    /// Relative capacitance signal for coverage `theta`:
    /// (C(0) − C(θ)) / C(0) — the quantity a capacitance readout measures.
    pub fn relative_signal(&self, theta: f64) -> f64 {
        1.0 - self.capacitance(theta).value() / self.c_dl_bare.value()
    }

    /// Smallest coverage detectable at SNR = 3 with one readout sample.
    pub fn minimum_detectable_coverage(&self) -> f64 {
        (3.0 * self.readout_noise_rel / self.c_drop_rel).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_drops_with_coverage() {
        let s = ImpedanceSensor::default();
        assert!(s.capacitance(1.0) < s.capacitance(0.5));
        assert!(s.capacitance(0.5) < s.capacitance(0.0));
        let rel = s.capacitance(1.0).value() / s.capacitance(0.0).value();
        assert!((rel - 0.9).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_clamped() {
        let s = ImpedanceSensor::default();
        assert_eq!(s.capacitance(2.0), s.capacitance(1.0));
        assert_eq!(s.capacitance(-1.0), s.capacitance(0.0));
    }

    #[test]
    fn low_frequency_impedance_approaches_rs_plus_rct() {
        let s = ImpedanceSensor::default();
        let z = s.impedance_at(Hertz::new(0.01), 0.0);
        let expected = s.r_solution.value() + s.r_ct_bare.value();
        assert!(
            (z.magnitude - expected).abs() / expected < 0.01,
            "|Z| = {}",
            z.magnitude
        );
    }

    #[test]
    fn high_frequency_impedance_approaches_rs() {
        let s = ImpedanceSensor::default();
        let z = s.impedance_at(Hertz::from_mega(10.0), 0.0);
        assert!(
            (z.magnitude - s.r_solution.value()).abs() / s.r_solution.value() < 0.01,
            "|Z| = {}",
            z.magnitude
        );
        assert!(z.phase.abs() < 0.1, "phase ≈ 0 at HF");
    }

    #[test]
    fn mid_band_phase_is_capacitive() {
        let s = ImpedanceSensor::default();
        let z = s.impedance_at(Hertz::new(1000.0), 0.0);
        assert!(z.phase < -0.5, "phase = {}", z.phase);
    }

    #[test]
    fn hybridization_shifts_the_spectrum() {
        let s = ImpedanceSensor::default();
        // At a mid frequency, |Z| grows with coverage (C drops, Rct grows).
        let z0 = s.impedance_at(Hertz::new(100.0), 0.0);
        let z1 = s.impedance_at(Hertz::new(100.0), 1.0);
        assert!(z1.magnitude > z0.magnitude);
    }

    #[test]
    fn spectrum_is_monotone_decreasing_in_frequency() {
        let s = ImpedanceSensor::default();
        let spec = s.spectrum(Hertz::new(1.0), Hertz::from_mega(1.0), 30, 0.3);
        assert_eq!(spec.len(), 30);
        for w in spec.windows(2) {
            assert!(w[1].magnitude <= w[0].magnitude + 1e-9);
        }
    }

    #[test]
    fn relative_signal_linear_in_coverage() {
        let s = ImpedanceSensor::default();
        assert!((s.relative_signal(0.5) - 0.05).abs() < 1e-12);
        assert!((s.relative_signal(1.0) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn detection_limit_is_percent_scale() {
        // 0.1 % noise against a 10 % full-scale window: θ_min = 3 %.
        let s = ImpedanceSensor::default();
        let min = s.minimum_detectable_coverage();
        assert!((min - 0.03).abs() < 1e-12, "θ_min = {min}");
    }
}
