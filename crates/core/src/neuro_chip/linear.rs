//! The calibrated linearized fast path behind the default
//! [`ScanMode::Linearized`](crate::scan::ScanMode) readout.
//!
//! The reference scan spends its per-sample budget on a full EKV
//! `drain_current` solve (two `ln1pexp` transcendentals), an O(all
//! neurons) culture sum and a fresh Box–Muller state per sample. None of
//! that is necessary in steady state:
//!
//! * **Per-pixel transfer coefficients**: around the calibrated operating
//!   point, `ΔI(v_cleft, t) = off + slope·t_frame + gm·v_cleft` to first
//!   order ([`NeuroPixel::linearize`]), with `off`/`slope`/`gm` laid out
//!   in structure-of-arrays buffers parallel to the scan plan entries.
//!   Tables are rebuilt at every recalibration boundary, so droop between
//!   expansion points stays second-order (DESIGN.md §13).
//! * **Precompiled culture source lists**: each pixel's `(neuron,
//!   footprint_weight)` pairs are loop-invariant in position, so
//!   [`Culture::compile_sources`] resolves them once per record call —
//!   and their neuron-major transpose turns the per-sample gather into a
//!   per-frame *scatter*: each neuron passing a conservative activity
//!   window accumulates its waveform into a frame voltage buffer, and the
//!   inner loop just reads one voltage per sample. Both prunings are
//!   *bit-identical* to the reference full sum, because every skipped
//!   contribution is exactly `+0.0` there and buckets scatter in the
//!   reference's ascending-neuron order.
//! * **The chain recursion in registers**: gain, settling factors,
//!   transimpedance and noise scale are per-channel constants
//!   ([`ChannelChain::linear_coeffs`]); the inner loop is a branch-free
//!   multiply-add over contiguous `f64` slices sharing the reference
//!   path's exact arithmetic and its deterministic per-channel RNG
//!   streams. The only divergence from the reference output is the
//!   pixel-current linearization itself.
//!
//! [`NeuroPixel::linearize`]: super::pixel::NeuroPixel::linearize
//! [`ChannelChain::linear_coeffs`]: super::chain::ChannelChain
//! [`Culture::compile_sources`]: bsa_neuro::culture::Culture::compile_sources

use super::chain::{ChainCoeffs, ChannelChain};
use super::pixel::{NeuroPixel, PixelLinearization};
use super::scan::{ChannelPlan, ScanPlan};
use bsa_circuit::noise::GaussianSampler;
use bsa_neuro::culture::{Culture, SourceTable};
use bsa_units::Seconds;
use rand::rngs::SmallRng;

/// One channel's structure-of-arrays coefficient tables, parallel to its
/// [`ChannelPlan`] entries, plus its compiled culture source lists and
/// per-frame scatter scratch. All buffers are reused across rebuilds.
#[derive(Debug, Clone, Default)]
pub(super) struct LinearChannel {
    /// Residual current folded to the frame-start reference:
    /// `offset + slope·(dt_k − t_lin)`, in amperes.
    off: Vec<f64>,
    /// Droop drift in A/s (multiplies the absolute frame start).
    slope: Vec<f64>,
    /// Conversion gain ∂ΔI/∂V_cleft in A/V.
    gm: Vec<f64>,
    /// Clip lower bound (−∞ when the pixel has no clip fault).
    clip_lo: Vec<f64>,
    /// Clip upper bound (+∞ when the pixel has no clip fault).
    clip_hi: Vec<f64>,
    /// Within-frame sample-time offsets, copied from the plan entries.
    dt: Vec<f64>,
    /// Per-entry `(neuron, weight)` source lists for the culture sum.
    sources: SourceTable,
    /// CSR transpose of `sources`: per neuron, the `(entry, weight)`
    /// pairs it feeds. `neuron_off.len()` is the neuron count plus one.
    neuron_off: Vec<u32>,
    /// Pair pool of the transpose, bucketed by neuron.
    neuron_pairs: Vec<(u32, f64)>,
    /// Per-frame cleft-voltage accumulator, one slot per plan entry
    /// (scratch, rewritten every frame).
    vbuf: Vec<f64>,
}

/// The fast path's complete per-die state: per-channel coefficient SoA,
/// per-channel chain constants, and the staleness flag that drives
/// re-linearization at recalibration boundaries.
#[derive(Debug, Clone, Default)]
pub(super) struct LinearState {
    channels: Vec<LinearChannel>,
    chain: Vec<ChainCoeffs>,
    fresh: bool,
}

impl LinearState {
    /// Whether the coefficient tables match the die's current calibration
    /// and fault state.
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// Marks the tables stale. Called whenever calibration state or
    /// injected faults change.
    pub fn invalidate(&mut self) {
        self.fresh = false;
    }

    /// Rebuilds every coefficient table by linearizing each pixel around
    /// the operating point at `t_lin` (the calibration instant during a
    /// recalibrating record). Lost channels are skipped entirely — the
    /// scan never reads their tables. Warm rebuilds allocate nothing.
    pub fn rebuild(
        &mut self,
        plan: &ScanPlan,
        pixels: &[NeuroPixel],
        chains: &[ChannelChain],
        dwell: Seconds,
        t_lin: Seconds,
    ) {
        self.chain.clear();
        self.chain
            .extend(chains.iter().map(|c| c.linear_coeffs(dwell)));
        self.channels
            .resize_with(plan.channels.len(), LinearChannel::default);
        let t0 = t_lin.value();
        for (cp, lc) in plan.channels.iter().zip(self.channels.iter_mut()) {
            lc.off.clear();
            lc.slope.clear();
            lc.gm.clear();
            lc.clip_lo.clear();
            lc.clip_hi.clear();
            lc.dt.clear();
            if cp.lost {
                continue;
            }
            for e in &cp.entries {
                let lin = pixels
                    .get(e.idx)
                    .map_or(PixelLinearization::DEAD, |p| p.linearize(t_lin));
                lc.off
                    .push(lin.offset.value() + lin.slope_a_per_s * (e.dt - t0));
                lc.slope.push(lin.slope_a_per_s);
                lc.gm.push(lin.gm.value());
                let (lo, hi) = match e.clip {
                    Some(l) => (-l.value().abs(), l.value().abs()),
                    None => (f64::NEG_INFINITY, f64::INFINITY),
                };
                lc.clip_lo.push(lo);
                lc.clip_hi.push(hi);
                lc.dt.push(e.dt);
            }
        }
        self.fresh = true;
    }

    /// Compiles per-entry culture source lists for every live channel into
    /// the pooled tables, returning the total pair count. Runs once per
    /// record call (the culture is a per-call input, not die state).
    ///
    /// Alongside the per-entry (CSR) table this builds its transpose —
    /// per neuron, the entries it feeds — which is what the scan actually
    /// consumes: each frame scatters only the *active* neurons' waveforms
    /// into a voltage buffer, so quiet neurons cost nothing per sample.
    pub fn compile_culture(&mut self, plan: &ScanPlan, culture: &Culture) -> usize {
        self.channels
            .resize_with(plan.channels.len(), LinearChannel::default);
        let neuron_count = culture.neurons().len();
        let mut pairs = 0usize;
        for (cp, lc) in plan.channels.iter().zip(self.channels.iter_mut()) {
            if cp.lost {
                culture.compile_sources(std::iter::empty(), &mut lc.sources);
            } else {
                culture.compile_sources(cp.entries.iter().map(|e| (e.x, e.y)), &mut lc.sources);
            }
            pairs += lc.sources.pair_count();
            transpose_sources(
                &lc.sources,
                neuron_count,
                &mut lc.neuron_off,
                &mut lc.neuron_pairs,
            );
        }
        pairs
    }
}

/// Builds the neuron-major transpose of a per-entry source table: bucket
/// counts, prefix sum, then a fill pass with per-neuron cursors. Entry
/// order within each bucket is ascending, matching the ascending-neuron
/// order inside each entry's source list, so scattering buckets in neuron
/// order reproduces the reference per-sample sum bit for bit.
fn transpose_sources(
    sources: &SourceTable,
    neuron_count: usize,
    neuron_off: &mut Vec<u32>,
    neuron_pairs: &mut Vec<(u32, f64)>,
) {
    neuron_off.clear();
    neuron_off.resize(neuron_count + 1, 0);
    for point in 0..sources.points() {
        for pair in sources.sources(point) {
            if let Some(count) = neuron_off.get_mut(pair.neuron as usize + 1) {
                *count += 1;
            }
        }
    }
    let mut running = 0u32;
    for off in neuron_off.iter_mut() {
        running += *off;
        *off = running;
    }
    neuron_pairs.clear();
    neuron_pairs.resize(running as usize, (0, 0.0));
    let mut cursor: Vec<u32> = neuron_off.clone();
    for point in 0..sources.points() {
        for pair in sources.sources(point) {
            let Some(c) = cursor.get_mut(pair.neuron as usize) else {
                continue;
            };
            if let Some(slot) = neuron_pairs.get_mut(*c as usize) {
                *slot = (point as u32, pair.weight);
                *c += 1;
            }
        }
    }
}

/// Scans one channel's column stripe for a chunk of frames through the
/// linearized tables. Mirrors the reference `scan_channel` sample for
/// sample: same per-channel RNG stream, same draw count, same chain
/// arithmetic — only the pixel current is the first-order model instead
/// of the full solve. A lost channel writes zeros and returns without
/// touching tables, culture or RNG.
#[allow(clippy::too_many_arguments)]
fn scan_channel_linear(
    plan: &ChannelPlan,
    lc: &mut LinearChannel,
    cc: ChainCoeffs,
    rng: &mut SmallRng,
    culture: &Culture,
    frame_starts: &[f64],
    frame_period: Seconds,
    rows: usize,
    cols_per_channel: usize,
    out: &mut [f64],
) {
    if plan.lost {
        out.fill(0.0);
        return;
    }
    let frame_len = rows * cols_per_channel;
    let neurons = culture.neurons();
    lc.vbuf.clear();
    lc.vbuf.resize(frame_len, 0.0);
    // Channels whose stripe contains no clipped pixel skip the clamp
    // entirely: clamping against (−∞, +∞) is the identity, so the output
    // is bitwise unchanged — only the two bound loads and compares go.
    let any_clip = lc
        .clip_lo
        .iter()
        .zip(lc.clip_hi.iter())
        .any(|(lo, hi)| lo.is_finite() || hi.is_finite());
    for (frame_out, &fs) in out.chunks_mut(frame_len).zip(frame_starts) {
        // Scatter phase: accumulate each active neuron's waveform into the
        // frame voltage buffer. The activity window is conservative — a
        // neuron skipped here contributes exactly zero to every sample of
        // this frame — and buckets are scattered in ascending neuron
        // order, which is the reference sum's per-sample pair order, so
        // the accumulated voltages are bitwise identical to the gather.
        let f_from = Seconds::new(fs);
        let f_to = f_from + frame_period;
        lc.vbuf.fill(0.0);
        for (ni, n) in neurons.iter().enumerate() {
            let pad = n.activity_padding();
            if !n.active_in(f_from - pad, f_to + pad) {
                continue;
            }
            let b_lo = lc.neuron_off.get(ni).map_or(0, |&o| o as usize);
            let b_hi = lc.neuron_off.get(ni + 1).map_or(b_lo, |&o| o as usize);
            for &(e, w) in lc.neuron_pairs.get(b_lo..b_hi).unwrap_or(&[]) {
                let (Some(slot), Some(&dt_e)) =
                    (lc.vbuf.get_mut(e as usize), lc.dt.get(e as usize))
                else {
                    continue;
                };
                *slot += (n.temporal_at(Seconds::new(fs + dt_e)) * w).value();
            }
        }

        // Fold the full linearized pixel current into the buffer in place:
        // i = off + slope·t_frame + gm·v, the exact expression (and FP
        // association) the gather loop used per sample. The inner loop
        // then streams one current per sample.
        for (((ib, &off_k), &slope_k), &gm_k) in lc
            .vbuf
            .iter_mut()
            .zip(lc.off.iter())
            .zip(lc.slope.iter())
            .zip(lc.gm.iter())
        {
            *ib = off_k + slope_k * fs + gm_k * *ib;
        }

        if any_clip {
            let row_iter = frame_out
                .chunks_exact_mut(cols_per_channel)
                .zip(lc.vbuf.chunks_exact(cols_per_channel))
                .zip(lc.clip_lo.chunks_exact(cols_per_channel))
                .zip(lc.clip_hi.chunks_exact(cols_per_channel));
            for (((row_out, ib), lo), hi) in row_iter {
                // Row boundary: settling and noise-pair state restart,
                // exactly as the reference chain's `reset_settling`.
                let mut last = 0.0f64;
                let mut noise = GaussianSampler::new();
                for (((y, &i), &lo_k), &hi_k) in row_out.iter_mut().zip(ib).zip(lo).zip(hi) {
                    let z = noise.sample(rng);
                    let noisy = i + cc.sigma * z;
                    let target = noisy * cc.gain;
                    let after_a = target + (last - target) * cc.alpha_a;
                    let o = after_a + (last - after_a) * cc.alpha_b;
                    last = o;
                    *y = (o * cc.r).clamp(lo_k, hi_k);
                }
            }
        } else {
            let row_iter = frame_out
                .chunks_exact_mut(cols_per_channel)
                .zip(lc.vbuf.chunks_exact(cols_per_channel));
            for (row_out, ib) in row_iter {
                let mut last = 0.0f64;
                let mut noise = GaussianSampler::new();
                for (y, &i) in row_out.iter_mut().zip(ib) {
                    let z = noise.sample(rng);
                    let noisy = i + cc.sigma * z;
                    let target = noisy * cc.gain;
                    let after_a = target + (last - target) * cc.alpha_a;
                    let o = after_a + (last - after_a) * cc.alpha_b;
                    last = o;
                    *y = o * cc.r;
                }
            }
        }
    }
}

/// Scans a chunk of frames across all channels through the linearized
/// tables, one scoped task per channel (same fan-out as the reference
/// `scan_chunk`). `stripe` layout and determinism contract are identical.
#[allow(clippy::too_many_arguments)]
pub(super) fn scan_chunk_linear(
    plan: &ScanPlan,
    state: &mut LinearState,
    rngs: &mut [SmallRng],
    culture: &Culture,
    frame_starts: &[f64],
    frame_period: Seconds,
    stripe: &mut [f64],
    threads: usize,
) {
    let rows = plan.rows;
    let cpc = plan.cols_per_channel;
    let block = frame_starts.len() * rows * cpc;
    let LinearState {
        channels, chain, ..
    } = state;
    debug_assert_eq!(stripe.len(), channels.len() * block);

    let mut work: Vec<(
        &ChannelPlan,
        &mut LinearChannel,
        ChainCoeffs,
        &mut SmallRng,
        &mut [f64],
    )> = plan
        .channels
        .iter()
        .zip(channels.iter_mut())
        .zip(chain.iter().copied())
        .zip(rngs.iter_mut())
        .zip(stripe.chunks_mut(block))
        .map(|((((cp, lc), cc), rng), out)| (cp, lc, cc, rng, out))
        .collect();

    if threads <= 1 {
        for (cp, lc, cc, rng, out) in &mut work {
            scan_channel_linear(
                cp,
                lc,
                *cc,
                rng,
                culture,
                frame_starts,
                frame_period,
                rows,
                cpc,
                out,
            );
        }
        return;
    }

    #[cfg(feature = "parallel")]
    rayon::scope(|s| {
        for (cp, lc, cc, rng, out) in work {
            s.spawn(move |_| {
                scan_channel_linear(
                    cp,
                    lc,
                    cc,
                    rng,
                    culture,
                    frame_starts,
                    frame_period,
                    rows,
                    cpc,
                    out,
                );
            });
        }
    });
    #[cfg(not(feature = "parallel"))]
    for (cp, lc, cc, rng, out) in &mut work {
        scan_channel_linear(
            cp,
            lc,
            *cc,
            rng,
            culture,
            frame_starts,
            frame_period,
            rows,
            cpc,
            out,
        );
    }
}
