//! CRC-8 with polynomial 0x07, the single checksum shared by the chip
//! serial link (`bsa-core::dna_chip::interface`, 56-bit words) and the
//! host wire protocol (frame trailer).
//!
//! Parameters: polynomial x⁸+x²+x+1 (0x07), initial value 0x00, MSB-first,
//! no reflection, no final XOR — the same generator the paper's serial
//! interface uses to protect count words.
//!
//! CRC-8 detects every single-byte corruption (any burst up to 8 bits),
//! which is the property the corruption tests in `crates/link/tests/`
//! exercise exhaustively.

/// Generator polynomial x⁸ + x² + x + 1.
pub const CRC8_POLY: u8 = 0x07;

/// Streaming CRC-8 state, for callers that feed bytes incrementally
/// (e.g. framing code hashing a header and a payload held in separate
/// buffers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Crc8 {
    state: u8,
}

impl Crc8 {
    /// Fresh state (initial value 0x00).
    #[must_use]
    pub const fn new() -> Self {
        Self { state: 0 }
    }

    /// Folds one byte into the state, MSB first.
    pub fn update(&mut self, byte: u8) {
        let mut crc = self.state ^ byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ CRC8_POLY
            } else {
                crc << 1
            };
        }
        self.state = crc;
    }

    /// Folds a byte slice into the state.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.update(b);
        }
    }

    /// Returns the checksum of everything fed so far.
    #[must_use]
    pub const fn finish(self) -> u8 {
        self.state
    }
}

/// One-shot CRC-8 over a byte slice.
#[must_use]
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = Crc8::new();
    crc.update_bytes(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard CRC-8/SMBUS-style check value for "123456789" with
        // poly 0x07, init 0x00, no reflect, no xorout is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
        assert_eq!(crc8(&[]), 0x00);
        assert_eq!(crc8(&[0x00]), 0x00);
        assert_eq!(crc8(&[0x01]), 0x07);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox";
        let (a, b) = data.split_at(7);
        let mut crc = Crc8::new();
        crc.update_bytes(a);
        crc.update_bytes(b);
        assert_eq!(crc.finish(), crc8(data));
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0u8..64).collect();
        let clean = crc8(&data);
        for i in 0..data.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = data.clone();
                if let Some(byte) = corrupt.get_mut(i) {
                    *byte ^= mask;
                }
                assert_ne!(crc8(&corrupt), clean, "flip at {i} mask {mask:#x}");
            }
        }
    }
}
