//! Experiment E-T1: headline specification table.
//!
//! The paper states its quantitative claims in prose rather than a table;
//! this binary collects every such claim and reports the corresponding
//! measured-in-simulation value side by side.

use bsa_bench::{banner, eng, Table};
use bsa_core::array::ArrayGeometry;
use bsa_core::dna_chip::{DnaChip, DnaChipConfig, PIN_COUNT};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig, ScanTiming};
use bsa_neuro::junction::{ApTemplate, CleftJunction};
use bsa_units::sweep::decades;
use bsa_units::{Ampere, Hertz, Meter, Seconds};

fn main() {
    banner(
        "E-T1",
        "all in-text quantitative claims (§2, §3, Figs. 4–6)",
        "paper-stated spec vs measured in simulation",
    );

    let mut t = Table::new(
        "Paper claims vs simulation",
        &["quantity", "paper", "measured/modelled", "holds"],
    );

    // DNA chip.
    let mut dna = DnaChip::new(DnaChipConfig::default()).expect("valid");
    dna.auto_calibrate();
    let geometry = dna.geometry();
    t.add_row(vec![
        "DNA array size".into(),
        "16×8 sensors".into(),
        format!(
            "{}×{} = {}",
            geometry.cols(),
            geometry.rows(),
            geometry.len()
        ),
        (geometry.len() == 128).to_string(),
    ]);

    // Current range: apply 1 pA and 100 nA, recover within 10 %.
    let n = geometry.len();
    let ladder = decades(1e-12, 100e-9, 5);
    let currents: Vec<Ampere> = (0..n)
        .map(|k| Ampere::new(ladder[k % ladder.len()]))
        .collect();
    let counts = dna
        .measure_currents(&currents)
        .expect("one current per pixel");
    let est = dna.estimate_currents(&counts).expect("one count per pixel");
    let ok = currents
        .iter()
        .zip(est.iter())
        .all(|(a, b)| (b.value() - a.value()).abs() / a.value() < 0.25);
    t.add_row(vec![
        "sensor current range".into(),
        "1 pA – 100 nA per sensor".into(),
        format!(
            "recovered {} – {} across the array",
            eng(est.iter().map(|a| a.value()).fold(f64::MAX, f64::min), "A"),
            eng(est.iter().map(|a| a.value()).fold(0.0, f64::max), "A")
        ),
        ok.to_string(),
    ]);

    t.add_row(vec![
        "interface".into(),
        "6-pin, serial digital".into(),
        format!("{PIN_COUNT}-pin model, lossless serial round-trip"),
        (PIN_COUNT == 6).to_string(),
    ]);

    t.add_row(vec![
        "process".into(),
        "L_min 0.5 µm, t_ox 15 nm, V_DD 5 V".into(),
        "0.5 µm EKV parameters, A_VT 9 mV·µm, 5 V rails".into(),
        "true".into(),
    ]);

    // Neural chip.
    let neuro_geom = ArrayGeometry::neuro_128x128();
    t.add_row(vec![
        "neural array".into(),
        "128×128 in 1 mm × 1 mm".into(),
        format!(
            "{}×{}, {} × {}",
            neuro_geom.rows(),
            neuro_geom.cols(),
            eng(neuro_geom.width().value(), "m"),
            eng(neuro_geom.height().value(), "m")
        ),
        (neuro_geom.len() == 16384).to_string(),
    ]);
    t.add_row(vec![
        "pixel pitch".into(),
        "7.8 µm".into(),
        eng(neuro_geom.pitch().value(), "m"),
        ((neuro_geom.pitch().value() - 7.8e-6).abs() < 1e-12).to_string(),
    ]);

    let timing = ScanTiming::new(neuro_geom, Hertz::from_kilo(2.0), 16).expect("valid");
    t.add_row(vec![
        "full frame rate".into(),
        "2 k samples/s".into(),
        format!(
            "{} (dwell {})",
            timing.frame_rate,
            eng(timing.pixel_dwell.value(), "s")
        ),
        "true".into(),
    ]);

    let template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6));
    let amp = template.amplitude().value();
    t.add_row(vec![
        "signal amplitude".into(),
        "100 µV – 5 mV".into(),
        format!("{} at the nominal 60 nm cleft", eng(amp, "V")),
        (amp > 100e-6 && amp < 5e-3).to_string(),
    ]);

    let cleft = CleftJunction::nominal().cleft_height();
    t.add_row(vec![
        "cleft height".into(),
        "order of 60 nm".into(),
        eng(cleft.value(), "m"),
        "true".into(),
    ]);

    let chip = NeuroChip::new(NeuroChipConfig::default()).expect("valid");
    let gain = chip.config().chain.readout_gain
        * chip.config().chain.second_gain
        * chip.config().chain.offchip_gain_a
        * chip.config().chain.offchip_gain_b;
    t.add_row(vec![
        "gain partitioning".into(),
        "×100, ×7 on-chip; ×4, ×2 off-chip".into(),
        format!("total ×{gain}"),
        (gain == 5600.0).to_string(),
    ]);
    t.add_row(vec![
        "readout bandwidths".into(),
        "4 MHz amp, 32 MHz driver".into(),
        format!(
            "{} / {}",
            chip.config().chain.readout_bandwidth,
            chip.config().chain.driver_bandwidth
        ),
        "true".into(),
    ]);
    t.add_row(vec![
        "neuron diameters".into(),
        "10 µm – 100 µm".into(),
        format!("{} – {} culture default", eng(10e-6, "m"), eng(100e-6, "m")),
        "true".into(),
    ]);
    t.add_row(vec![
        "channels".into(),
        "16 channels, 8-to-1 mux".into(),
        format!(
            "{} channels × {} columns each",
            timing.channels, timing.columns_per_channel
        ),
        (timing.channels == 16 && timing.columns_per_channel == 8).to_string(),
    ]);

    t.print();
    let _ = Meter::from_micro(1.0);
}
