//! Seeded unit-safety violations (lint fixture — lexed, never compiled).
//! tilde-comment markers name the expected violation on that line.

pub fn lowpass(
    fc: f64, //~ units.raw-f64
    fs: f64, //~ units.raw-f64
) -> Biquad {
    design(fc, fs)
}

pub fn band_power(psd: &Psd, f_lo: f64, f_hi: f64) -> f64 { //~ units.raw-f64 //~ units.raw-f64
    psd.integrate(f_lo, f_hi)
}

pub fn set_electrode_bias(chip: &mut Chip, bias_voltage: f64) { //~ units.raw-f64
    chip.bias = bias_voltage;
}

pub fn drive_current(sink_current: f64) -> f64 { //~ units.raw-f64
    sink_current * 2.0
}

pub fn integrate_step(state: &mut State, dt: f64) { //~ units.raw-f64
    state.t += dt;
}

pub(crate) fn settle(hold_time_s: f64) -> usize { //~ units.raw-f64
    (hold_time_s * 2000.0) as usize
}

pub fn newtypes_and_dimensionless_are_fine(
    fs: Hertz,
    gain: f64,
    ratio: f64,
    samples: &[f64],
    threshold_sigmas: f64,
) -> f64 {
    fs.value() * gain * ratio * threshold_sigmas + samples.len() as f64
}

fn private_helpers_are_exempt(fs: f64, dt: f64) -> f64 {
    fs * dt
}
