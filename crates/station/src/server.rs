//! The TCP station: accept loop, session spawning, lifecycle.
//!
//! Thread-per-connection over `std::net`: the accept loop hands every
//! connection to a session thread ([`crate::session`]), which itself
//! splits into a reader (request execution) and a writer (bounded
//! outbound queue). Wall-clock time is allowed here — session read
//! timeouts are real timeouts — but never inside the chip crates, whose
//! outputs must stay bit-reproducible (the determinism boundary
//! documented in DESIGN.md §10).

use crate::session::{run_session, SessionLimits};
use crate::stats::StationStats;
use bsa_link::{write_message, ErrorCode, Message, StatsSnapshot};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Station tuning knobs.
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// Listen address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Outbound queue capacity per session, in messages. Backpressure
    /// drops stream chunks beyond this depth.
    pub queue_depth: usize,
    /// Idle-session read timeout; `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Maximum concurrent sessions; further connections are refused with
    /// an `Overloaded` error reply.
    pub max_sessions: u64,
}

impl Default for StationConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            read_timeout: Some(Duration::from_secs(30)),
            max_sessions: 64,
        }
    }
}

/// The running station. Binds with [`Station::bind`].
#[derive(Debug)]
pub struct Station;

impl Station {
    /// Binds the listener and starts the accept loop on a background
    /// thread. Returns once the socket is listening, so `handle.addr()`
    /// is immediately connectable.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, permission, …).
    pub fn bind(config: StationConfig) -> io::Result<StationHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(StationStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let limits = SessionLimits {
            queue_depth: config.queue_depth,
            read_timeout: config.read_timeout,
        };
        let accept_stats = Arc::clone(&stats);
        let accept_shutdown = Arc::clone(&shutdown);
        let max_sessions = config.max_sessions;
        let accept = thread::spawn(move || {
            accept_loop(
                &listener,
                &accept_stats,
                &accept_shutdown,
                &limits,
                max_sessions,
            );
        });
        Ok(StationHandle {
            addr,
            stats,
            shutdown,
            accept: Some(accept),
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    stats: &Arc<StationStats>,
    shutdown: &Arc<AtomicBool>,
    limits: &SessionLimits,
    max_sessions: u64,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Claim the slot atomically (CAS inside): a load-then-add here
        // would let two concurrent accepts both pass the check and admit
        // max_sessions + 1.
        if !stats.try_open_session(max_sessions) {
            refuse(stream);
            continue;
        }
        let session_stats = Arc::clone(stats);
        let session_limits = limits.clone();
        // Detached: the session ends when its client disconnects or
        // times out; shutdown closes the listener, not live sessions.
        thread::spawn(move || {
            run_session(stream, Arc::clone(&session_stats), &session_limits);
            StationStats::sub(&session_stats.sessions_active, 1);
        });
    }
}

/// Tells an over-capacity client why it is being dropped (best-effort).
fn refuse(mut stream: TcpStream) {
    let _ = write_message(
        &mut stream,
        &Message::ErrorReply {
            code: ErrorCode::Overloaded,
            message: "station at max sessions".into(),
        },
    );
}

/// Owner handle for a running station. Dropping it shuts the accept
/// loop down (live sessions run until their clients disconnect).
#[derive(Debug)]
pub struct StationHandle {
    addr: SocketAddr,
    stats: Arc<StationStats>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl StationHandle {
    /// The bound listen address (with the OS-assigned port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the station-wide counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Blocks the calling thread until the accept loop exits (i.e. until
    /// another thread drops/shuts the handle — the server bin parks
    /// here forever).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting new connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for StationHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}
