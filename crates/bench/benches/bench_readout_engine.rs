#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Criterion bench for the parallel, allocation-free readout engine:
//! serial vs parallel neuro frame scans (warm arena) and the DNA chip's
//! buffer-reusing current-to-frequency conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_core::array::ArrayGeometry;
use bsa_core::dna_chip::{DnaChip, DnaChipConfig};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_core::ScanOptions;
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Ampere, Meter, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn culture() -> Culture {
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = CultureConfig {
        neuron_count: 5,
        mean_rate_hz: 20.0,
        ..CultureConfig::default()
    };
    let mut c = Culture::random(&cfg, &mut rng);
    c.generate_spikes(Seconds::from_milli(100.0), &mut rng);
    c
}

fn bench_scan_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("readout_engine");
    group.sample_size(10);
    let cult = culture();
    for (label, opts) in [
        ("serial", ScanOptions::serial()),
        ("parallel", ScanOptions::default()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("record_8_frames_32x32", label),
            &opts,
            |b, &opts| {
                let cfg = NeuroChipConfig {
                    geometry: ArrayGeometry::new(32, 32, Meter::from_micro(7.8)).unwrap(),
                    channels: 4,
                    ..NeuroChipConfig::default()
                };
                let mut chip = NeuroChip::new(cfg).unwrap();
                chip.calibrate(Seconds::ZERO);
                // Warm the arena so the loop measures the steady state.
                let warm = chip.record_with(&cult, Seconds::ZERO, 8, opts);
                chip.recycle(warm);
                b.iter(|| {
                    let r = chip.record_with(&cult, Seconds::ZERO, 8, opts);
                    let n = black_box(r.len());
                    chip.recycle(r);
                    n
                });
            },
        );
    }
    group.finish();
}

fn bench_dna_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("readout_engine");
    group.sample_size(10);
    group.bench_function("dna_convert_16x8", |b| {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        let currents: Vec<Ampere> = (0..chip.geometry().len())
            .map(|k| Ampere::from_nano(1.0 + 0.05 * k as f64))
            .collect();
        let mut counts = Vec::new();
        b.iter(|| {
            chip.measure_currents_into(&currents, &mut counts).unwrap();
            black_box(counts.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scan_modes, bench_dna_conversion);
criterion_main!(benches);
