//! The TCP station: accept loop, session spawning, lifecycle.
//!
//! Thread-per-connection over `std::net`: the accept loop hands every
//! connection to a session thread ([`crate::session`]), which itself
//! splits into a reader (request execution) and a writer (bounded
//! outbound queue). Wall-clock time is allowed here — session read
//! timeouts are real timeouts — but never inside the chip crates, whose
//! outputs must stay bit-reproducible (the determinism boundary
//! documented in DESIGN.md §10).

use crate::session::{run_session, SessionLimits};
use crate::stats::StationStats;
use bsa_link::{write_message, ErrorCode, Message, StatsSnapshot};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Station tuning knobs.
#[derive(Debug, Clone)]
pub struct StationConfig {
    /// Listen address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Outbound queue capacity per session, in messages. Backpressure
    /// drops stream chunks beyond this depth.
    pub queue_depth: usize,
    /// Idle-session read timeout; `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Maximum concurrent sessions; further connections are refused with
    /// an `Overloaded` error reply.
    pub max_sessions: u64,
    /// Directory for persisted recordings (`bsa-store` segment files).
    /// `None` disables record/replay: the requests fail with a
    /// `StoreError` reply instead of touching the filesystem.
    pub store_root: Option<PathBuf>,
}

impl Default for StationConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            read_timeout: Some(Duration::from_secs(30)),
            max_sessions: 64,
            store_root: None,
        }
    }
}

/// The running station. Binds with [`Station::bind`].
#[derive(Debug)]
pub struct Station;

impl Station {
    /// Binds the listener and starts the accept loop on a background
    /// thread. Returns once the socket is listening, so `handle.addr()`
    /// is immediately connectable.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, permission, …).
    pub fn bind(config: StationConfig) -> io::Result<StationHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(StationStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionTable::default());
        let limits = SessionLimits {
            queue_depth: config.queue_depth,
            read_timeout: config.read_timeout,
            store_root: config.store_root,
        };
        let accept_stats = Arc::clone(&stats);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_sessions = Arc::clone(&sessions);
        let max_sessions = config.max_sessions;
        let accept = thread::spawn(move || {
            accept_loop(
                &listener,
                &accept_stats,
                &accept_shutdown,
                &accept_sessions,
                &limits,
                max_sessions,
            );
        });
        Ok(StationHandle {
            addr,
            stats,
            shutdown,
            sessions,
            accept: Some(accept),
        })
    }
}

/// Read halves of every live session socket, keyed by a monotonically
/// increasing id. The accept loop registers a clone before spawning the
/// session thread; the session thread deregisters on exit (reaping the
/// entry alongside its `sessions_active` slot), and shutdown drains the
/// table to unblock in-flight readers.
#[derive(Debug, Default)]
struct SessionTable {
    inner: Mutex<Vec<(u64, TcpStream)>>,
}

impl SessionTable {
    fn insert(&self, id: u64, stream: TcpStream) {
        let mut table = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        table.push((id, stream));
    }

    fn remove(&self, id: u64) {
        let mut table = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        table.retain(|(sid, _)| *sid != id);
    }

    /// Takes every registered socket, leaving the table empty. The lock
    /// is released before the caller touches any socket.
    fn take_all(&self) -> Vec<TcpStream> {
        let mut table = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *table)
            .into_iter()
            .map(|(_, stream)| stream)
            .collect()
    }
}

fn accept_loop(
    listener: &TcpListener,
    stats: &Arc<StationStats>,
    shutdown: &Arc<AtomicBool>,
    sessions: &Arc<SessionTable>,
    limits: &SessionLimits,
    max_sessions: u64,
) {
    let mut next_session: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Claim the slot atomically (CAS inside): a load-then-add here
        // would let two concurrent accepts both pass the check and admit
        // max_sessions + 1.
        if !stats.try_open_session(max_sessions) {
            refuse(stream);
            continue;
        }
        let session_id = next_session;
        next_session = next_session.wrapping_add(1);
        if let Ok(clone) = stream.try_clone() {
            sessions.insert(session_id, clone);
        }
        let session_stats = Arc::clone(stats);
        let session_sessions = Arc::clone(sessions);
        let session_limits = limits.clone();
        // Detached: the session ends when its client disconnects or its
        // read timeout reaps it; exit frees both the admission slot and
        // the socket-table entry. Shutdown closes the registered read
        // halves, so live sessions wind down too.
        thread::spawn(move || {
            run_session(stream, Arc::clone(&session_stats), &session_limits);
            session_sessions.remove(session_id);
            StationStats::sub(&session_stats.sessions_active, 1);
        });
    }
}

/// Tells an over-capacity client why it is being dropped (best-effort).
fn refuse(mut stream: TcpStream) {
    let _ = write_message(
        &mut stream,
        &Message::ErrorReply {
            code: ErrorCode::Overloaded,
            message: "station at max sessions".into(),
        },
    );
}

/// Owner handle for a running station. Dropping it shuts the accept
/// loop down and closes the read half of every live session socket:
/// an in-flight request (including a stream and its `StreamEnd`) still
/// completes, then the session observes EOF and winds down.
#[derive(Debug)]
pub struct StationHandle {
    addr: SocketAddr,
    stats: Arc<StationStats>,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<SessionTable>,
    accept: Option<JoinHandle<()>>,
}

impl StationHandle {
    /// The bound listen address (with the OS-assigned port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the station-wide counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Blocks the calling thread until the accept loop exits (i.e. until
    /// another thread drops/shuts the handle — the server bin parks
    /// here forever).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting new connections, joins the accept thread, and
    /// closes the read half of every live session socket. A session busy
    /// serving a request finishes it — queued stream chunks and the
    /// `StreamEnd` marker still reach the client — then reads EOF and
    /// exits; an idle session wakes from its blocking read immediately.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // With the accept loop joined, no new sessions can register:
        // drain the table and deliver EOF to each reader. Writes stay
        // open so sessions can flush their outbound queues first.
        for stream in self.sessions.take_all() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

impl Drop for StationHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}
