#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! End-to-end: probe-panel design → chip spotting → multiplexed assay →
//! calling. The full workflow a microarray user runs.

use cmos_biosensor_arrays::chips::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use cmos_biosensor_arrays::dsp::calling::MatchCaller;
use cmos_biosensor_arrays::electrochem::panel::PanelDesign;
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::units::Molar;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Eight random 100-base "pathogen" targets and a designed panel.
fn setup() -> (
    Vec<DnaSequence>,
    Vec<cmos_biosensor_arrays::electrochem::panel::DesignedProbe>,
) {
    let mut rng = SmallRng::seed_from_u64(2025);
    let targets: Vec<DnaSequence> = (0..8).map(|_| DnaSequence::random(100, &mut rng)).collect();
    let panel = PanelDesign::default()
        .design(&targets)
        .expect("panel designable");
    (targets, panel)
}

#[test]
fn designed_panel_identifies_present_targets_on_chip() {
    let (targets, panel) = setup();
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();

    // Spot each designed probe in a 16-site replicate row.
    for (row, probe) in panel.iter().enumerate() {
        for col in 0..16 {
            chip.spot(
                cmos_biosensor_arrays::chips::array::PixelAddress::new(row, col),
                probe.probe.clone(),
            )
            .unwrap();
        }
    }
    chip.auto_calibrate();

    // Sample contains targets 1, 4 and 6.
    let present = [1usize, 4, 6];
    let mut sample = SampleMix::new();
    for &t in &present {
        sample = sample.with_target(targets[t].clone(), Molar::from_nano(100.0));
    }
    let readout = chip.run_assay(&sample);

    // Call per row (replicate median).
    let currents: Vec<f64> = readout
        .estimated_currents
        .iter()
        .map(|a| a.value())
        .collect();
    let calls = MatchCaller::default().call(&currents);
    for row in 0..8 {
        let row_matches = (0..16)
            .filter(|col| {
                calls.calls[row * 16 + col] == cmos_biosensor_arrays::dsp::calling::Call::Match
            })
            .count();
        if present.contains(&row) {
            assert!(
                row_matches >= 14,
                "target {row} present: {row_matches}/16 replicates called"
            );
        } else {
            assert!(
                row_matches <= 2,
                "target {row} absent: {row_matches}/16 false calls"
            );
        }
    }
}

#[test]
fn panel_probes_do_not_cross_react_on_chip() {
    let (targets, panel) = setup();
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    for (row, probe) in panel.iter().enumerate() {
        for col in 0..16 {
            chip.spot(
                cmos_biosensor_arrays::chips::array::PixelAddress::new(row, col),
                probe.probe.clone(),
            )
            .unwrap();
        }
    }
    chip.auto_calibrate();

    // Only target 0 present at high concentration: rows 1..8 stay dark.
    let sample = SampleMix::new().with_target(targets[0].clone(), Molar::from_micro(1.0));
    let readout = chip.run_assay(&sample);
    let row_median = |row: usize| -> f64 {
        let mut v: Vec<f64> = (0..16)
            .map(|col| readout.estimated_currents[row * 16 + col].value())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[8]
    };
    let own = row_median(0);
    for row in 1..8 {
        let cross = row_median(row);
        assert!(
            own > 50.0 * cross,
            "row {row} cross-reacts: own {own}, cross {cross}"
        );
    }
}

#[test]
fn panel_tm_uniformity_supports_single_wash() {
    let (_, panel) = setup();
    let spread = PanelDesign::tm_spread(&panel);
    let design = PanelDesign::default();
    assert!(
        spread.value() <= (design.tm_max - design.tm_min).value(),
        "Tm spread {spread} exceeds the design window"
    );
}
