//! The chip's 6-pin serial digital interface.
//!
//! "…and 6 pin interface for power supply and serial digital data
//! transmission" (paper Section 2). Two pins power the chip (VDD, GND);
//! clock, data-in, data-out and reset carry the digital traffic. Readout
//! data leaves the chip as fixed-format serial words; this module encodes
//! pixel readings to the bit stream and decodes them back, detecting
//! corrupted frames via a CRC-8 word check.
//!
//! Two decoders are provided: [`decode_frames`] aborts on the first bad
//! word (the strict electrical-test mode), while [`decode_frames_lenient`]
//! reports every word's individual verdict so a fault-tolerant host can
//! re-request only the corrupt words (see `DnaChip::serial_readout_robust`
//! in [`super::chip`]).

use crate::array::PixelAddress;
use bsa_circuit::digital::{Deserializer, ShiftRegister};
use bsa_link::crc::Crc8;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Number of package pins: VDD, GND, CLK, DIN, DOUT, RST.
pub const PIN_COUNT: usize = 6;

/// Sync byte opening every serial word.
const SYNC: u8 = 0xA5;

/// Serial word width: sync(8) + row(8) + col(8) + count(24) + CRC(8).
pub const WORD_BITS: u8 = 56;

/// One pixel reading as transmitted over the serial link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelReading {
    /// Pixel address.
    pub address: PixelAddress,
    /// Frame count (24-bit payload on the wire).
    pub count: u64,
}

/// Serial decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SerialError {
    /// A word did not start with the sync byte.
    BadSync {
        /// Offending byte value.
        got: u8,
    },
    /// Word checksum mismatch.
    BadChecksum {
        /// Index of the corrupt word.
        word_index: usize,
    },
    /// The stream ended mid-word.
    Truncated {
        /// Bits left over.
        leftover_bits: usize,
    },
}

impl fmt::Display for SerialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSync { got } => write!(f, "expected sync byte 0xA5, got {got:#04x}"),
            Self::BadChecksum { word_index } => {
                write!(f, "checksum mismatch in serial word {word_index}")
            }
            Self::Truncated { leftover_bits } => {
                write!(
                    f,
                    "serial stream truncated with {leftover_bits} leftover bits"
                )
            }
        }
    }
}

impl Error for SerialError {}

fn pack(reading: &PixelReading) -> u64 {
    let row = (reading.address.row as u64) & 0xFF;
    let col = (reading.address.col as u64) & 0xFF;
    let count = reading.count.min(0xFF_FFFF);
    let body = ((SYNC as u64) << 40) | (row << 32) | (col << 24) | count;
    let checksum = checksum_of(body);
    (body << 8) | checksum as u64
}

fn checksum_of(body: u64) -> u8 {
    // CRC-8 (poly 0x07, init 0x00) over the six body bytes, MSB first.
    // Unlike a byte-XOR parity it catches all 2-bit errors within a word
    // and all burst errors up to 8 bits. The generator lives in
    // `bsa_link::crc` so the chip serial link and the host wire protocol
    // share one implementation.
    let mut crc = Crc8::new();
    for k in (0..6).rev() {
        crc.update(((body >> (8 * k)) & 0xFF) as u8);
    }
    crc.finish()
}

/// Encodes pixel readings into the serial bit stream (MSB-first), exactly
/// as the on-chip shift register clocks them out of the DOUT pin.
pub fn encode_frames(readings: &[PixelReading]) -> Vec<bool> {
    let mut sr = ShiftRegister::new();
    for r in readings {
        sr.load_word(pack(r), WORD_BITS);
    }
    sr.drain_all()
}

/// Validates and unpacks one 56-bit serial word.
fn unpack(word: u64, word_index: usize) -> Result<PixelReading, SerialError> {
    let body = word >> 8;
    let checksum = (word & 0xFF) as u8;
    let sync = ((body >> 40) & 0xFF) as u8;
    if sync != SYNC {
        return Err(SerialError::BadSync { got: sync });
    }
    if checksum_of(body) != checksum {
        return Err(SerialError::BadChecksum { word_index });
    }
    let row = ((body >> 32) & 0xFF) as usize;
    let col = ((body >> 24) & 0xFF) as usize;
    let count = body & 0xFF_FFFF;
    Ok(PixelReading {
        address: PixelAddress::new(row, col),
        count,
    })
}

/// Decodes a serial bit stream back into pixel readings.
///
/// # Errors
///
/// Returns [`SerialError`] if a word lacks the sync byte, fails its
/// checksum, or the stream ends mid-word.
pub fn decode_frames(bits: &[bool]) -> Result<Vec<PixelReading>, SerialError> {
    let mut de = Deserializer::new();
    let mut out = Vec::new();
    for bit in bits {
        if let Some(word) = de.push(*bit, WORD_BITS) {
            out.push(unpack(word, out.len())?);
        }
    }
    let leftover = de.pending_bits();
    if leftover != 0 {
        return Err(SerialError::Truncated {
            leftover_bits: leftover as usize,
        });
    }
    Ok(out)
}

/// Decodes a serial bit stream word by word, reporting each word's
/// verdict instead of aborting at the first corruption. Trailing bits
/// that do not fill a word are reported as one final
/// [`SerialError::Truncated`] entry.
///
/// The returned vector has one entry per transmitted word, in order, so
/// a host can re-request exactly the failed positions.
pub fn decode_frames_lenient(bits: &[bool]) -> Vec<Result<PixelReading, SerialError>> {
    let mut de = Deserializer::new();
    let mut out = Vec::new();
    for bit in bits {
        if let Some(word) = de.push(*bit, WORD_BITS) {
            out.push(unpack(word, out.len()));
        }
    }
    let leftover = de.pending_bits();
    if leftover != 0 {
        out.push(Err(SerialError::Truncated {
            leftover_bits: leftover as usize,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_readings() -> Vec<PixelReading> {
        vec![
            PixelReading {
                address: PixelAddress::new(0, 0),
                count: 0,
            },
            PixelReading {
                address: PixelAddress::new(7, 15),
                count: 123_456,
            },
            PixelReading {
                address: PixelAddress::new(3, 9),
                count: 0xFF_FFFF,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_readings() {
        let readings = sample_readings();
        let bits = encode_frames(&readings);
        assert_eq!(bits.len(), readings.len() * WORD_BITS as usize);
        let decoded = decode_frames(&bits).unwrap();
        assert_eq!(decoded, readings);
    }

    #[test]
    fn empty_stream_decodes_to_nothing() {
        assert_eq!(decode_frames(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn counts_above_24_bits_saturate_on_the_wire() {
        let r = [PixelReading {
            address: PixelAddress::new(1, 1),
            count: u64::MAX,
        }];
        let decoded = decode_frames(&encode_frames(&r)).unwrap();
        assert_eq!(decoded[0].count, 0xFF_FFFF);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let readings = sample_readings();
        let mut bits = encode_frames(&readings);
        // Flip a bit inside the second word's count field.
        let idx = WORD_BITS as usize + 30;
        bits[idx] = !bits[idx];
        match decode_frames(&bits) {
            Err(SerialError::BadChecksum { word_index }) => assert_eq!(word_index, 1),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_sync_detected() {
        let readings = sample_readings();
        let mut bits = encode_frames(&readings);
        // Flip the first bit of the sync byte of word 0.
        bits[0] = !bits[0];
        assert!(matches!(
            decode_frames(&bits),
            Err(SerialError::BadSync { .. })
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let readings = sample_readings();
        let mut bits = encode_frames(&readings);
        bits.truncate(bits.len() - 5);
        match decode_frames(&bits) {
            Err(SerialError::Truncated { leftover_bits }) => {
                assert_eq!(leftover_bits, WORD_BITS as usize - 5)
            }
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SerialError::BadSync { got: 0x12 };
        assert!(e.to_string().contains("0x12"));
    }

    #[test]
    fn full_array_readout_is_one_continuous_stream() {
        let geometry = crate::array::ArrayGeometry::dna_16x8();
        let readings: Vec<PixelReading> = geometry
            .iter()
            .enumerate()
            .map(|(i, address)| PixelReading {
                address,
                count: i as u64 * 1000,
            })
            .collect();
        let decoded = decode_frames(&encode_frames(&readings)).unwrap();
        assert_eq!(decoded.len(), 128);
        assert_eq!(decoded, readings);
    }
}
