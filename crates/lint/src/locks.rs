//! `conc.lock-order` — global lock/channel acquisition-order graph
//! (DESIGN.md §14).
//!
//! Every mutex guard and blocking channel endpoint in the serving layer
//! (`crates/station` + `crates/control`) becomes a node; an edge `A → B`
//! means some execution path acquires (or blocks on) `B` while `A` is
//! still held. Edges come from two places:
//!
//! * **intra-fn** — acquisition order within one body, under the
//!   held-until-end-of-fn approximation (guards in this workspace live to
//!   the end of their scope);
//! * **inter-fn** — a call made after an acquisition inherits every node
//!   the callee (transitively) acquires, resolved by unique bare name
//!   within the scanned prefixes, like `reach.panic`.
//!
//! A cycle in that graph is a potential deadlock: two threads entering
//! the cycle at different nodes can each hold what the other wants. The
//! violation message spells out the full acquisition chain with the
//! file:line and function that contributes each edge.
//!
//! Identity is by name: locks by the receiver field (`self.inner.lock()`
//! → `lock:inner`), channels by the endpoint field with its `tx`/`rx`
//! suffix stripped (`self.frames_tx.send(..)` and `frames_rx.recv()` are
//! both `chan:frames`) so the two ends of one channel alias — a thread
//! blocked in `send` on a full channel is released by the `recv` end, so
//! holding a lock across either is the same ordering fact.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::lexer::Token;
use crate::parser::ParsedFile;
use crate::rules::{violation, Violation};
use crate::workspace::SourceFile;

/// Channel methods that participate in acquisition order. `try_send` /
/// `try_recv` never block and are deliberately absent.
const CHANNEL_METHODS: &[&str] = &["send", "recv", "recv_timeout"];

/// One acquisition site inside a fn body.
#[derive(Debug, Clone)]
struct Acq {
    node: String,
    line: usize,
}

/// Per-fn acquisition summary.
struct FnLocks {
    qualified: String,
    file: String,
    acqs: Vec<Acq>,
    /// (bare callee name, line) for interprocedural edges.
    calls: Vec<(String, usize)>,
}

/// Edge provenance for the report: where the later acquisition happens.
#[derive(Debug, Clone)]
struct Prov {
    file: String,
    line: usize,
    via: String,
}

/// Builds the acquisition-order graph over every file whose path starts
/// with one of `prefixes` and reports each distinct cycle once.
pub fn lock_order_pass(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    prefixes: &[&str],
    out: &mut Vec<Violation>,
) {
    let mut fns: Vec<FnLocks> = Vec::new();
    for (fi, pf) in parsed.iter().enumerate() {
        if !prefixes.iter().any(|p| pf.path.starts_with(p)) {
            continue;
        }
        let Some(src) = sources.get(fi) else { continue };
        for f in &pf.fns {
            fns.push(FnLocks {
                qualified: f.qualified.clone(),
                file: pf.path.clone(),
                acqs: collect_acquisitions(&src.tokens, f.body.clone()),
                calls: f.calls.iter().map(|c| (c.callee.clone(), c.line)).collect(),
            });
        }
    }

    // Bare-name resolution: unique names only, like the reach pass.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        let bare = f.qualified.rsplit(':').next().unwrap_or(&f.qualified);
        by_name.entry(bare).or_default().push(i);
    }

    // Transitive acquisition sets, memoized with cycle cutting.
    let mut memo: Vec<Option<Vec<(String, Prov)>>> = vec![None; fns.len()];
    let mut visiting: BTreeSet<usize> = BTreeSet::new();
    for i in 0..fns.len() {
        transitive_acqs(i, &fns, &by_name, &mut memo, &mut visiting);
    }

    // Edges: held node → later-acquired node, with provenance.
    let mut edges: BTreeMap<String, BTreeMap<String, Prov>> = BTreeMap::new();
    for f in &fns {
        for (ai, a) in f.acqs.iter().enumerate() {
            for b in f.acqs.iter().skip(ai + 1) {
                if a.node != b.node {
                    add_edge(
                        &mut edges,
                        &a.node,
                        &b.node,
                        Prov {
                            file: f.file.clone(),
                            line: b.line,
                            via: f.qualified.clone(),
                        },
                    );
                }
            }
            for (callee, line) in &f.calls {
                if *line < a.line {
                    continue;
                }
                let Some(indices) = by_name.get(callee.as_str()) else {
                    continue;
                };
                if indices.len() != 1 {
                    continue;
                }
                let callee_idx = match indices.first() {
                    Some(i) => *i,
                    None => continue,
                };
                if let Some(acquired) = memo.get(callee_idx).and_then(|m| m.as_ref()) {
                    for (node, _) in acquired {
                        if *node != a.node {
                            add_edge(
                                &mut edges,
                                &a.node,
                                node,
                                Prov {
                                    file: f.file.clone(),
                                    line: *line,
                                    via: format!("{} → {}", f.qualified, callee),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    report_cycles(&edges, out);
}

/// Everything `fns[i]` acquires, directly or through (uniquely resolved)
/// callees.
fn transitive_acqs(
    i: usize,
    fns: &[FnLocks],
    by_name: &BTreeMap<&str, Vec<usize>>,
    memo: &mut Vec<Option<Vec<(String, Prov)>>>,
    visiting: &mut BTreeSet<usize>,
) -> Vec<(String, Prov)> {
    if let Some(Some(cached)) = memo.get(i) {
        return cached.clone();
    }
    if !visiting.insert(i) {
        return Vec::new(); // recursion cut
    }
    let mut acquired: Vec<(String, Prov)> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    if let Some(f) = fns.get(i) {
        for a in &f.acqs {
            if seen.insert(a.node.clone()) {
                acquired.push((
                    a.node.clone(),
                    Prov {
                        file: f.file.clone(),
                        line: a.line,
                        via: f.qualified.clone(),
                    },
                ));
            }
        }
        for (callee, _) in &f.calls {
            if let Some(indices) = by_name.get(callee.as_str()) {
                if indices.len() == 1 {
                    if let Some(ci) = indices.first() {
                        for (node, prov) in transitive_acqs(*ci, fns, by_name, memo, visiting) {
                            if seen.insert(node.clone()) {
                                acquired.push((node, prov));
                            }
                        }
                    }
                }
            }
        }
    }
    visiting.remove(&i);
    if let Some(slot) = memo.get_mut(i) {
        *slot = Some(acquired.clone());
    }
    acquired
}

fn add_edge(edges: &mut BTreeMap<String, BTreeMap<String, Prov>>, a: &str, b: &str, prov: Prov) {
    edges
        .entry(a.to_string())
        .or_default()
        .entry(b.to_string())
        .or_insert(prov);
}

/// Finds `.lock()` and blocking channel calls in a body, in token order.
fn collect_acquisitions(tokens: &[Token], body: Range<usize>) -> Vec<Acq> {
    let mut acqs = Vec::new();
    for k in body {
        let Some(t) = tokens.get(k) else { break };
        let Some(name) = t.ident() else { continue };
        let dotted = k
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|t| t.is_punct('.'));
        let called = matches!(tokens.get(k + 1), Some(t) if t.is_punct('('));
        if !dotted || !called {
            continue;
        }
        let receiver = k
            .checked_sub(2)
            .and_then(|p| tokens.get(p))
            .and_then(|t| t.ident());
        if name == "lock" {
            let field = receiver.unwrap_or("anonymous");
            acqs.push(Acq {
                node: format!("lock:{field}"),
                line: t.line,
            });
        } else if CHANNEL_METHODS.contains(&name) {
            // Channel ops must have an endpoint-looking receiver — plain
            // `send`/`recv` on sockets or custom types would otherwise
            // flood the graph.
            if let Some(field) = receiver {
                if let Some(base) = channel_base(field) {
                    acqs.push(Acq {
                        node: format!("chan:{base}"),
                        line: t.line,
                    });
                }
            }
        }
    }
    acqs
}

/// Channel endpoint base name: strips a `tx`/`rx` suffix (plus a joining
/// underscore) so both ends of one channel share a node. `None` if the
/// name doesn't look like a channel endpoint at all.
fn channel_base(field: &str) -> Option<&str> {
    for suffix in ["tx", "rx"] {
        if let Some(stem) = field.strip_suffix(suffix) {
            let stem = stem.strip_suffix('_').unwrap_or(stem);
            return Some(if stem.is_empty() { "channel" } else { stem });
        }
    }
    None
}

/// DFS cycle detection; each distinct cycle (canonical rotation) is
/// reported once, with the full acquisition chain in the message.
fn report_cycles(edges: &BTreeMap<String, BTreeMap<String, Prov>>, out: &mut Vec<Violation>) {
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        let mut stack: Vec<String> = Vec::new();
        let mut on_stack: BTreeSet<String> = BTreeSet::new();
        dfs(start, edges, &mut stack, &mut on_stack, &mut reported, out);
    }
}

fn dfs(
    node: &str,
    edges: &BTreeMap<String, BTreeMap<String, Prov>>,
    stack: &mut Vec<String>,
    on_stack: &mut BTreeSet<String>,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Violation>,
) {
    if on_stack.contains(node) {
        // Extract the cycle from the stack tail.
        let from = stack.iter().position(|n| n == node).unwrap_or(0);
        let cycle: Vec<String> = stack.get(from..).unwrap_or_default().to_vec();
        if cycle.is_empty() {
            return;
        }
        if reported.insert(canonical(&cycle)) {
            emit_cycle(&cycle, edges, out);
        }
        return;
    }
    // Bound the walk: a node already fully expanded from some other root
    // cannot start a *new* cycle shape we haven't seen, and the reported
    // set dedupes rotations anyway. Depth is bounded by node count.
    if stack.len() > edges.len() {
        return;
    }
    stack.push(node.to_string());
    on_stack.insert(node.to_string());
    if let Some(next) = edges.get(node) {
        for n in next.keys() {
            dfs(n, edges, stack, on_stack, reported, out);
        }
    }
    stack.pop();
    on_stack.remove(node);
}

/// Rotates a cycle so its lexicographically smallest node comes first —
/// the dedupe key for rotation-equivalent cycles.
fn canonical(cycle: &[String]) -> Vec<String> {
    let min_idx = cycle
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut rotated = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        if let Some(n) = cycle.get((min_idx + k) % cycle.len()) {
            rotated.push(n.clone());
        }
    }
    rotated
}

fn emit_cycle(
    cycle: &[String],
    edges: &BTreeMap<String, BTreeMap<String, Prov>>,
    out: &mut Vec<Violation>,
) {
    let canon = canonical(cycle);
    let mut chain = String::new();
    let mut first_site: Option<(String, usize)> = None;
    for (k, node) in canon.iter().enumerate() {
        if k > 0 {
            chain.push_str(" → ");
        }
        chain.push_str(node);
        let next = canon.get((k + 1) % canon.len());
        if let Some(next) = next {
            if let Some(prov) = edges.get(node).and_then(|m| m.get(next)) {
                chain.push_str(&format!(" ({}:{} in {})", prov.file, prov.line, prov.via));
                if first_site.is_none() {
                    first_site = Some((prov.file.clone(), prov.line));
                }
            }
        }
    }
    if let Some(first) = canon.first() {
        chain.push_str(" → ");
        chain.push_str(first);
    }
    let (file, line) = first_site.unwrap_or_else(|| ("<graph>".to_string(), 0));
    out.push(violation(
        &file,
        line,
        "conc.lock-order",
        format!(
            "lock acquisition order cycle (potential deadlock): {chain}; \
             acquire these in one global order everywhere"
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parser::parse_file;
    use crate::STATION_PREFIX;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile {
                path: path.to_string(),
                tokens: strip_test_code(&lex(src)),
            })
            .collect();
        let parsed: Vec<ParsedFile> = sources
            .iter()
            .map(|s| parse_file(&s.path, &s.tokens))
            .collect();
        let mut out = Vec::new();
        lock_order_pass(
            &sources,
            &parsed,
            &[STATION_PREFIX, crate::conc::CONTROL_PREFIX],
            &mut out,
        );
        out
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = r#"
            fn a(&self) {
                let g1 = self.alpha.lock();
                let g2 = self.beta.lock();
            }
            fn b(&self) {
                let g2 = self.beta.lock();
                let g1 = self.alpha.lock();
            }
        "#;
        let v = run(&[("crates/station/src/x.rs", src)]);
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "conc.lock-order");
        assert!(f.message.contains("lock:alpha") && f.message.contains("lock:beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
            fn a(&self) {
                let g1 = self.alpha.lock();
                let g2 = self.beta.lock();
            }
            fn b(&self) {
                let g1 = self.alpha.lock();
                let g2 = self.beta.lock();
            }
        "#;
        assert!(run(&[("crates/station/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn cycle_through_callee_is_found() {
        let src = r#"
            fn outer(&self) {
                let g = self.alpha.lock();
                self.helper();
            }
            fn helper(&self) {
                let g = self.beta.lock();
            }
            fn other(&self) {
                let g = self.beta.lock();
                let g2 = self.alpha.lock();
            }
        "#;
        let v = run(&[("crates/station/src/x.rs", src)]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v.first().expect("one").message.contains("helper"));
    }

    #[test]
    fn channel_endpoints_alias_across_files() {
        // Thread 1 holds `state` while sending on the frames channel;
        // thread 2 holds the frames channel (blocked in recv) while
        // taking `state` — classic two-resource deadlock.
        let a = r#"
            fn produce(&self) {
                let g = self.state.lock();
                self.frames_tx.send(1);
            }
        "#;
        let b = r#"
            fn consume(&self) {
                let x = frames_rx.recv();
                let g = self.state.lock();
            }
        "#;
        // recv-then-lock is an edge chan:frames → lock:state; send under
        // the lock is lock:state → chan:frames. Cycle.
        let v = run(&[
            ("crates/station/src/a.rs", a),
            ("crates/control/src/b.rs", b),
        ]);
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert!(f.message.contains("chan:frames") && f.message.contains("lock:state"));
    }

    #[test]
    fn try_send_does_not_participate() {
        let src = r#"
            fn a(&self) {
                let g = self.state.lock();
                self.frames_tx.try_send(1);
            }
            fn b(&self) {
                let x = self.frames_rx.recv();
                let g = self.state.lock();
            }
        "#;
        assert!(run(&[("crates/station/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn reacquiring_the_same_lock_is_not_a_cycle() {
        let src = r#"
            fn a(&self) {
                let g = self.alpha.lock();
                drop(g);
                let g = self.alpha.lock();
            }
        "#;
        assert!(run(&[("crates/station/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn out_of_prefix_files_are_ignored() {
        let src = r#"
            fn a(&self) { let g1 = self.alpha.lock(); let g2 = self.beta.lock(); }
            fn b(&self) { let g2 = self.beta.lock(); let g1 = self.alpha.lock(); }
        "#;
        assert!(run(&[("crates/core/src/x.rs", src)]).is_empty());
    }
}
