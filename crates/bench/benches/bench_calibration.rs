//! Criterion bench for experiment E-F6a (paper Fig. 6, calibration): the
//! per-pixel calibration primitive and the calibrated-vs-uncalibrated
//! read path of the neural pixel, plus the ablation (calibration on/off).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bsa_core::neuro_chip::{NeuroPixel, NeuroPixelConfig};
use bsa_units::{Seconds, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_pixel_calibration(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let pixel =
        NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid");
    c.bench_function("f6a_calibrate_one_pixel", |b| {
        b.iter(|| {
            let mut p = pixel.clone();
            p.calibrate(Seconds::ZERO);
            black_box(p.is_calibrated())
        });
    });
}

fn bench_pixel_read(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut calibrated =
        NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid");
    calibrated.calibrate(Seconds::ZERO);
    let uncalibrated =
        NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid");
    c.bench_function("f6a_read_calibrated", |b| {
        b.iter(|| black_box(calibrated.read(black_box(Volt::from_micro(500.0)), Seconds::ZERO)));
    });
    c.bench_function("f6a_read_uncalibrated", |b| {
        b.iter(|| black_box(uncalibrated.read(black_box(Volt::from_micro(500.0)), Seconds::ZERO)));
    });
}

fn bench_array_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6a_array");
    group.sample_size(10);
    group.bench_function("calibrate_1024_pixels", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let pixels: Vec<NeuroPixel> = (0..1024)
            .map(|_| {
                NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng)
                    .expect("default config valid")
            })
            .collect();
        b.iter(|| {
            let mut ps = pixels.clone();
            for p in &mut ps {
                p.calibrate(Seconds::ZERO);
            }
            black_box(ps.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pixel_calibration,
    bench_pixel_read,
    bench_array_calibration
);
criterion_main!(benches);
