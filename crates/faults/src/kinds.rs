//! Defect taxonomy and the per-pixel aggregate fault state.

use bsa_units::{Ampere, Volt};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One injectable defect.
///
/// Each variant models a physical failure mechanism observed in
/// sensor-array silicon; the chip models in `bsa-core` interpret them:
///
/// * Pixel-level electrical defects ([`DeadPixel`](Self::DeadPixel),
///   [`StuckCount`](Self::StuckCount),
///   [`LeakyElectrode`](Self::LeakyElectrode),
///   [`ComparatorDrift`](Self::ComparatorDrift),
///   [`ComparatorStuck`](Self::ComparatorStuck),
///   [`DacSaturation`](Self::DacSaturation),
///   [`GainClipping`](Self::GainClipping)) attach to individual pixels.
/// * [`ChannelLoss`](Self::ChannelLoss) kills one of the multiplexed
///   readout channels (paper: 16 parallel channels on the neural chip).
/// * [`SerialBitErrors`](Self::SerialBitErrors) corrupts the 6-pin serial
///   interface of the DNA chip at a given bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// Pixel produces no output at all (open electrode, dead in-pixel
    /// amplifier). The counter never advances.
    DeadPixel,
    /// In-pixel counter latches a fixed value regardless of input
    /// (stuck-at defect in the counter or its readout latch).
    StuckCount {
        /// The frozen counter value returned every frame.
        count: u64,
    },
    /// Electrode leaks a parasitic current into the integration node
    /// (residual metallization, electrolyte creep under the passivation).
    /// Typically pA-scale — comparable to the smallest sensor currents.
    LeakyElectrode {
        /// Parasitic current added to the sensor current.
        leakage: Ampere,
    },
    /// Comparator switching level has drifted from its calibrated value
    /// (NBTI / charge trapping), changing the effective ramp span and
    /// therefore the conversion gain.
    ComparatorDrift {
        /// Additional input-referred offset of the switching level.
        offset: Volt,
    },
    /// Comparator output is stuck. Stuck high holds the reset switch on,
    /// so the ramp never runs and the count stays 0; stuck low never
    /// fires a reset, so the first ramp saturates and the count is also
    /// frozen — but the two fail differently under recalibration.
    ComparatorStuck {
        /// `true` = output stuck high (reset held), `false` = stuck low
        /// (reset never fires).
        high: bool,
    },
    /// Calibration DAC saturates: the per-pixel gain correction cannot
    /// leave the range `[1/limit, limit]`, leaving residual gain error on
    /// pixels whose mismatch needs more correction than the DAC spans.
    DacSaturation {
        /// Maximum correction magnitude the DAC can realize (> 1).
        limit: f64,
    },
    /// Neural-chip gain chain clips at a reduced swing (damaged output
    /// stage), compressing large signals.
    GainClipping {
        /// Output swing limit; samples are clamped to ±`limit`.
        limit: Volt,
    },
    /// One multiplexed readout channel is lost (metal open in the column
    /// bus or a dead channel amplifier); every pixel read through it
    /// returns a flat zero.
    ChannelLoss {
        /// Index of the lost channel.
        channel: usize,
    },
    /// Bit errors on the serial interface: each transmitted bit flips
    /// independently with the given probability.
    SerialBitErrors {
        /// Per-bit flip probability in `[0, 1]`.
        rate: f64,
    },
}

impl FaultKind {
    /// The class this fault belongs to, for reporting.
    pub fn class(&self) -> FaultClass {
        match self {
            Self::DeadPixel => FaultClass::DeadPixel,
            Self::StuckCount { .. } => FaultClass::StuckCount,
            Self::LeakyElectrode { .. } => FaultClass::LeakyElectrode,
            Self::ComparatorDrift { .. } => FaultClass::ComparatorDrift,
            Self::ComparatorStuck { .. } => FaultClass::ComparatorStuck,
            Self::DacSaturation { .. } => FaultClass::DacSaturation,
            Self::GainClipping { .. } => FaultClass::GainClipping,
            Self::ChannelLoss { .. } => FaultClass::ChannelLoss,
            Self::SerialBitErrors { .. } => FaultClass::SerialBitErrors,
        }
    }

    /// `true` if this fault attaches to an individual pixel (as opposed
    /// to a readout channel or the serial link).
    pub fn is_pixel_fault(&self) -> bool {
        !matches!(
            self,
            Self::ChannelLoss { .. } | Self::SerialBitErrors { .. }
        )
    }
}

/// Parameter-free fault classification used for counting and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultClass {
    /// See [`FaultKind::DeadPixel`].
    DeadPixel,
    /// See [`FaultKind::StuckCount`].
    StuckCount,
    /// See [`FaultKind::LeakyElectrode`].
    LeakyElectrode,
    /// See [`FaultKind::ComparatorDrift`].
    ComparatorDrift,
    /// See [`FaultKind::ComparatorStuck`].
    ComparatorStuck,
    /// See [`FaultKind::DacSaturation`].
    DacSaturation,
    /// See [`FaultKind::GainClipping`].
    GainClipping,
    /// See [`FaultKind::ChannelLoss`].
    ChannelLoss,
    /// See [`FaultKind::SerialBitErrors`].
    SerialBitErrors,
}

impl FaultClass {
    /// All fault classes, in reporting order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::DeadPixel,
        FaultClass::StuckCount,
        FaultClass::LeakyElectrode,
        FaultClass::ComparatorDrift,
        FaultClass::ComparatorStuck,
        FaultClass::DacSaturation,
        FaultClass::GainClipping,
        FaultClass::ChannelLoss,
        FaultClass::SerialBitErrors,
    ];

    /// Stable human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DeadPixel => "dead pixel",
            Self::StuckCount => "stuck counter",
            Self::LeakyElectrode => "leaky electrode",
            Self::ComparatorDrift => "comparator drift",
            Self::ComparatorStuck => "comparator stuck",
            Self::DacSaturation => "DAC saturation",
            Self::GainClipping => "gain clipping",
            Self::ChannelLoss => "channel loss",
            Self::SerialBitErrors => "serial bit errors",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The aggregate fault state of one pixel after compiling a plan.
///
/// Multiple injected faults compose: leakages add, drifts add, and the
/// most severe stuck condition wins. A default value means "no fault".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PixelFaults {
    /// Pixel produces no output ([`FaultKind::DeadPixel`] or comparator
    /// stuck in either state).
    pub dead: bool,
    /// Counter frozen at this value, if stuck.
    pub stuck_count: Option<u64>,
    /// Total parasitic leakage added to the sensor current.
    pub leakage: Ampere,
    /// Total comparator switching-level drift.
    pub comparator_drift: Volt,
    /// Tightest calibration-DAC correction limit, if saturated (> 1).
    pub dac_limit: Option<f64>,
    /// Tightest gain-chain output clip, if clipping.
    pub clip_limit: Option<Volt>,
}

impl PixelFaults {
    /// `true` if any fault is present on this pixel.
    pub fn is_faulty(&self) -> bool {
        *self != Self::default()
    }

    /// Folds one more injected fault into the aggregate state.
    ///
    /// Global (link-level) kinds — `ChannelLoss`, `SerialBitErrors` —
    /// have no pixel-level effect and are ignored
    /// (see [`FaultKind::is_pixel_fault`]).
    pub fn merge(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DeadPixel => self.dead = true,
            FaultKind::StuckCount { count } => {
                // The larger frozen value dominates — it is the one the
                // health monitor must catch as out-of-family.
                self.stuck_count = Some(self.stuck_count.map_or(count, |c| c.max(count)));
            }
            FaultKind::LeakyElectrode { leakage } => self.leakage += leakage,
            FaultKind::ComparatorDrift { offset } => {
                self.comparator_drift += offset;
            }
            FaultKind::ComparatorStuck { .. } => {
                // Either polarity freezes the converter; the count signature
                // (0 in both cases here) is what calibration observes.
                self.dead = true;
            }
            FaultKind::DacSaturation { limit } => {
                let limit = limit.max(1.0);
                self.dac_limit = Some(self.dac_limit.map_or(limit, |l| l.min(limit)));
            }
            FaultKind::GainClipping { limit } => {
                let limit = limit.abs();
                self.clip_limit = Some(self.clip_limit.map_or(limit, |l| l.min(limit)));
            }
            FaultKind::ChannelLoss { .. } | FaultKind::SerialBitErrors { .. } => {
                // Link-level faults live on the serial interface, not in
                // the pixel; merging one here is a no-op by design.
            }
        }
    }

    /// Clamps a gain-correction factor to the surviving DAC range.
    pub fn clamp_correction(&self, k: f64) -> f64 {
        match self.dac_limit {
            Some(limit) => k.clamp(1.0 / limit, limit),
            None => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_not_faulty() {
        assert!(!PixelFaults::default().is_faulty());
    }

    #[test]
    fn leakages_add() {
        let mut f = PixelFaults::default();
        f.merge(FaultKind::LeakyElectrode {
            leakage: Ampere::from_pico(10.0),
        });
        f.merge(FaultKind::LeakyElectrode {
            leakage: Ampere::from_pico(5.0),
        });
        assert!((f.leakage.as_pico() - 15.0).abs() < 1e-9);
        assert!(f.is_faulty());
    }

    #[test]
    fn tighter_dac_limit_wins() {
        let mut f = PixelFaults::default();
        f.merge(FaultKind::DacSaturation { limit: 1.2 });
        f.merge(FaultKind::DacSaturation { limit: 1.1 });
        assert_eq!(f.dac_limit, Some(1.1));
        assert!((f.clamp_correction(2.0) - 1.1).abs() < 1e-12);
        assert!((f.clamp_correction(0.5) - 1.0 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn comparator_stuck_reads_as_dead() {
        let mut f = PixelFaults::default();
        f.merge(FaultKind::ComparatorStuck { high: true });
        assert!(f.dead);
    }

    #[test]
    fn channel_loss_is_inert_on_a_pixel() {
        let mut f = PixelFaults::default();
        f.merge(FaultKind::ChannelLoss { channel: 0 });
        f.merge(FaultKind::SerialBitErrors { rate: 0.5 });
        assert!(!f.is_faulty());
    }

    #[test]
    fn class_names_are_stable() {
        for class in FaultClass::ALL {
            assert!(!class.name().is_empty());
        }
        assert_eq!(FaultKind::DeadPixel.class(), FaultClass::DeadPixel);
        assert!(!FaultKind::SerialBitErrors { rate: 0.1 }.is_pixel_fault());
        assert!(FaultKind::GainClipping {
            limit: Volt::new(1.0)
        }
        .is_pixel_fault());
    }
}
