#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Criterion bench for experiment E-F4 (paper Fig. 4): full-chip
//! operations — die instantiation, auto-calibration, array measurement,
//! assay and serial readout.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bsa_core::dna_chip::{decode_frames, DnaChip, DnaChipConfig, SampleMix};
use bsa_electrochem::sequence::DnaSequence;
use bsa_units::sweep::decades;
use bsa_units::{Ampere, Molar};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_die_and_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_chip");
    group.sample_size(10);
    group.bench_function("instantiate_die", |b| {
        b.iter(|| black_box(DnaChip::new(DnaChipConfig::default()).unwrap()));
    });
    group.bench_function("auto_calibrate_128px", |b| {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        b.iter(|| black_box(chip.auto_calibrate()));
    });
    group.finish();
}

fn bench_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_measure");
    group.sample_size(10);
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    chip.auto_calibrate();
    let ladder = decades(1e-12, 100e-9, 5);
    let currents: Vec<Ampere> = (0..chip.geometry().len())
        .map(|k| Ampere::new(ladder[k % ladder.len()]))
        .collect();
    group.bench_function("measure_full_array", |b| {
        b.iter(|| black_box(chip.measure_currents(black_box(&currents))));
    });
    group.finish();
}

fn bench_assay_and_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_assay");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(9);
    let probes: Vec<DnaSequence> = (0..128)
        .map(|_| DnaSequence::random(20, &mut rng))
        .collect();
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    chip.spot_all(&probes);
    chip.auto_calibrate();
    let sample =
        SampleMix::new().with_target(probes[0].reverse_complement(), Molar::from_nano(100.0));
    group.bench_function("full_assay_128_sites", |b| {
        b.iter(|| black_box(chip.run_assay(black_box(&sample))));
    });
    let readout = chip.run_assay(&sample);
    group.bench_function("serial_encode_decode_7168_bits", |b| {
        b.iter(|| {
            let bits = chip.serial_readout(black_box(&readout));
            black_box(decode_frames(&bits).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_die_and_calibration,
    bench_measurement,
    bench_assay_and_serial
);
criterion_main!(benches);
