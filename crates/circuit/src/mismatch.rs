//! Pelgrom-law device mismatch and process corners.
//!
//! Matching of nominally identical devices is limited by local fluctuations
//! that scale with the inverse square root of gate area (Pelgrom's law):
//!
//! ```text
//! σ(ΔV_T)  = A_VT / sqrt(W·L)
//! σ(Δβ/β) = A_β  / sqrt(W·L)
//! ```
//!
//! For the paper's 0.5 µm / t_ox = 15 nm process, A_VT ≈ 9 mV·µm — so a
//! minimum-size sensor transistor has millivolts of threshold spread while
//! the neural signals of interest are 100 µV … 5 mV. This is the entire
//! motivation for the per-pixel calibration of Section 3 / Fig. 6, and the
//! auto-calibration circuits on the DNA chip's periphery.

use crate::error::{require_positive, CircuitError};
use crate::mosfet::{Mosfet, MosfetParams};
use crate::noise::GaussianSampler;
use bsa_units::Volt;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Pelgrom mismatch coefficients for a CMOS process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PelgromModel {
    /// Threshold-matching coefficient A_VT in mV·µm.
    pub a_vt_mv_um: f64,
    /// Current-factor matching coefficient A_β in %·µm.
    pub a_beta_pct_um: f64,
}

impl PelgromModel {
    /// Coefficients typical of the paper's 0.5 µm, t_ox = 15 nm process.
    ///
    /// A_VT scales roughly with oxide thickness at ≈ 0.6 mV·µm/nm.
    pub fn cmos05um() -> Self {
        Self {
            a_vt_mv_um: 9.0,
            a_beta_pct_um: 2.0,
        }
    }

    /// Validates the coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if either coefficient is non-positive.
    pub fn validate(&self) -> Result<(), CircuitError> {
        require_positive("A_VT", self.a_vt_mv_um)?;
        require_positive("A_beta", self.a_beta_pct_um)?;
        Ok(())
    }

    /// Standard deviation of the threshold mismatch for a device of the
    /// given gate area.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_circuit::mismatch::PelgromModel;
    /// let m = PelgromModel::cmos05um();
    /// // A 9 µm² device on this process: σ(ΔVT) = 3 mV.
    /// assert!((m.sigma_vth(9.0).as_milli() - 3.0).abs() < 1e-9);
    /// ```
    pub fn sigma_vth(&self, gate_area_um2: f64) -> Volt {
        Volt::from_milli(self.a_vt_mv_um / gate_area_um2.sqrt())
    }

    /// Standard deviation of the relative current-factor mismatch Δβ/β.
    pub fn sigma_beta_rel(&self, gate_area_um2: f64) -> f64 {
        self.a_beta_pct_um / 100.0 / gate_area_um2.sqrt()
    }

    /// Samples a `(ΔV_T, Δβ/β)` pair for a device of the given gate area.
    pub fn sample<R: Rng>(&self, gate_area_um2: f64, rng: &mut R) -> (Volt, f64) {
        let mut g = GaussianSampler::new();
        let dvt = self.sigma_vth(gate_area_um2) * g.sample(rng);
        let dbeta = self.sigma_beta_rel(gate_area_um2) * g.sample(rng);
        (dvt, dbeta)
    }

    /// Builds a mismatched instance of an already-validated nominal
    /// device. Taking `&Mosfet` (not raw params) keeps this infallible:
    /// validation happened once at the nominal device's construction, so
    /// sampling mismatch cannot panic mid-array.
    pub fn instantiate<R: Rng>(&self, nominal: &Mosfet, rng: &mut R) -> Mosfet {
        let area = nominal.params().gate_area_um2();
        let (dvt, dbeta) = self.sample(area, rng);
        nominal.clone().with_mismatch(dvt, dbeta)
    }
}

/// Global process corner: shifts that affect all devices on a die together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessCorner {
    /// Typical-typical.
    Tt,
    /// Fast NMOS, fast PMOS (low V_T, high kp).
    Ff,
    /// Slow NMOS, slow PMOS (high V_T, low kp).
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl ProcessCorner {
    /// All five corners, for corner sweeps.
    pub const ALL: [Self; 5] = [Self::Tt, Self::Ff, Self::Ss, Self::Fs, Self::Sf];

    /// Applies the corner to a nominal parameter set: ±60 mV threshold and
    /// ±10 % current-factor shifts (typical 3σ global variation).
    #[must_use]
    pub fn apply(self, mut params: MosfetParams) -> MosfetParams {
        use crate::mosfet::Polarity;
        let (vt_shift, kp_scale) = match (self, params.polarity) {
            (Self::Tt, _) => (0.0, 1.0),
            (Self::Ff, _) => (-0.06, 1.10),
            (Self::Ss, _) => (0.06, 0.90),
            (Self::Fs, Polarity::Nmos) | (Self::Sf, Polarity::Pmos) => (-0.06, 1.10),
            (Self::Fs, Polarity::Pmos) | (Self::Sf, Polarity::Nmos) => (0.06, 0.90),
        };
        params.vth0 += Volt::new(vt_shift);
        params.kp *= kp_scale;
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sigma_scales_with_inverse_sqrt_area() {
        let m = PelgromModel::cmos05um();
        let s1 = m.sigma_vth(1.0);
        let s4 = m.sigma_vth(4.0);
        assert!((s1.value() / s4.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_statistics_match_model() {
        let m = PelgromModel::cmos05um();
        let mut rng = SmallRng::seed_from_u64(42);
        let area = 4.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(area, &mut rng).0.value()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        let expected = m.sigma_vth(area).value();
        assert!(mean.abs() < expected * 0.05, "mean = {mean}");
        assert!(
            (sigma - expected).abs() / expected < 0.05,
            "sigma = {sigma}"
        );
    }

    #[test]
    fn instantiate_produces_distinct_devices() {
        let m = PelgromModel::cmos05um();
        let mut rng = SmallRng::seed_from_u64(7);
        let nominal = Mosfet::new(MosfetParams::n05um(2.0, 1.0));
        let a = m.instantiate(&nominal, &mut rng);
        let b = m.instantiate(&nominal, &mut rng);
        assert_ne!(a.delta_vth(), b.delta_vth());
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let m = PelgromModel::cmos05um();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        assert_eq!(m.sample(2.0, &mut r1), m.sample(2.0, &mut r2));
    }

    #[test]
    fn corners_shift_threshold_both_ways() {
        let p = MosfetParams::n05um(10.0, 2.0);
        let ff = ProcessCorner::Ff.apply(p.clone());
        let ss = ProcessCorner::Ss.apply(p.clone());
        assert!(ff.vth0 < p.vth0);
        assert!(ss.vth0 > p.vth0);
        assert!(ff.kp > p.kp);
        assert!(ss.kp < p.kp);
    }

    #[test]
    fn tt_corner_is_identity() {
        let p = MosfetParams::n05um(10.0, 2.0);
        assert_eq!(ProcessCorner::Tt.apply(p.clone()), p);
    }

    #[test]
    fn cross_corners_respect_polarity() {
        let n = MosfetParams::n05um(10.0, 2.0);
        let p = MosfetParams::p05um(10.0, 2.0);
        let n_fs = ProcessCorner::Fs.apply(n.clone());
        let p_fs = ProcessCorner::Fs.apply(p.clone());
        assert!(n_fs.vth0 < n.vth0, "fast NMOS in FS");
        assert!(p_fs.vth0 > p.vth0, "slow PMOS in FS");
    }

    #[test]
    fn validation_rejects_zero_coefficients() {
        let m = PelgromModel {
            a_vt_mv_um: 0.0,
            a_beta_pct_um: 1.0,
        };
        assert!(m.validate().is_err());
    }
}
