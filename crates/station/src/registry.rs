//! Per-session chip registry and the wire-spec → simulation-config
//! conversions.
//!
//! The conversions are `pub` (not just `pub(crate)`) deliberately: the
//! loopback tests and the bench harness build their *in-process*
//! reference chips through the very same functions the server uses, so
//! "bit-identical to a direct `record()` call" is checked against the
//! exact configuration the wire spec produces.

use bsa_core::array::ArrayGeometry;
use bsa_core::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_core::{ChipError, YieldReport};
use bsa_faults::{FaultKind, InjectionPlan};
use bsa_link::{
    ChipId, CultureSpec, DnaChipSpec, FaultKindSpec, FaultPlanSpec, FaultTargetSpec, NeuroChipSpec,
    SerialLinkSummary, YieldSummary,
};
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Ampere, Hertz, Seconds, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Largest array the station will simulate (a 2048×2048 die), so a
/// hostile spec cannot demand an absurd allocation.
pub const MAX_PIXELS: usize = 1 << 22;

/// Builds a neuro-chip configuration from its wire spec. Zero /
/// non-finite fields select the paper defaults (128×128, 16 channels,
/// 2 kHz).
pub fn neuro_config_from_spec(spec: &NeuroChipSpec) -> Result<NeuroChipConfig, ChipError> {
    let mut config = NeuroChipConfig::default();
    if spec.rows != 0 || spec.cols != 0 {
        let rows = usize::from(spec.rows.max(1));
        let cols = usize::from(spec.cols.max(1));
        config.geometry = ArrayGeometry::new(rows, cols, config.geometry.pitch())?;
    }
    if spec.channels != 0 {
        config.channels = usize::from(spec.channels);
    }
    if spec.frame_rate_hz.is_finite() && spec.frame_rate_hz > 0.0 {
        config.frame_rate = Hertz::new(spec.frame_rate_hz);
    }
    config.seed = spec.seed;
    Ok(config)
}

/// Builds a DNA-chip configuration from its wire spec. Zero / non-finite
/// fields select the paper defaults (16×8, 10 s frames).
pub fn dna_config_from_spec(spec: &DnaChipSpec) -> Result<DnaChipConfig, ChipError> {
    let mut config = DnaChipConfig::default();
    if spec.rows != 0 || spec.cols != 0 {
        let rows = usize::from(spec.rows.max(1));
        let cols = usize::from(spec.cols.max(1));
        config.geometry = ArrayGeometry::new(rows, cols, config.geometry.pitch())?;
    }
    if spec.frame_time_s.is_finite() && spec.frame_time_s > 0.0 {
        config.frame_time = Seconds::new(spec.frame_time_s);
    }
    config.seed = spec.seed;
    Ok(config)
}

/// Builds the simulated culture a neuro stream records from. Fully
/// deterministic in `spec.seed`, which is what makes the streamed frames
/// reproducible by an in-process `record()` with the same spec.
#[must_use]
pub fn culture_from_spec(spec: &CultureSpec) -> Culture {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut config = CultureConfig::default();
    if spec.neuron_count != 0 {
        config.neuron_count = spec.neuron_count as usize;
    }
    let mut culture = Culture::random(&config, &mut rng);
    let duration = if spec.spike_duration_s.is_finite() && spec.spike_duration_s > 0.0 {
        spec.spike_duration_s
    } else {
        1.0
    };
    culture.generate_spikes(Seconds::new(duration), &mut rng);
    culture
}

fn fault_kind_from_spec(kind: &FaultKindSpec) -> FaultKind {
    match kind {
        FaultKindSpec::DeadPixel => FaultKind::DeadPixel,
        FaultKindSpec::StuckCount { count } => FaultKind::StuckCount { count: *count },
        FaultKindSpec::LeakyElectrode { leakage_a } => FaultKind::LeakyElectrode {
            leakage: Ampere::new(*leakage_a),
        },
        FaultKindSpec::ComparatorDrift { offset_v } => FaultKind::ComparatorDrift {
            offset: Volt::new(*offset_v),
        },
        FaultKindSpec::ComparatorStuck { high } => FaultKind::ComparatorStuck { high: *high },
        FaultKindSpec::DacSaturation { limit } => FaultKind::DacSaturation { limit: *limit },
        FaultKindSpec::GainClipping { limit_v } => FaultKind::GainClipping {
            limit: Volt::new(*limit_v),
        },
        FaultKindSpec::ChannelLoss { channel } => FaultKind::ChannelLoss {
            channel: *channel as usize,
        },
        FaultKindSpec::SerialBitErrors { rate } => FaultKind::SerialBitErrors { rate: *rate },
    }
}

/// Rebuilds a `bsa_faults::InjectionPlan` from its wire form. Chip-global
/// kinds (channel loss, serial bit errors) route through the dedicated
/// builder calls whatever their declared target; a `Global` target with a
/// pixel-level kind becomes an array-wide fault at density 1.
#[must_use]
pub fn injection_plan_from_spec(spec: &FaultPlanSpec) -> InjectionPlan {
    let mut plan = InjectionPlan::new(spec.seed);
    for entry in &spec.entries {
        let kind = fault_kind_from_spec(&entry.kind);
        plan = match (&entry.target, kind) {
            (_, FaultKind::ChannelLoss { channel }) => plan.lose_channel(channel),
            (_, FaultKind::SerialBitErrors { rate }) => plan.serial_bit_errors(rate),
            (FaultTargetSpec::Pixel { row, col }, kind) => {
                plan.at(usize::from(*row), usize::from(*col), kind)
            }
            (FaultTargetSpec::ArrayWide { density }, kind) => plan.array_wide(*density, kind),
            (FaultTargetSpec::Global, kind) => plan.array_wide(1.0, kind),
        };
    }
    plan
}

fn as_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Converts a chip's `YieldReport` into its wire summary.
#[must_use]
pub fn yield_summary(report: &YieldReport) -> YieldSummary {
    YieldSummary {
        total_pixels: as_u32(report.total_pixels),
        healthy: as_u32(report.healthy),
        out_of_family: as_u32(report.out_of_family),
        dead: as_u32(report.dead),
        lost_channels: report.lost_channels.iter().map(|&c| as_u32(c)).collect(),
        total_channels: as_u32(report.total_channels),
        injected: as_u32(report.injected.values().sum::<usize>()),
        serial: SerialLinkSummary {
            clean_words: report.serial.clean_words as u64,
            recovered_words: report.serial.recovered_words as u64,
            unrecovered_words: report.serial.unrecovered_words as u64,
            rereads: report.serial.rereads as u64,
        },
        degradation: match report.degradation {
            bsa_core::DegradationMode::FullPerformance => {
                bsa_link::DegradationSummary::FullPerformance
            }
            bsa_core::DegradationMode::Degraded => bsa_link::DegradationSummary::Degraded,
            bsa_core::DegradationMode::Unusable => bsa_link::DegradationSummary::Unusable,
        },
    }
}

/// One attached chip, with the DNA chip carrying its configured sample.
#[derive(Debug)]
pub(crate) enum Chip {
    Dna {
        chip: Box<DnaChip>,
        sample: SampleMix,
    },
    Neuro(Box<NeuroChip>),
}

/// Session-scoped chip table. A `Vec` keyed by id: sessions hold a
/// handful of chips, and iteration order stays deterministic.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    next_id: ChipId,
    chips: Vec<(ChipId, Chip)>,
}

impl Registry {
    pub(crate) fn attach(&mut self, chip: Chip) -> ChipId {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.chips.push((id, chip));
        id
    }

    pub(crate) fn get_mut(&mut self, id: ChipId) -> Option<&mut Chip> {
        self.chips
            .iter_mut()
            .find(|(cid, _)| *cid == id)
            .map(|(_, chip)| chip)
    }

    pub(crate) fn detach(&mut self, id: ChipId) -> bool {
        let before = self.chips.len();
        self.chips.retain(|(cid, _)| *cid != id);
        self.chips.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsa_link::FaultEntrySpec;

    #[test]
    fn default_specs_select_paper_geometry() {
        let neuro = neuro_config_from_spec(&NeuroChipSpec {
            rows: 0,
            cols: 0,
            channels: 0,
            seed: 7,
            frame_rate_hz: f64::NAN,
        })
        .unwrap();
        assert_eq!(neuro.geometry.rows(), 128);
        assert_eq!(neuro.geometry.cols(), 128);
        assert_eq!(neuro.channels, 16);
        assert_eq!(neuro.seed, 7);

        let dna = dna_config_from_spec(&DnaChipSpec {
            rows: 0,
            cols: 0,
            seed: 9,
            frame_time_s: 0.0,
        })
        .unwrap();
        assert_eq!(dna.geometry.rows(), 8);
        assert_eq!(dna.geometry.cols(), 16);
        assert_eq!(dna.seed, 9);
    }

    #[test]
    fn culture_from_spec_is_deterministic() {
        let spec = CultureSpec {
            seed: 42,
            neuron_count: 10,
            spike_duration_s: 0.05,
        };
        let a = culture_from_spec(&spec);
        let b = culture_from_spec(&spec);
        assert_eq!(a.neurons().len(), b.neurons().len());
    }

    #[test]
    fn plan_spec_compiles_like_the_builder() {
        let spec = FaultPlanSpec {
            seed: 5,
            entries: vec![
                FaultEntrySpec {
                    target: FaultTargetSpec::Pixel { row: 1, col: 2 },
                    kind: FaultKindSpec::DeadPixel,
                },
                FaultEntrySpec {
                    target: FaultTargetSpec::Global,
                    kind: FaultKindSpec::ChannelLoss { channel: 3 },
                },
            ],
        };
        let compiled = injection_plan_from_spec(&spec).compile(8, 8);
        let reference = InjectionPlan::new(5)
            .at(1, 2, FaultKind::DeadPixel)
            .lose_channel(3)
            .compile(8, 8);
        assert_eq!(compiled.lost_channels(), reference.lost_channels());
        assert!(compiled.at(1, 2).dead);
        assert_eq!(compiled.at(1, 2).dead, reference.at(1, 2).dead);
    }

    #[test]
    fn registry_attach_get_detach() {
        let mut reg = Registry::default();
        let config = dna_config_from_spec(&DnaChipSpec {
            rows: 2,
            cols: 2,
            seed: 1,
            frame_time_s: 0.1,
        })
        .unwrap();
        let chip = DnaChip::new(config).unwrap();
        let id = reg.attach(Chip::Dna {
            chip: Box::new(chip),
            sample: SampleMix::new(),
        });
        assert!(reg.get_mut(id).is_some());
        assert!(reg.detach(id));
        assert!(!reg.detach(id));
        assert!(reg.get_mut(id).is_none());
    }
}
