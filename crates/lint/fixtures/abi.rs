# Faux link.abi.lock for the proto.abi fixture (lock text, not Rust). //~ proto.abi
# The test strips the expectation markers per line (keeping line numbers), presents
# the rest as the lock, and checks it against a synthetic HEAD of three
# encodings: Hello (absent here — its not-in-lock report pins to line 1,
# the marker above), Ping (matches), Pong (drifted fnv below).
Ping tag=0x02 len=3 fnv=00000000000000aa
Pong tag=0x03 len=9 fnv=00000000000000bb //~ proto.abi
Retired tag=0x7F len=4 fnv=0000000000000099 //~ proto.abi
