#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! End-to-end spike sorting: two neurons over the same pixel, recorded
//! through the chip, detected and separated by waveform shape.

use cmos_biosensor_arrays::chips::array::{ArrayGeometry, PixelAddress};
use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::dsp::frames::FrameStack;
use cmos_biosensor_arrays::dsp::sorting::{extract_snippets, sort_spikes};
use cmos_biosensor_arrays::dsp::spike::SpikeDetector;
use cmos_biosensor_arrays::neuro::culture::{Culture, CulturedNeuron};
use cmos_biosensor_arrays::neuro::firing::FiringPattern;
use cmos_biosensor_arrays::neuro::junction::{ApTemplate, CleftJunction};
use cmos_biosensor_arrays::units::{Meter, Seconds};

/// Spike times that land their pixel sample ~150 µs after the upstroke:
/// pixel (8, 8) of a 16×16 array samples at +250 µs within each 500 µs
/// frame.
fn aligned_spikes(frames: &[usize]) -> Vec<Seconds> {
    frames
        .iter()
        .map(|f| Seconds::new(*f as f64 * 500e-6 + 250e-6 - 150e-6))
        .collect()
}

#[test]
fn two_units_on_one_pixel_are_sorted_by_amplitude() {
    let cfg = NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        channels: 4,
        ..NeuroChipConfig::default()
    };
    let mut chip = NeuroChip::new(cfg).unwrap();
    let (x, y) = chip.config().geometry.position_of(PixelAddress::new(8, 8));
    let base = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6));

    // Unit A: strongly coupled (4×); unit B: weaker (1.5×), interleaved.
    let frames_a: Vec<usize> = (60..1000).step_by(160).collect();
    let frames_b: Vec<usize> = (140..1000).step_by(160).collect();
    let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    for (scale, frames) in [(4.0, &frames_a), (1.5, &frames_b)] {
        culture.push(CulturedNeuron {
            x,
            y,
            diameter: Meter::from_micro(30.0),
            pattern: FiringPattern::Silent,
            template: base.clone().scaled(scale),
            spikes: aligned_spikes(frames),
        });
    }

    let n_frames = 1000; // 500 ms
    let rec = chip.record(&culture, Seconds::ZERO, n_frames);
    let gain = rec.nominal_voltage_gain();
    let stack = FrameStack::new(
        rec.geometry().rows(),
        rec.geometry().cols(),
        rec.frames()
            .iter()
            .map(|f| f.samples().iter().map(|s| s / gain).collect())
            .collect(),
    )
    .detrended();
    let series = stack.pixel_series(8, 8);

    // Detect both units' spikes.
    let detections = SpikeDetector::default().detect(&series);
    assert!(
        detections.len() >= frames_a.len() + frames_b.len() - 2,
        "detections: {}",
        detections.len()
    );

    // Sort into two units.
    let snippets = extract_snippets(&series, &detections, 2, 4);
    let result = sort_spikes(&snippets, 2);
    let sizes = result.cluster_sizes(2);
    assert!(
        sizes[0] > 0 && sizes[1] > 0,
        "both clusters populated: {sizes:?}"
    );

    // The cluster with the larger mean peak must contain unit A's frames.
    let big_cluster = if result.centroids[0][0] > result.centroids[1][0] {
        0
    } else {
        1
    };
    let big_spikes = result.unit_spikes(&snippets, big_cluster);
    let hits_a = frames_a
        .iter()
        .filter(|f| big_spikes.iter().any(|d| d.abs_diff(**f) <= 2))
        .count();
    assert!(
        hits_a >= frames_a.len() - 1,
        "unit A frames recovered in the big cluster: {hits_a}/{}",
        frames_a.len()
    );
    // And unit B's frames in the other cluster.
    let small_spikes = result.unit_spikes(&snippets, 1 - big_cluster);
    let hits_b = frames_b
        .iter()
        .filter(|f| small_spikes.iter().any(|d| d.abs_diff(**f) <= 2))
        .count();
    assert!(
        hits_b >= frames_b.len() - 1,
        "unit B frames recovered in the small cluster: {hits_b}/{}",
        frames_b.len()
    );
}
