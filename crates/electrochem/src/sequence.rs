//! DNA sequences and complementarity.
//!
//! Probe molecules on the chip are 15–40-mers; targets are "up to 2…3
//! orders of magnitude longer" (paper Fig. 2 caption). Hybridization occurs
//! between complementary strands; this module provides the sequence algebra
//! the hybridization model is built on.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// A single DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

impl Base {
    /// All four bases in alphabetical order.
    pub const ALL: [Self; 4] = [Self::A, Self::C, Self::G, Self::T];

    /// Watson–Crick complement.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_electrochem::sequence::Base;
    /// assert_eq!(Base::A.complement(), Base::T);
    /// assert_eq!(Base::G.complement(), Base::C);
    /// ```
    pub fn complement(self) -> Self {
        match self {
            Self::A => Self::T,
            Self::T => Self::A,
            Self::C => Self::G,
            Self::G => Self::C,
        }
    }

    /// `true` for G or C (three hydrogen bonds, stronger pairing).
    pub fn is_gc(self) -> bool {
        matches!(self, Self::G | Self::C)
    }

    /// Character representation.
    pub fn to_char(self) -> char {
        match self {
            Self::A => 'A',
            Self::C => 'C',
            Self::G => 'G',
            Self::T => 'T',
        }
    }

    /// Parses a base from a character (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'A' => Some(Self::A),
            'C' => Some(Self::C),
            'G' => Some(Self::G),
            'T' => Some(Self::T),
            _ => None,
        }
    }
}

/// Error returned when parsing a DNA sequence from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSequenceError {
    position: usize,
    character: char,
}

impl fmt::Display for ParseSequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid base {:?} at position {}",
            self.character, self.position
        )
    }
}

impl Error for ParseSequenceError {}

/// An immutable DNA sequence (5'→3').
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnaSequence {
    bases: Vec<Base>,
}

impl DnaSequence {
    /// Creates a sequence from bases.
    pub fn new(bases: Vec<Base>) -> Self {
        Self { bases }
    }

    /// Generates a uniformly random sequence of the given length.
    pub fn random<R: Rng>(len: usize, rng: &mut R) -> Self {
        let bases = (0..len)
            .map(|_| Base::ALL[rng.gen_range(0..Base::ALL.len())])
            .collect();
        Self { bases }
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` if the sequence has no bases.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The bases slice.
    pub fn bases(&self) -> &[Base] {
        &self.bases
    }

    /// Fraction of G/C bases, in `[0, 1]` (0 for an empty sequence).
    pub fn gc_content(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        self.bases.iter().filter(|b| b.is_gc()).count() as f64 / self.bases.len() as f64
    }

    /// Base-wise complement (3'→5' of the original orientation).
    pub fn complement(&self) -> Self {
        Self {
            bases: self.bases.iter().map(|b| b.complement()).collect(),
        }
    }

    /// Reverse complement: the strand that hybridizes with this one in
    /// antiparallel orientation.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_electrochem::sequence::DnaSequence;
    /// let s: DnaSequence = "ATGC".parse()?;
    /// assert_eq!(s.reverse_complement().to_string(), "GCAT");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn reverse_complement(&self) -> Self {
        Self {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Returns a copy with `n` point mutations at deterministic, spread-out
    /// positions (each mutated base is replaced by the next base cyclically,
    /// guaranteeing a real change). Used to construct k-mismatch targets.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    #[must_use]
    pub fn with_mismatches(&self, n: usize) -> Self {
        assert!(n <= self.len(), "cannot mutate more bases than exist");
        let mut bases = self.bases.clone();
        if n == 0 {
            return Self { bases };
        }
        let stride = self.len() as f64 / n as f64;
        for k in 0..n {
            let idx = (k as f64 * stride) as usize;
            if let Some(b) = bases.get_mut(idx) {
                // Any substitution that is not the identity works; cycle
                // A→C→G→T→A so the mutation is deterministic.
                *b = match *b {
                    Base::A => Base::C,
                    Base::C => Base::G,
                    Base::G => Base::T,
                    Base::T => Base::A,
                };
            }
        }
        Self { bases }
    }

    /// Number of positions at which `self` pairs complementarily with
    /// `other` at the best antiparallel alignment: the probe is slid along
    /// the (reversed) target and the alignment with the most Watson–Crick
    /// pairs wins. Targets shorter than the probe compare over the overlap.
    pub fn complementary_matches(&self, other: &Self) -> usize {
        if self.is_empty() || other.is_empty() {
            return 0;
        }
        let rev: Vec<Base> = other.bases.iter().rev().copied().collect();
        if rev.len() < self.len() {
            return self
                .bases
                .iter()
                .zip(rev.iter())
                .filter(|(a, b)| a.complement() == **b)
                .count();
        }
        rev.windows(self.len())
            .map(|w| {
                self.bases
                    .iter()
                    .zip(w.iter())
                    .filter(|(a, b)| a.complement() == **b)
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of mismatched positions at the best hybridization alignment
    /// with `other` (antiparallel), over the shorter of the two lengths.
    pub fn mismatches_with(&self, other: &Self) -> usize {
        let overlap = self.len().min(other.len());
        overlap - self.complementary_matches(other)
    }

    /// `true` if `other` contains the perfect hybridization partner over
    /// the full probe length.
    pub fn is_perfect_match(&self, other: &Self) -> bool {
        other.len() >= self.len() && self.mismatches_with(other) == 0
    }
}

impl fmt::Display for DnaSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

impl FromStr for DnaSequence {
    type Err = ParseSequenceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bases = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            if c.is_whitespace() {
                continue;
            }
            match Base::from_char(c) {
                Some(b) => bases.push(b),
                None => {
                    return Err(ParseSequenceError {
                        position: i,
                        character: c,
                    })
                }
            }
        }
        Ok(Self { bases })
    }
}

impl FromIterator<Base> for DnaSequence {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        Self {
            bases: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s: DnaSequence = "ACGTacgt".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn parse_rejects_invalid_base() {
        let err = "ACGX".parse::<DnaSequence>().unwrap_err();
        assert_eq!(err.to_string(), "invalid base 'X' at position 3");
    }

    #[test]
    fn parse_skips_whitespace() {
        let s: DnaSequence = "ACG T".parse().unwrap();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn gc_content_values() {
        let s: DnaSequence = "GGCC".parse().unwrap();
        assert_eq!(s.gc_content(), 1.0);
        let s: DnaSequence = "ATAT".parse().unwrap();
        assert_eq!(s.gc_content(), 0.0);
        let s: DnaSequence = "ATGC".parse().unwrap();
        assert_eq!(s.gc_content(), 0.5);
        assert_eq!(DnaSequence::new(vec![]).gc_content(), 0.0);
    }

    #[test]
    fn reverse_complement_hybridizes_perfectly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let probe = DnaSequence::random(25, &mut rng);
        let target = probe.reverse_complement();
        assert!(probe.is_perfect_match(&target));
        assert_eq!(probe.mismatches_with(&target), 0);
    }

    #[test]
    fn reverse_complement_is_involution() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = DnaSequence::random(30, &mut rng);
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn with_mismatches_changes_exactly_n_positions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let probe = DnaSequence::random(20, &mut rng);
        let target = probe.reverse_complement();
        for n in 0..=5 {
            let mutated = target.with_mismatches(n);
            assert_eq!(probe.mismatches_with(&mutated), n, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot mutate")]
    fn with_mismatches_rejects_excess() {
        let s: DnaSequence = "ACGT".parse().unwrap();
        let _ = s.with_mismatches(5);
    }

    #[test]
    fn longer_target_still_matches_probe() {
        // Target 10× longer than the probe (paper: targets are orders of
        // magnitude longer); the binding site is embedded mid-target.
        let mut rng = SmallRng::seed_from_u64(4);
        let probe = DnaSequence::random(20, &mut rng);
        let mut bases = DnaSequence::random(90, &mut rng).bases().to_vec();
        bases.extend_from_slice(probe.reverse_complement().bases());
        bases.extend_from_slice(DnaSequence::random(90, &mut rng).bases());
        let target = DnaSequence::new(bases);
        assert!(probe.is_perfect_match(&target));
        assert_eq!(probe.mismatches_with(&target), 0);
    }

    #[test]
    fn unrelated_target_has_many_mismatches() {
        let mut rng = SmallRng::seed_from_u64(14);
        let probe = DnaSequence::random(24, &mut rng);
        let target = DnaSequence::random(24, &mut rng);
        // A random 24-mer pairs at ~25 % of positions by chance; the best
        // single alignment should still leave many mismatches.
        assert!(probe.mismatches_with(&target) >= 8);
        assert!(!probe.is_perfect_match(&target));
    }

    #[test]
    fn random_sequences_are_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_eq!(
            DnaSequence::random(40, &mut a),
            DnaSequence::random(40, &mut b)
        );
    }

    #[test]
    fn random_base_composition_is_uniform() {
        let mut rng = SmallRng::seed_from_u64(6);
        let s = DnaSequence::random(40_000, &mut rng);
        let gc = s.gc_content();
        assert!((gc - 0.5).abs() < 0.02, "gc = {gc}");
    }

    #[test]
    fn from_iterator_collects() {
        let s: DnaSequence = [Base::A, Base::C].into_iter().collect();
        assert_eq!(s.to_string(), "AC");
    }
}
