//! Offline vendored subset of the `criterion` bench API.
//!
//! Provides enough of criterion's surface for the workspace benches to
//! compile and produce useful numbers offline: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`/`sample_size`, [`BenchmarkId`] and [`black_box`].
//! Timing is a simple median-of-samples wall-clock measurement printed as
//! plain text — no statistics engine, plots or HTML reports.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (upstream default is 100; the
/// vendored harness keeps runs short).
const DEFAULT_SAMPLES: usize = 20;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The per-iteration timer handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_samples(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up plus auto-scaled batch size so fast routines get
        // resolvable timings.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut v = self.samples.clone();
        v.sort();
        v[v.len() / 2]
    }
}

fn print_result(name: &str, bencher: &Bencher) {
    println!("bench: {name:<56} {:>12?}", bencher.median());
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::with_samples(self.sample_size);
        f(&mut b);
        print_result(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::with_samples(self.sample_size);
        f(&mut b, input);
        print_result(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Finishes the group (upstream parity; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::with_samples(DEFAULT_SAMPLES);
        f(&mut b);
        print_result(name, &b);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip timing
            // there so test runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
