//! Segment store correctness: write → read roundtrips are bit-exact,
//! accounting always balances, and misuse surfaces as typed errors.

#![allow(clippy::unwrap_used)] // tests unwrap idiomatically

use bsa_link::{ChipKind, PixelCount};
use bsa_store::{
    decode_dna_reading, decode_neuro_frame, encode_dna_reading, encode_neuro_frame, fnv1a64,
    frame_payload_len, list_recordings, Offer, Recorder, SegmentMeta, SegmentReader, StoreError,
};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bsa-store-rt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn neuro_meta(rows: u16, cols: u16) -> SegmentMeta {
    let spec = format!("NeuroChipConfig {{ rows: {rows}, cols: {cols}, seed: 0x0EE51281 }}");
    SegmentMeta {
        chip: 1,
        kind: ChipKind::Neuro,
        rows,
        cols,
        config_hash: fnv1a64(spec.as_bytes()),
        spec,
    }
}

/// Deterministic, bit-diverse sample values (subnormals, negatives,
/// exact powers of two) so "bit-identical" is a meaningful assertion.
fn frame_samples(frame: usize, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let bits = (frame as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            // Clear NaN patterns: force a finite exponent.
            f64::from_bits(bits & !(0x7FFu64 << 52) | (0x3F0u64 << 52))
        })
        .collect()
}

#[test]
fn neuro_write_read_is_bit_identical() {
    let root = temp_root("neuro");
    let meta = neuro_meta(3, 5);
    let payload_len = frame_payload_len(ChipKind::Neuro, 3, 5);
    let mut rec = Recorder::create(&root, "run-a", &meta, payload_len, 64).unwrap();
    let frames = 17usize;
    for f in 0..frames {
        let samples = frame_samples(f, 15);
        let epoch = if f < 10 { 0 } else { 1 };
        rec.offer(epoch, encode_neuro_frame(&samples)).unwrap();
    }
    let summary = rec.finish().unwrap();
    assert_eq!(
        summary.frames_written + summary.frames_dropped,
        frames as u64
    );
    assert_eq!(summary.epochs, 2);

    let mut reader = SegmentReader::open_named(&root, "run-a").unwrap();
    assert_eq!(reader.meta(), &meta);
    assert_eq!(reader.frames(), summary.frames_written);
    assert_eq!(reader.epochs(), 2);
    assert_eq!(reader.bytes(), summary.bytes_written);
    for f in 0..reader.frames() {
        let frame = reader.frame(f).unwrap();
        assert_eq!(frame.index, f);
        let mut samples = Vec::new();
        decode_neuro_frame(frame.payload, &mut samples).unwrap();
        let want = frame_samples(f as usize, 15);
        assert_eq!(samples.len(), want.len());
        for (got, want) in samples.iter().zip(&want) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dna_readings_roundtrip() {
    let root = temp_root("dna");
    let spec = "DnaChipConfig { rows: 8, cols: 16 }".to_string();
    let meta = SegmentMeta {
        chip: 2,
        kind: ChipKind::Dna,
        rows: 8,
        cols: 16,
        config_hash: fnv1a64(spec.as_bytes()),
        spec,
    };
    let mut rec = Recorder::create(
        &root,
        "assay-1",
        &meta,
        frame_payload_len(ChipKind::Dna, 8, 16),
        // Queue covers every offer, so zero drops is deterministic.
        256,
    )
    .unwrap();
    let readings: Vec<PixelCount> = (0..128u16)
        .map(|i| PixelCount {
            row: i / 16,
            col: i % 16,
            count: u64::from(i) * 977 + 13,
        })
        .collect();
    for r in &readings {
        rec.offer(0, encode_dna_reading(r)).unwrap();
    }
    let summary = rec.finish().unwrap();
    assert_eq!(summary.frames_written, 128);
    assert_eq!(summary.frames_dropped, 0);

    let mut reader = SegmentReader::open_named(&root, "assay-1").unwrap();
    assert_eq!(reader.meta().kind, ChipKind::Dna);
    for (i, want) in readings.iter().enumerate() {
        let frame = reader.frame(i as u64).unwrap();
        assert_eq!(&decode_dna_reading(frame.payload).unwrap(), want);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn catalog_lists_valid_segments_sorted_and_skips_garbage() {
    let root = temp_root("catalog");
    for name in ["zeta", "alpha"] {
        let meta = neuro_meta(2, 2);
        let mut rec = Recorder::create(&root, name, &meta, 32, 8).unwrap();
        rec.offer(0, encode_neuro_frame(&[1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        rec.finish().unwrap();
    }
    // Garbage that must be skipped, not listed and not fatal.
    std::fs::write(root.join("torn.seg"), b"BSSGnot a real segment").unwrap();
    std::fs::write(root.join("notes.txt"), b"unrelated").unwrap();

    let entries = list_recordings(&root).unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["alpha", "zeta"]);
    for e in &entries {
        assert_eq!(e.frames, 1);
        assert_eq!((e.rows, e.cols), (2, 2));
        assert_eq!(e.config_hash, neuro_meta(2, 2).config_hash);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_root_is_an_empty_store() {
    let entries = list_recordings(&temp_root("absent")).unwrap();
    assert!(entries.is_empty());
}

#[test]
fn typed_misuse_errors() {
    let root = temp_root("misuse");
    let meta = neuro_meta(2, 2);

    // Bad names: empty, traversal, separators, hidden files.
    for bad in ["", "..", "a/b", "a\\b", ".hidden", "x y", &"n".repeat(65)] {
        assert!(
            matches!(
                Recorder::create(&root, bad, &meta, 32, 8),
                Err(StoreError::BadName { .. })
            ),
            "{bad:?} accepted"
        );
    }

    let mut rec = Recorder::create(&root, "dup", &meta, 32, 8).unwrap();
    // Wrong payload size for the segment's kind is a typed caller error.
    assert!(matches!(
        rec.offer(0, vec![0u8; 31]),
        Err(StoreError::PayloadSize {
            expected: 32,
            got: 31
        })
    ));
    rec.offer(0, encode_neuro_frame(&[0.5; 4])).unwrap();
    rec.finish().unwrap();

    // Duplicate names collide instead of overwriting data.
    assert!(matches!(
        Recorder::create(&root, "dup", &meta, 32, 8),
        Err(StoreError::AlreadyExists { .. })
    ));

    // Unknown recordings are NotFound, not Io.
    assert!(matches!(
        SegmentReader::open_named(&root, "ghost"),
        Err(StoreError::NotFound { .. })
    ));

    // Reading past the end is typed.
    let mut reader = SegmentReader::open_named(&root, "dup").unwrap();
    assert!(matches!(
        reader.frame(1),
        Err(StoreError::FrameOutOfRange {
            index: 1,
            frames: 1
        })
    ));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn accounting_balances_under_backpressure() {
    let root = temp_root("pressure");
    let meta = neuro_meta(16, 16);
    let payload_len = frame_payload_len(ChipKind::Neuro, 16, 16);
    // Depth-1 queue and a fast producer: some frames may drop, but the
    // sent/dropped split must always balance and the segment must hold
    // exactly the accepted frames.
    let mut rec = Recorder::create(&root, "burst", &meta, payload_len, 1).unwrap();
    let offered = 64u64;
    let mut accepted = 0u64;
    for f in 0..offered {
        let samples = frame_samples(f as usize, 256);
        if rec.offer(0, encode_neuro_frame(&samples)).unwrap() == Offer::Accepted {
            accepted += 1;
        }
    }
    let summary = rec.finish().unwrap();
    assert_eq!(summary.frames_written, accepted);
    assert_eq!(summary.frames_dropped, offered - accepted);
    let reader = SegmentReader::open_named(&root, "burst").unwrap();
    assert_eq!(reader.frames(), accepted);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropped_recorder_still_finalizes_a_valid_segment() {
    let root = temp_root("drop");
    let meta = neuro_meta(2, 2);
    let mut rec = Recorder::create(&root, "abandoned", &meta, 32, 8).unwrap();
    rec.offer(3, encode_neuro_frame(&[1.0, -1.0, 0.0, 2.5]))
        .unwrap();
    drop(rec); // session died without StopRecording
    let mut reader = SegmentReader::open_named(&root, "abandoned").unwrap();
    assert_eq!(reader.frames(), 1);
    assert_eq!(reader.frame(0).unwrap().epoch, 3);
    let _ = std::fs::remove_dir_all(&root);
}
