//! Experiment E-F6a: per-pixel calibration of the neural array
//! (paper Fig. 6, M1/M2/S1 and the calibration phase).
//!
//! Measures the zero-signal output spread of the full 128×128 array
//! before and after calibration, the droop of the stored calibration over
//! time, and the residual error budget (charge injection, M2 mismatch).

use bsa_bench::{banner, eng, times, Table};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig, NeuroPixel, NeuroPixelConfig};
use bsa_dsp::stats::RunningStats;
use bsa_units::{Seconds, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    banner(
        "E-F6a",
        "Fig. 6 (sensor-transistor calibration)",
        "signals of 100 µV–5 mV require calibrating M1 against its parameter variations",
    );

    // (a) Pixel-level current spread, uncalibrated vs calibrated.
    let mut rng = SmallRng::seed_from_u64(99);
    let n = 2048;
    let mut uncal = RunningStats::new();
    let mut cal = RunningStats::new();
    let mut injected = RunningStats::new();
    for _ in 0..n {
        let mut p = NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng)
            .expect("default config valid");
        uncal.push(p.read(Volt::ZERO, Seconds::ZERO).value());
        p.calibrate(Seconds::ZERO);
        cal.push(p.read(Volt::ZERO, Seconds::ZERO).value());
        injected.push(p.read(Volt::ZERO, Seconds::ZERO).value());
    }
    // Signal scale: a calibrated pixel's response to 1 mV.
    let mut probe = NeuroPixel::nominal(NeuroPixelConfig::default()).expect("default config valid");
    probe.calibrate(Seconds::ZERO);
    let signal_1mv = (probe.read(Volt::from_milli(1.0), Seconds::ZERO)
        - probe.read(Volt::ZERO, Seconds::ZERO))
    .value();
    let signal_100uv = signal_1mv / 10.0;

    let mut t = Table::new(
        format!("Difference-current spread over {n} pixels (σ of ΔI at V_cleft = 0)"),
        &["condition", "σ(ΔI)", "vs 100 µV signal", "vs 5 mV signal"],
    );
    for (name, stats) in [("uncalibrated", &uncal), ("calibrated", &cal)] {
        let sd = stats.std_dev();
        t.add_row(vec![
            name.to_string(),
            eng(sd, "A"),
            times(sd / signal_100uv),
            times(sd / (signal_1mv * 5.0)),
        ]);
    }
    t.print();
    println!();
    println!(
        "Calibration improvement: ×{:.0}. Uncalibrated offsets bury a 100 µV signal ({}×).",
        uncal.std_dev() / cal.std_dev(),
        (uncal.std_dev() / signal_100uv).round()
    );
    println!(
        "The post-calibration residual ({:.1}× a 100 µV signal) is a *static* pattern —",
        cal.std_dev() / signal_100uv
    );
    println!("charge injection and M2 mismatch — removed by per-pixel baseline subtraction;");
    println!("only calibration makes the array usable at all at these signal levels.");
    println!();

    // (b) Droop between recalibrations: the *added* drift since refresh.
    let mut t = Table::new(
        "Stored-calibration droop: drift added since the last refresh",
        &["time since cal", "σ(ΔI)", "added drift (input-referred)"],
    );
    let mut pixels: Vec<NeuroPixel> = (0..512)
        .map(|_| {
            NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid")
        })
        .collect();
    for p in &mut pixels {
        p.calibrate(Seconds::ZERO);
    }
    let gm = probe.conversion_gain(Seconds::ZERO).value();
    let mut sigma0 = 0.0;
    for t_ms in [0.0, 10.0, 50.0, 200.0, 1000.0] {
        let now = Seconds::from_milli(t_ms);
        let stats: RunningStats = pixels
            .iter()
            .map(|p| p.read(Volt::ZERO, now).value())
            .collect();
        let sd = stats.std_dev();
        if t_ms == 0.0 {
            sigma0 = sd;
        }
        let added = (sd * sd - sigma0 * sigma0).max(0.0).sqrt();
        t.add_row(vec![
            eng(t_ms * 1e-3, "s"),
            eng(sd, "A"),
            eng(added / gm, "V"),
        ]);
    }
    t.print();
    println!();
    println!("At the 50 ms recalibration interval the added drift stays well below the");
    println!("100 µV signal floor; left for a second it grows past it — why the paper");
    println!("performs the calibration *periodically*, rows in parallel.");
    println!();

    // (c) Full-chip offset map spread through the complete signal chain.
    let mut chip = NeuroChip::new(NeuroChipConfig::default()).expect("default config valid");
    chip.calibrate(Seconds::ZERO);
    let map = chip.offset_map(Seconds::ZERO);
    let stats: RunningStats = map.iter().copied().collect();
    let gain = chip.nominal_voltage_gain();
    println!(
        "Full 128×128 chip, chain output: offset σ = {} ({} input-referred), gain = {:.0} V/V.",
        eng(stats.std_dev(), "V"),
        eng(stats.std_dev() / gain, "V"),
        gain
    );
}
