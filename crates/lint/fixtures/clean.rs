//! Negative-control fixture: idiomatic code that must produce zero
//! violations under every rule family.

use std::collections::BTreeMap;

pub fn ordered_accumulate(frames: &BTreeMap<usize, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in frames {
        total += v;
    }
    total
}

pub fn seeded_noise(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

pub fn checked_lookup(values: &[f64], idx: usize) -> Option<f64> {
    values.get(idx).copied()
}

pub fn parse_or_default(raw: &str) -> f64 {
    raw.parse().unwrap_or(0.0)
}

pub fn typed_frequency(fs: Hertz, cutoff: Hertz) -> f64 {
    cutoff.value() / fs.value()
}

pub fn parallel_but_ordered(x: &[f64]) -> Vec<f64> {
    x.par_iter().map(|v| v.sqrt()).collect()
}

pub fn chunked_then_sequential(x: &[f64]) -> f64 {
    let partials: Vec<f64> = x
        .par_chunks(1024)
        .map(|chunk| chunk.iter().sum::<f64>())
        .collect();
    partials.iter().sum()
}

pub fn errors_propagate(cfg: &str) -> Result<f64, ParseError> {
    let value: f64 = cfg.parse()?;
    Ok(value.clamp(0.0, 1.0))
}
