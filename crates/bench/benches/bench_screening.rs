//! Criterion bench for experiment E-F1 (paper Fig. 1): library generation
//! and the four-stage screening funnel, including the no-chip baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_screening::compound::CompoundLibrary;
use bsa_screening::pipeline::Pipeline;

fn bench_library(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_library");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("generate", n), &n, |b, &n| {
            b.iter(|| black_box(CompoundLibrary::generate(n, 1e-4, 1)));
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_pipeline");
    group.sample_size(10);
    let library = CompoundLibrary::generate(100_000, 1e-4, 2);
    group.bench_function("classic_funnel_100k", |b| {
        let p = Pipeline::classic();
        b.iter(|| black_box(p.run(&library, 3)));
    });
    group.bench_function("robot_serial_funnel_100k", |b| {
        let p = Pipeline::without_chip_parallelism();
        b.iter(|| black_box(p.run(&library, 3)));
    });
    group.finish();
}

criterion_group!(benches, bench_library, bench_pipeline);
criterion_main!(benches);
