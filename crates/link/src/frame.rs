//! Length-prefixed framing with a CRC-8 trailer.
//!
//! ```text
//! offset  0        2        3        7                 7+LEN
//!         +--------+--------+--------+-----------------+-------+
//!         | MAGIC  | VER    | LEN LE | PAYLOAD         | CRC-8 |
//!         | B5 A1  | 01     | 4 B    | LEN bytes       | 1 B   |
//!         +--------+--------+--------+-----------------+-------+
//! ```
//!
//! The CRC covers every byte before it (magic, version, length and
//! payload), so any single corrupted byte — including in the header —
//! is rejected. Decode order is magic → version → length bounds → CRC →
//! payload parse; each failure is a distinct [`ProtocolError`].

use crate::crc::{crc8, Crc8};
use crate::error::ProtocolError;
use crate::message::Message;
use std::io::{Read, Write};

/// Frame preamble: distinguishes protocol traffic from stray bytes.
pub const MAGIC: [u8; 2] = [0xB5, 0xA1];

/// Wire protocol version this build encodes and accepts.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size: magic (2) + version (1) + length (4).
pub const HEADER_LEN: usize = 7;

/// Bytes a frame adds around its payload (header + CRC trailer).
pub const FRAME_OVERHEAD: usize = HEADER_LEN + 1;

/// Upper bound on the declared payload length (16 MiB), far above the
/// largest legitimate message but small enough that a corrupted length
/// field cannot demand an absurd allocation.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Hard cap on any frame-sized buffer allocation: the largest whole
/// frame body (maximal payload plus CRC trailer), checked explicitly
/// before `read_message` allocates. Guarantees `len + 1` cannot
/// overflow for any length that passes the bound checks.
pub const MAX_FRAME_LEN: usize = MAX_PAYLOAD + FRAME_OVERHEAD;

/// Encodes a message into one complete frame.
#[must_use]
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.encode_payload();
    // No legitimate message approaches MAX_PAYLOAD (the largest stream
    // chunk is bounded by the station's chunking policy); this is a
    // caller-bug guard, not a wire condition.
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.push(crc8(&out));
    out
}

/// Decodes exactly one frame occupying the whole buffer. Trailing bytes
/// after the frame are an error; use [`decode_frame_prefix`] to consume
/// frames from a longer buffer.
pub fn decode_frame(buf: &[u8]) -> Result<Message, ProtocolError> {
    let (msg, consumed) = decode_frame_prefix(buf)?;
    match buf.len().saturating_sub(consumed) {
        0 => Ok(msg),
        count => Err(ProtocolError::TrailingBytes { count }),
    }
}

/// Decodes one frame from the front of `buf`, returning the message and
/// the number of bytes consumed.
pub fn decode_frame_prefix(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
    let header = buf.get(..HEADER_LEN).ok_or(ProtocolError::Truncated {
        needed: HEADER_LEN,
        available: buf.len(),
    })?;
    let (magic, rest) = header.split_at(2);
    if magic != MAGIC {
        let mut got = [0u8; 2];
        got.copy_from_slice(magic);
        return Err(ProtocolError::BadMagic { got });
    }
    let (version, len_bytes) = rest.split_at(1);
    if version != [PROTOCOL_VERSION] {
        return Err(ProtocolError::UnsupportedVersion {
            got: version.first().copied().unwrap_or(0),
        });
    }
    let mut len_arr = [0u8; 4];
    len_arr.copy_from_slice(len_bytes);
    let len = u32::from_le_bytes(len_arr) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let total = HEADER_LEN + len + 1;
    let frame = buf.get(..total).ok_or(ProtocolError::Truncated {
        needed: total,
        available: buf.len(),
    })?;
    let (body, crc_byte) = frame.split_at(total - 1);
    let got = crc_byte.first().copied().unwrap_or(0);
    let expected = crc8(body);
    if expected != got {
        return Err(ProtocolError::BadCrc { expected, got });
    }
    let payload = body.get(HEADER_LEN..).unwrap_or(&[]);
    let msg = Message::decode_payload(payload)?;
    Ok((msg, total))
}

/// Writes one framed message to a byte sink, returning the frame size.
pub fn write_message<W: Write>(writer: &mut W, msg: &Message) -> Result<usize, ProtocolError> {
    let frame = encode_frame(msg);
    writer.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one framed message from a byte source.
///
/// Blocks until a full frame arrives; transport failures (including a
/// clean EOF mid-frame) surface as [`ProtocolError::Io`], corruption as
/// the corresponding decode variant.
pub fn read_message<R: Read>(reader: &mut R) -> Result<Message, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    let (magic, rest) = header.split_at(2);
    if magic != MAGIC {
        let mut got = [0u8; 2];
        got.copy_from_slice(magic);
        return Err(ProtocolError::BadMagic { got });
    }
    let (version, len_bytes) = rest.split_at(1);
    if version != [PROTOCOL_VERSION] {
        return Err(ProtocolError::UnsupportedVersion {
            got: version.first().copied().unwrap_or(0),
        });
    }
    let mut len_arr = [0u8; 4];
    len_arr.copy_from_slice(len_bytes);
    let len = u32::from_le_bytes(len_arr) as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    // `len ≤ MAX_PAYLOAD`, so `len + 1` (payload + CRC trailer) cannot
    // overflow; the explicit cap keeps the allocation provably below
    // MAX_FRAME_LEN even if the bounds above ever drift.
    let body_len = len + 1;
    if body_len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    let mut rest_buf = vec![0u8; body_len];
    reader.read_exact(&mut rest_buf)?;
    let (payload, crc_byte) = rest_buf.split_at(len);
    let got = crc_byte.first().copied().unwrap_or(0);
    let mut crc = Crc8::new();
    crc.update_bytes(&header);
    crc.update_bytes(payload);
    let expected = crc.finish();
    if expected != got {
        return Err(ProtocolError::BadCrc { expected, got });
    }
    Message::decode_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Ping { token: 0xFEED };
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn stream_roundtrip() {
        let msgs = vec![
            Message::Hello { client: "t".into() },
            Message::QueryStats,
            Message::Pong { token: 9 },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&read_message(&mut cursor).unwrap(), m);
        }
        // EOF after the last frame surfaces as Io.
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn prefix_decoding_consumes_one_frame() {
        let a = encode_frame(&Message::Ack);
        let b = encode_frame(&Message::Ping { token: 1 });
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let (msg, used) = decode_frame_prefix(&buf).unwrap();
        assert_eq!(msg, Message::Ack);
        assert_eq!(used, a.len());
        let (msg2, _) = decode_frame_prefix(buf.get(used..).unwrap()).unwrap();
        assert_eq!(msg2, Message::Ping { token: 1 });
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(&Message::Ack);
        if let Some(b) = frame.first_mut() {
            *b = 0x00;
        }
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0; 8]);
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
        let mut cursor = Cursor::new(frame);
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn maximal_declared_length_is_read_not_rejected() {
        // A frame declaring exactly MAX_PAYLOAD must pass the length
        // bounds: the reader sizes its buffer at MAX_PAYLOAD + 1 (the
        // largest value `body_len` can take, still under MAX_FRAME_LEN)
        // and reads the full body. The all-zero payload then fails at
        // the decode stage — typed, never FrameTooLarge and never a
        // short read.
        let mut frame = Vec::with_capacity(MAX_FRAME_LEN);
        frame.extend_from_slice(&MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&(MAX_PAYLOAD as u32).to_le_bytes());
        frame.resize(HEADER_LEN + MAX_PAYLOAD, 0);
        frame.push(crc8(&frame));
        assert_eq!(frame.len(), MAX_FRAME_LEN);
        let mut cursor = Cursor::new(frame);
        let err = read_message(&mut cursor).unwrap_err();
        assert!(
            !matches!(
                err,
                ProtocolError::FrameTooLarge { .. } | ProtocolError::Io(_)
            ),
            "maximal frame rejected before decode: {err}"
        );
    }

    #[test]
    fn large_stream_chunk_roundtrips() {
        // A realistic worst-case payload (a 64-frame chunk of a
        // 128x128 neuro array, ~8 MiB of samples) survives the framed
        // write/read path bit-exactly.
        let samples: Vec<f64> = (0..64usize * 128 * 128)
            .map(|i| f64::from_bits(0x3FF0_0000_0000_0000 ^ i as u64))
            .collect();
        let msg = Message::StreamData {
            chip: 3,
            seq: 7,
            payload: crate::message::StreamPayload::NeuroFrames {
                first_frame: 0,
                rows: 128,
                cols: 128,
                samples,
            },
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        assert!(buf.len() < MAX_FRAME_LEN);
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_message(&mut cursor).unwrap(), msg);
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = encode_frame(&Message::Ping { token: 3 });
        for cut in 0..frame.len() {
            let err = decode_frame(frame.get(..cut).unwrap()).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }
}
