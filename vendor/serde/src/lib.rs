//! Offline vendored facade of the `serde` API surface this workspace uses.
//!
//! The build environment has no network access, and nothing in the
//! workspace serializes data yet — the `#[derive(Serialize, Deserialize)]`
//! annotations only declare intent. This facade keeps those annotations
//! compiling by providing marker traits and no-op derive macros; swapping
//! the real `serde` back in requires no source change, only a manifest
//! edit, because the trait/derive paths match upstream.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
///
/// Upstream serde's required `serialize` method is intentionally absent:
/// without a real data-format crate available offline there is nothing to
/// serialize into, and an empty marker keeps `#[derive(Serialize)]`
/// working everywhere.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for seedable deserialization (upstream parity; unused).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
