//! Experiment E-CTL: closed-loop recovery drills against a live
//! loopback station.
//!
//! Spins an in-process station, runs the three seeded fault-injection
//! scenarios from `bsa-control` (scattered dead pixels, lost readout
//! channels, array-wide comparator drift), and reports whether the
//! controller restored effective yield to ≥90% of the pre-fault
//! baseline within the 32-frame observation budget. Each scenario is
//! run twice from the same seed to demonstrate the bit-identical
//! replay guarantee, and the full action traces are written as
//! `recovery_trace.json` for the CI artifact.
//!
//! Usage: `exp_control [--seed N] [--out DIR]`

use bsa_bench::{banner, pct, Table};
use bsa_control::scenario::{baseline_drift, channel_loss, dead_pixels, ScenarioReport};
use bsa_station::{Station, StationConfig, StationHandle};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;

const DEFAULT_SEED: u64 = 0xC0_17_20_05;

type Scenario = fn(SocketAddr, u64) -> Result<ScenarioReport, bsa_control::ControlError>;

fn start_station() -> StationHandle {
    Station::bind(StationConfig::default()).expect("bind loopback station")
}

fn run_once(scenario: Scenario, seed: u64) -> ScenarioReport {
    let station = start_station();
    let report = scenario(station.addr(), seed).expect("scenario runs");
    station.shutdown();
    report
}

fn main() {
    let mut seed = DEFAULT_SEED;
    let mut out = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                seed = v.parse().expect("--seed takes a u64");
            }
            "--out" => {
                let v = it.next().expect("--out needs a directory");
                out = PathBuf::from(v);
            }
            other => panic!("unknown argument {other:?} (try --seed/--out)"),
        }
    }

    banner(
        "E-CTL",
        "closed-loop recovery (DESIGN.md \u{a7}12)",
        "the controller restores \u{2265}90% of pre-fault yield within 32 frames \
         and replays bit-identically from its seed",
    );

    let scenarios: [(&str, Scenario); 3] = [
        ("dead-pixels", dead_pixels),
        ("channel-loss", channel_loss),
        ("baseline-drift", baseline_drift),
    ];

    let mut table = Table::new(
        format!("Recovery drills (seed {seed:#x})"),
        &[
            "scenario",
            "recovered",
            "ticks",
            "pre yield",
            "post yield",
            "replay",
        ],
    );
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bsa-recovery-trace/v1\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"scenarios\": [");
    let mut all_recovered = true;
    let mut all_replayed = true;
    for (i, (name, scenario)) in scenarios.iter().enumerate() {
        let first = run_once(*scenario, seed);
        let second = run_once(*scenario, seed);
        let replayed = first.trace.to_json() == second.trace.to_json();
        all_recovered &= first.recovered;
        all_replayed &= replayed;
        table.add_row(vec![
            (*name).to_string(),
            if first.recovered { "yes" } else { "NO" }.to_string(),
            first.ticks.to_string(),
            pct(f64::from(first.pre_yield_permille) / 1000.0),
            pct(f64::from(first.final_yield_permille) / 1000.0),
            if replayed {
                "bit-identical"
            } else {
                "DIVERGED"
            }
            .to_string(),
        ]);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"recovered\": {},", first.recovered);
        let _ = writeln!(json, "      \"ticks\": {},", first.ticks);
        let _ = writeln!(
            json,
            "      \"pre_yield_permille\": {},",
            first.pre_yield_permille
        );
        let _ = writeln!(
            json,
            "      \"final_yield_permille\": {},",
            first.final_yield_permille
        );
        let _ = writeln!(json, "      \"replay_bit_identical\": {replayed},");
        let _ = writeln!(json, "      \"trace\": {}", first.trace.to_json());
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    table.print();
    std::fs::create_dir_all(&out).expect("create output directory");
    let path = out.join("recovery_trace.json");
    std::fs::write(&path, &json).expect("write recovery_trace.json");
    println!("\nwrote {}", path.display());

    assert!(all_recovered, "a scenario failed to recover");
    assert!(all_replayed, "a scenario trace diverged between replays");
    println!("all scenarios recovered; traces replay bit-identically");
}
