//! Seeded interprocedural violations for `flow.summary` (semantic lint
//! fixture — lexed and parsed, never compiled).
//!
//! `flow.summary` fires when a call passes a constant index to a
//! function whose summary proves that parameter unconditionally indexes
//! another parameter, and the caller's own interval facts prove the
//! passed sequence is too short. The unmarked callers at the bottom are
//! the negative space: in-bounds constants and self-guarding callees.

/// The callee indexes `xs` with `i` unconditionally: its summary
/// publishes the requirement `i < xs.len()`.
fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

/// Constant index 9 into an exactly-4-element array: definite
/// out-of-bounds across the function boundary.
fn caller_too_short() -> u32 {
    let a = [0u32; 4];
    pick(&a, 9) //~ flow.summary
}

/// The same contract violated through a second caller with a different
/// local length fact.
fn caller_one_past_end() -> u32 {
    let small = [1u32; 2];
    pick(&small, 2) //~ flow.summary
}

// ---------------------------------------------------------------------------
// Negative space — must stay silent
// ---------------------------------------------------------------------------

/// Constant index strictly below the proven length.
fn caller_in_bounds() -> u32 {
    let a = [0u32; 4];
    pick(&a, 3)
}

/// A callee that guards its own index publishes no requirement.
fn pick_guarded(xs: &[u32], i: usize) -> u32 {
    if i < xs.len() {
        xs[i]
    } else {
        0
    }
}

fn caller_of_guarded() -> u32 {
    let a = [0u32; 4];
    pick_guarded(&a, 9)
}
