//! Redundant-spot layouts and majority voting for fault tolerance.
//!
//! A microarray die loses individual sites to fabrication defects and
//! in-field faults; the assay-level defense is redundancy. Each target's
//! probe is spotted on several sites, the replicates are *interleaved*
//! across the array (replicate r of target t at spot `r·targets + t`) so
//! that a clustered failure — a dead row, a lost readout channel — never
//! wipes out all replicates of one target, and the per-target call is a
//! majority vote over the replicates that survived the chip's health
//! screen. With three replicates and ≤ 10 % random site faults, a
//! genotyping panel still calls correctly.

use serde::{Deserialize, Serialize};

/// Replicated-spot placement of a probe panel on a sensor array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedundantLayout {
    targets: usize,
    replicates: usize,
}

/// One target's majority-voted call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VotedCall {
    /// Usable replicates voting "match".
    pub votes_match: usize,
    /// Usable replicates voting "mismatch".
    pub votes_mismatch: usize,
}

impl VotedCall {
    /// Replicates that contributed a vote (survived the health screen).
    pub fn usable_replicates(&self) -> usize {
        self.votes_match + self.votes_mismatch
    }

    /// The majority call. Ties — and the no-usable-replicate case —
    /// resolve to mismatch: a spurious positive is the costlier error in
    /// a genotyping panel.
    pub fn matched(&self) -> bool {
        self.votes_match > self.votes_mismatch
    }

    /// `true` when the vote carries no majority: no usable replicate at
    /// all, or an exact tie.
    pub fn is_inconclusive(&self) -> bool {
        self.votes_match == self.votes_mismatch
    }

    /// Fraction of usable replicates agreeing with the majority call
    /// (0 when no replicate is usable).
    pub fn confidence(&self) -> f64 {
        let n = self.usable_replicates();
        if n == 0 {
            0.0
        } else {
            self.votes_match.max(self.votes_mismatch) as f64 / n as f64
        }
    }
}

impl RedundantLayout {
    /// A layout spotting each of `targets` probes on `replicates` sites.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(targets: usize, replicates: usize) -> Self {
        assert!(targets > 0, "a layout needs at least one target");
        assert!(replicates > 0, "a layout needs at least one replicate");
        Self {
            targets,
            replicates,
        }
    }

    /// Number of distinct targets.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Replicates per target.
    pub fn replicates(&self) -> usize {
        self.replicates
    }

    /// Total spots the layout occupies (`targets · replicates`).
    pub fn total_spots(&self) -> usize {
        self.targets * self.replicates
    }

    /// Target spotted at `spot`, or `None` past the end of the layout
    /// (spare sites on a larger die).
    pub fn target_of_spot(&self, spot: usize) -> Option<usize> {
        if spot < self.total_spots() {
            Some(spot % self.targets)
        } else {
            None
        }
    }

    /// Spot indices carrying one target's replicates.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn replicate_spots(&self, target: usize) -> Vec<usize> {
        assert!(target < self.targets, "target {target} out of range");
        (0..self.replicates)
            .map(|r| r * self.targets + target)
            .collect()
    }

    /// Expands one item per target into one item per spot, in layout
    /// order — used to build the spotting list for the chip.
    ///
    /// # Panics
    ///
    /// Panics if `per_target.len() != targets`.
    pub fn expand<T: Clone>(&self, per_target: &[T]) -> Vec<T> {
        assert_eq!(
            per_target.len(),
            self.targets,
            "expected {} items, got {}",
            self.targets,
            per_target.len()
        );
        (0..self.total_spots())
            .map(|spot| per_target[spot % self.targets].clone())
            .collect()
    }

    /// Majority-votes per-spot match flags down to per-target calls.
    /// Spots flagged unusable by the chip's health screen are excluded
    /// from the vote. `spot_matches` and `usable` may be longer than the
    /// layout (spare sites); the excess is ignored.
    ///
    /// # Panics
    ///
    /// Panics if either slice is shorter than [`Self::total_spots`], or
    /// if the two slices differ in length.
    pub fn vote(&self, spot_matches: &[bool], usable: &[bool]) -> Vec<VotedCall> {
        assert_eq!(
            spot_matches.len(),
            usable.len(),
            "calls and mask must align"
        );
        assert!(
            spot_matches.len() >= self.total_spots(),
            "layout covers {} spots, got {} calls",
            self.total_spots(),
            spot_matches.len()
        );
        let mut votes = vec![
            VotedCall {
                votes_match: 0,
                votes_mismatch: 0,
            };
            self.targets
        ];
        for spot in 0..self.total_spots() {
            if !usable[spot] {
                continue;
            }
            let v = &mut votes[spot % self.targets];
            if spot_matches[spot] {
                v.votes_match += 1;
            } else {
                v.votes_mismatch += 1;
            }
        }
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicates_are_interleaved_not_blocked() {
        let layout = RedundantLayout::new(4, 3);
        assert_eq!(layout.total_spots(), 12);
        assert_eq!(layout.replicate_spots(1), vec![1, 5, 9]);
        assert_eq!(layout.target_of_spot(6), Some(2));
        assert_eq!(layout.target_of_spot(12), None);
    }

    #[test]
    fn expand_replicates_each_probe() {
        let layout = RedundantLayout::new(3, 2);
        let spotted = layout.expand(&["a", "b", "c"]);
        assert_eq!(spotted, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn unanimous_votes_pass_through() {
        let layout = RedundantLayout::new(2, 3);
        // target 0 matches everywhere, target 1 nowhere.
        let calls = [true, false, true, false, true, false];
        let usable = [true; 6];
        let votes = layout.vote(&calls, &usable);
        assert!(votes[0].matched());
        assert!(!votes[1].matched());
        assert_eq!(votes[0].confidence(), 1.0);
    }

    #[test]
    fn one_faulty_replicate_is_outvoted() {
        let layout = RedundantLayout::new(2, 3);
        // target 0's replicate at spot 2 reads dead (mismatch).
        let calls = [true, false, false, false, true, false];
        let usable = [true; 6];
        let votes = layout.vote(&calls, &usable);
        assert!(votes[0].matched(), "2-of-3 majority must hold");
        assert!((votes[0].confidence() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn masked_replicate_is_excluded_from_the_vote() {
        let layout = RedundantLayout::new(2, 3);
        // Spot 2 (target 0) is dead: its bogus mismatch is masked out.
        let calls = [true, false, false, false, true, false];
        let mut usable = [true; 6];
        usable[2] = false;
        let votes = layout.vote(&calls, &usable);
        assert_eq!(votes[0].usable_replicates(), 2);
        assert!(votes[0].matched());
        assert_eq!(votes[0].confidence(), 1.0);
    }

    #[test]
    fn tie_and_empty_votes_are_inconclusive_mismatches() {
        let layout = RedundantLayout::new(1, 2);
        let tie = layout.vote(&[true, false], &[true, true]);
        assert!(tie[0].is_inconclusive());
        assert!(!tie[0].matched());
        let empty = layout.vote(&[true, true], &[false, false]);
        assert!(empty[0].is_inconclusive());
        assert!(!empty[0].matched());
        assert_eq!(empty[0].confidence(), 0.0);
    }

    #[test]
    fn spare_spots_beyond_the_layout_are_ignored() {
        let layout = RedundantLayout::new(2, 2);
        let calls = [true, false, true, false, true, true];
        let usable = [true; 6];
        let votes = layout.vote(&calls, &usable);
        assert_eq!(votes.len(), 2);
        assert_eq!(votes[0].votes_match, 2);
        assert_eq!(votes[1].votes_mismatch, 2);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        RedundantLayout::new(3, 0);
    }
}
