//! Criterion bench for experiment E-F2 (paper Fig. 2): hybridization
//! kinetics, the full assay protocol, and the redox-cycling current model
//! with its single-electrode baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_electrochem::assay::{AssayConditions, SpottedSite};
use bsa_electrochem::hybridization::HybridizationModel;
use bsa_electrochem::redox::RedoxCyclingModel;
use bsa_electrochem::sequence::DnaSequence;
use bsa_units::consts::ROOM_TEMPERATURE;
use bsa_units::{Molar, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_kinetics(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let probe = DnaSequence::random(20, &mut rng);
    let target = probe.reverse_complement();
    let model = HybridizationModel::default();
    c.bench_function("f2_langmuir_coverage", |b| {
        b.iter(|| {
            black_box(model.coverage_after(
                black_box(&probe),
                black_box(&target),
                Molar::from_nano(100.0),
                ROOM_TEMPERATURE,
                0.0,
                Seconds::new(3600.0),
            ))
        });
    });
}

fn bench_assay_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_assay");
    group.sample_size(20);
    let mut rng = SmallRng::seed_from_u64(2);
    let probe = DnaSequence::random(20, &mut rng);
    let cond = AssayConditions::default();
    for mm in [0usize, 2] {
        let target = probe.reverse_complement().with_mismatches(mm);
        group.bench_with_input(BenchmarkId::new("protocol", mm), &target, |b, t| {
            let site = SpottedSite::new(probe.clone());
            b.iter(|| black_box(site.run(t, Molar::from_nano(100.0), &cond)));
        });
    }
    group.finish();
}

fn bench_redox_models(c: &mut Criterion) {
    let model = RedoxCyclingModel::default();
    c.bench_function("f2_redox_cycling_current", |b| {
        b.iter(|| black_box(model.sensor_current(black_box(0.5))));
    });
    c.bench_function("f2_single_electrode_baseline", |b| {
        b.iter(|| black_box(model.single_electrode_current(black_box(0.5))));
    });
}

fn bench_alignment(c: &mut Criterion) {
    // Probe sliding along a 100× longer target (the paper's long targets).
    let mut rng = SmallRng::seed_from_u64(3);
    let probe = DnaSequence::random(20, &mut rng);
    let target = DnaSequence::random(2000, &mut rng);
    c.bench_function("f2_best_alignment_20mer_vs_2000mer", |b| {
        b.iter(|| black_box(probe.mismatches_with(black_box(&target))));
    });
}

criterion_group!(
    benches,
    bench_kinetics,
    bench_assay_protocol,
    bench_redox_models,
    bench_alignment
);
criterion_main!(benches);
