//! Typed failures of the control loop.

use bsa_station::ClientError;
use std::fmt;

/// Why the controller could not complete an operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum ControlError {
    /// The station client failed in a way retries do not cover
    /// (protocol violation, typed server error, unexpected reply).
    Client(ClientError),
    /// Every retry of a deadline-bounded request timed out.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A scenario or target was internally inconsistent (e.g. a DNA
    /// target handed to a neuro observation path).
    BadTarget(String),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Client(err) => write!(f, "station client failure: {err}"),
            Self::Exhausted { attempts } => {
                write!(f, "request timed out on all {attempts} attempts")
            }
            Self::BadTarget(what) => write!(f, "bad control target: {what}"),
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Client(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ClientError> for ControlError {
    fn from(err: ClientError) -> Self {
        Self::Client(err)
    }
}
