//! `reach.panic` — transitive panic reachability over the workspace call
//! graph.
//!
//! The lexical `panic.*` rules flag panic sites *where they are written*;
//! this pass flags public API functions in the deterministic crates
//! (`bsa-core`, `bsa-dsp`, `bsa-link`) from which a panic site is
//! reachable *through calls*, possibly across crates. A pub fn that
//! panics directly is lexical territory and is not re-reported here.
//!
//! Suppression policy: an allowlisted `panic.indexing` budget is a local
//! bounds proof — indexing sinks in such files do **not** propagate — and
//! so is a machine-checked `flow.range` proof (the `proven` map carries
//! the lines whose every index site interval analysis discharged). An
//! allowlisted `.expect()`/`.unwrap()`/panicking macro is a *caller
//! contract* (e.g. a documented panicking constructor), so those sinks
//! always propagate: every public entry point that can reach one must
//! either be fixed or hold its own justification.
//!
//! Call resolution (DESIGN.md §11): `Type::name(…)` and `Self::name(…)`
//! resolve exactly against impl-qualified definitions; bare `name(…)` and
//! `.name(…)` method calls resolve only when `name` is unique among every
//! fn the workspace defines (ambiguous or std names produce no edge).

use crate::allow::Allowlist;
use crate::parser::{CallSite, ParsedFile};
use crate::rules::{panic_pass, violation, Violation};
use crate::workspace::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Per-file set of lines whose every index site `flow.range` proved in
/// bounds (see [`crate::flow::FileProofs::fully_proven`]).
pub type ProvenLines = BTreeMap<String, BTreeSet<usize>>;

/// Where `reach.panic` findings are reported: the crates whose public API
/// the station and downstream analysis pipelines call into.
const REPORT_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/dsp/src/",
    "crates/link/src/",
    "crates/control/src/",
    "crates/store/src/",
];

/// Runs the reachability analysis over the whole workspace. `sources` and
/// `parsed` must be index-aligned (one `ParsedFile` per `SourceFile`).
pub fn reach_pass(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    allow: &Allowlist,
    proven: &ProvenLines,
    out: &mut Vec<Violation>,
) {
    let graph = Graph::build(sources, parsed, allow, proven);
    let mut memo: Vec<State> = vec![State::Unvisited; graph.fns.len()];
    for id in 0..graph.fns.len() {
        let Some(node) = graph.fns.get(id) else {
            continue;
        };
        if !node.is_pub || node.name == "main" {
            continue;
        }
        if !REPORT_PREFIXES.iter().any(|p| node.file.starts_with(p)) {
            continue;
        }
        // Direct panic sites are the lexical rules' job.
        if node.sink.is_some() {
            continue;
        }
        if let Some(trace) = search(id, &graph, &mut memo) {
            out.push(violation(
                &node.file,
                node.line,
                "reach.panic",
                format!(
                    "pub fn `{}` can panic transitively: `{}` → {trace}",
                    node.qualified, node.qualified
                ),
            ));
        }
    }
}

/// One node of the call graph.
struct Node {
    file: String,
    qualified: String,
    name: String,
    is_pub: bool,
    line: usize,
    /// Description of the first non-suppressed direct panic site, if any.
    sink: Option<String>,
    /// Resolved outgoing edges (indices into `Graph::fns`).
    edges: Vec<usize>,
}

struct Graph {
    fns: Vec<Node>,
}

impl Graph {
    fn build(
        sources: &[SourceFile],
        parsed: &[ParsedFile],
        allow: &Allowlist,
        proven: &ProvenLines,
    ) -> Self {
        // Flatten every fn in the workspace into one node list.
        let mut fns: Vec<Node> = Vec::new();
        let mut raw_calls: Vec<Vec<CallSite>> = Vec::new();
        for (fi, pf) in parsed.iter().enumerate() {
            for f in &pf.fns {
                let body = sources
                    .get(fi)
                    .and_then(|s| s.tokens.get(f.body.clone()))
                    .unwrap_or(&[]);
                fns.push(Node {
                    file: pf.path.clone(),
                    qualified: f.qualified.clone(),
                    name: f.name.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    sink: direct_sink(&pf.path, body, allow, proven),
                    edges: Vec::new(),
                });
                raw_calls.push(f.calls.clone());
            }
        }

        // Name indexes for resolution.
        let mut by_qualified: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, node) in fns.iter().enumerate() {
            by_qualified
                .entry(node.qualified.as_str())
                .or_default()
                .push(id);
            by_name.entry(node.name.as_str()).or_default().push(id);
        }

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        for calls in &raw_calls {
            let mut resolved = Vec::new();
            for call in calls {
                if let Some(target) = resolve(call, &by_qualified, &by_name) {
                    if !resolved.contains(&target) {
                        resolved.push(target);
                    }
                }
            }
            edges.push(resolved);
        }
        for (node, e) in fns.iter_mut().zip(edges) {
            node.edges = e;
        }
        Self { fns }
    }
}

/// Resolves one call site to a workspace fn, or `None` (std call, macro
/// already filtered, or ambiguous name).
fn resolve(
    call: &CallSite,
    by_qualified: &BTreeMap<&str, Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Option<usize> {
    if let Some(q) = &call.qualifier {
        let key = format!("{q}::{}", call.callee);
        return match by_qualified.get(key.as_str()) {
            Some(ids) if ids.len() == 1 => ids.first().copied(),
            _ => None,
        };
    }
    match by_name.get(call.callee.as_str()) {
        Some(ids) if ids.len() == 1 => ids.first().copied(),
        _ => None,
    }
}

/// Runs the lexical panic pass over one fn body and returns the first
/// non-suppressed sink, formatted for the report. Indexing sinks are
/// suppressed either by a file-level allowlist budget (human-reviewed
/// bounds justification) or by a `flow.range` proof for that exact line.
fn direct_sink(
    file: &str,
    body: &[crate::lexer::Token],
    allow: &Allowlist,
    proven: &ProvenLines,
) -> Option<String> {
    let mut vs = Vec::new();
    panic_pass(file, body, &mut vs);
    vs.iter()
        .find(|v| {
            if v.rule != "panic.indexing" {
                return true;
            }
            let budgeted = allow.budget_for(file, "panic.indexing").is_some();
            let flow_proven = proven
                .get(file)
                .is_some_and(|lines| lines.contains(&v.line));
            !(budgeted || flow_proven)
        })
        .map(|v| format!("{} at {file}:{}", sink_label(v.rule), v.line))
}

fn sink_label(rule: &str) -> &'static str {
    match rule {
        "panic.unwrap" => "`.unwrap()`",
        "panic.expect" => "`.expect()`",
        "panic.macro" => "panicking macro",
        _ => "unchecked indexing",
    }
}

#[derive(Clone, PartialEq)]
enum State {
    Unvisited,
    InProgress,
    Done(Option<String>),
}

/// Depth-first search for a path from `id` to any sink, memoized. Cycles
/// are cut by treating in-progress nodes as sink-free (an approximation:
/// a cycle member can be cached as clean even when a later-explored path
/// would reach a sink — acceptable for a linter that errs quiet).
fn search(id: usize, graph: &Graph, memo: &mut Vec<State>) -> Option<String> {
    match memo.get(id) {
        Some(State::Done(r)) => return r.clone(),
        Some(State::InProgress) => return None,
        _ => {}
    }
    if let Some(slot) = memo.get_mut(id) {
        *slot = State::InProgress;
    }
    let edges: Vec<usize> = graph
        .fns
        .get(id)
        .map(|n| n.edges.clone())
        .unwrap_or_default();
    let mut result: Option<String> = None;
    for target in edges {
        let Some(node) = graph.fns.get(target) else {
            continue;
        };
        if let Some(sink) = &node.sink {
            result = Some(format!("`{}` → {sink}", node.qualified));
            break;
        }
        if let Some(sub) = search(target, graph, memo) {
            result = Some(format!("`{}` → {sub}", node.qualified));
            break;
        }
    }
    if let Some(slot) = memo.get_mut(id) {
        *slot = State::Done(result.clone());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parser::parse_file;

    fn run(files: &[(&str, &str)], allow: &Allowlist) -> Vec<Violation> {
        run_proven(files, allow, &ProvenLines::new())
    }

    fn run_proven(
        files: &[(&str, &str)],
        allow: &Allowlist,
        proven: &ProvenLines,
    ) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile {
                path: path.to_string(),
                tokens: strip_test_code(&lex(src)),
            })
            .collect();
        let parsed: Vec<ParsedFile> = sources
            .iter()
            .map(|s| parse_file(&s.path, &s.tokens))
            .collect();
        let mut out = Vec::new();
        reach_pass(&sources, &parsed, allow, proven, &mut out);
        out
    }

    #[test]
    fn transitive_expect_is_flagged_across_crates() {
        let core = "pub fn api() -> u8 { build() }\nfn build() -> u8 { helper_new() }";
        let circuit = "pub fn helper_new() -> u8 { source().expect(\"msg\") }";
        let v = run(
            &[
                ("crates/core/src/lib.rs", core),
                ("crates/circuit/src/lib.rs", circuit),
            ],
            &Allowlist::default(),
        );
        // `api` reaches the expect through two edges; `helper_new` panics
        // directly but lives outside the report prefixes; `build` is
        // private.
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "reach.panic");
        assert_eq!(f.file, "crates/core/src/lib.rs");
        assert!(f.message.contains("helper_new"), "{}", f.message);
    }

    #[test]
    fn direct_panics_are_left_to_the_lexical_rules() {
        let src = "pub fn direct() -> u8 { x.unwrap() }";
        let v = run(&[("crates/core/src/lib.rs", src)], &Allowlist::default());
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn allowlisted_indexing_does_not_propagate_but_expect_does() {
        let toml = "[[allow]]\nfile = \"crates/dsp/src/inner.rs\"\nrule = \"panic.indexing\"\nmax = 1\nreason = \"bounds proven by construction\"\n";
        let allow = Allowlist::parse(toml).expect("allowlist");
        let caller =
            "pub fn entry(x: &[f64]) -> f64 { pick(x) }\npub fn entry2() -> u8 { fetch() }";
        let inner = "pub fn pick(x: &[f64]) -> f64 { x[0] }\npub fn fetch() -> u8 { y.expect(\"caller contract\") }";
        let v = run(
            &[
                ("crates/dsp/src/lib.rs", caller),
                ("crates/dsp/src/inner.rs", inner),
            ],
            &allow,
        );
        // `entry` → pick: indexing suppressed by the budget. `entry2` →
        // fetch: the expect propagates. `pick`/`fetch` panic directly →
        // lexical territory (and `pick`'s sink is suppressed anyway).
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("fetch"), "{}", f.message);
    }

    #[test]
    fn flow_proven_lines_do_not_propagate() {
        let caller = "pub fn entry(x: &[f64]) -> f64 { pick(x) }";
        let inner = "pub fn pick(x: &[f64]) -> f64 { x[0] }";
        let files = [
            ("crates/dsp/src/lib.rs", caller),
            ("crates/dsp/src/inner.rs", inner),
        ];
        // Without a proof the indexing sink propagates to `entry`.
        let unproven = run(&files, &Allowlist::default());
        assert_eq!(unproven.len(), 1, "{unproven:#?}");

        // With the sink's line proven by flow.range it is a local bounds
        // proof, exactly like an allowlist budget.
        let mut proven = ProvenLines::new();
        proven
            .entry("crates/dsp/src/inner.rs".to_string())
            .or_default()
            .insert(1);
        let v = run_proven(&files, &Allowlist::default(), &proven);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn ambiguous_bare_names_produce_no_edge() {
        let a = "pub fn caller() { work(); }";
        let b = "fn work() { x.unwrap(); }";
        let c = "fn work() {}";
        let v = run(
            &[
                ("crates/core/src/a.rs", a),
                ("crates/core/src/b.rs", b),
                ("crates/dsp/src/c.rs", c),
            ],
            &Allowlist::default(),
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn self_and_method_calls_resolve() {
        let src = r#"
            pub struct Engine;
            impl Engine {
                pub fn run(&self) { self.step() }
                fn step(&self) { Self::finish() }
                fn finish() { panic!("boom") }
            }
        "#;
        let v = run(&[("crates/link/src/lib.rs", src)], &Allowlist::default());
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert!(f.message.contains("Engine::step"), "{}", f.message);
        assert!(f.message.contains("Engine::finish"), "{}", f.message);
    }

    #[test]
    fn recursion_terminates() {
        let src = "pub fn a() { b() }\nfn b() { a() }";
        let v = run(&[("crates/core/src/lib.rs", src)], &Allowlist::default());
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn out_of_scope_crates_are_not_reported() {
        let src = "pub fn api() { inner() }\nfn inner() { x.unwrap() }";
        let v = run(&[("crates/station/src/lib.rs", src)], &Allowlist::default());
        assert!(v.is_empty(), "{v:#?}");
    }
}
