//! Action-potential detection on per-pixel time series.
//!
//! The neural chip delivers 2 k samples/s per pixel; spikes are ~1 ms
//! transients of 100 µV – 5 mV riding on per-pixel offsets and slow droop.
//! Detection: remove the baseline, estimate the noise floor robustly
//! (MAD), then threshold either the signal itself or its nonlinear energy
//! (NEO), with a refractory period to avoid double counting.

use crate::stats::{mad_sigma_with, median_with};
use serde::{Deserialize, Serialize};

/// Spike-detection method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionMethod {
    /// Absolute amplitude threshold at `k`·σ of the noise.
    AmplitudeThreshold,
    /// Nonlinear energy operator ψ\[n\] = x²\[n\] − x\[n−1\]·x\[n+1\],
    /// thresholded at `k`·σ of ψ's noise — emphasizes short transients.
    Neo,
}

/// Spike detector configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeDetector {
    /// Detection method.
    pub method: DetectionMethod,
    /// Threshold in units of the robust noise σ.
    pub threshold_sigmas: f64,
    /// Refractory period in samples after a detection.
    pub refractory_samples: usize,
}

impl Default for SpikeDetector {
    /// Amplitude detection at 4.5 σ with 4-sample (2 ms at 2 kfps)
    /// refractory.
    fn default() -> Self {
        Self {
            method: DetectionMethod::AmplitudeThreshold,
            threshold_sigmas: 4.5,
            refractory_samples: 4,
        }
    }
}

/// Reusable working memory for [`SpikeDetector::detect_into`], so
/// detection sweeps over many pixels allocate once instead of per series.
#[derive(Debug, Clone, Default)]
pub struct SpikeScratch {
    centered: Vec<f64>,
    feature: Vec<f64>,
    sort: Vec<f64>,
}

impl SpikeScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpikeDetector {
    /// Detects spikes in a series, returning sample indices of detections.
    ///
    /// The series is median-subtracted first; the noise σ comes from the
    /// MAD, so the spikes themselves barely bias it.
    pub fn detect(&self, series: &[f64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.detect_into(series, &mut SpikeScratch::new(), &mut out);
        out
    }

    /// [`detect`](Self::detect) with caller-provided scratch space and
    /// output buffer (cleared and refilled) — the allocation-free form
    /// for per-pixel sweeps.
    pub fn detect_into(&self, series: &[f64], scratch: &mut SpikeScratch, out: &mut Vec<usize>) {
        out.clear();
        if series.len() < 3 {
            return;
        }
        // len >= 3 makes the median/MAD calls infallible; the fallbacks
        // only defend the error-type boundary.
        let base = median_with(series, &mut scratch.sort).unwrap_or(0.0);
        scratch.centered.clear();
        scratch.centered.extend(series.iter().map(|x| x - base));
        let centered = &scratch.centered;

        let sigma = match self.method {
            DetectionMethod::AmplitudeThreshold => {
                let sigma = mad_sigma_with(centered, &mut scratch.sort)
                    .unwrap_or(0.0)
                    .max(1e-30);
                scratch.feature.clear();
                scratch.feature.extend(centered.iter().map(|x| x.abs()));
                sigma
            }
            DetectionMethod::Neo => {
                scratch.feature.clear();
                scratch.feature.resize(centered.len(), 0.0);
                for i in 1..centered.len() - 1 {
                    scratch.feature[i] =
                        centered[i] * centered[i] - centered[i - 1] * centered[i + 1];
                }
                mad_sigma_with(&scratch.feature, &mut scratch.sort)
                    .unwrap_or(0.0)
                    .max(1e-30)
            }
        };
        let feature = &scratch.feature;

        let threshold = self.threshold_sigmas * sigma;
        let mut skip_until = 0usize;
        let mut i = 0;
        while i < feature.len() {
            let here = feature.get(i).copied().unwrap_or(0.0);
            if i >= skip_until && here > threshold {
                // Align to the local maximum within the refractory window.
                let end = (i + self.refractory_samples.max(1)).min(feature.len());
                let mut peak = i;
                let mut peak_value = here;
                for (j, &v) in feature.iter().enumerate().take(end).skip(i + 1) {
                    if v > peak_value {
                        peak = j;
                        peak_value = v;
                    }
                }
                out.push(peak);
                skip_until = peak + self.refractory_samples.max(1);
                i = skip_until;
            } else {
                i += 1;
            }
        }
    }
}

/// Scoring of detections against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionScore {
    /// Ground-truth events matched by a detection.
    pub true_positives: usize,
    /// Detections with no matching ground-truth event.
    pub false_positives: usize,
    /// Ground-truth events with no detection.
    pub false_negatives: usize,
}

impl DetectionScore {
    /// Recall = TP / (TP + FN); 1.0 when there are no events.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision = TP / (TP + FP); 1.0 when there are no detections.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Matches detections to ground-truth event indices with a tolerance (in
/// samples); each truth event consumes at most one detection.
pub fn score_detections(detected: &[usize], truth: &[usize], tolerance: usize) -> DetectionScore {
    let mut used = vec![false; detected.len()];
    let mut tp = 0usize;
    for &t in truth {
        let hit = detected
            .iter()
            .enumerate()
            .find(|(k, &d)| !used[*k] && d.abs_diff(t) <= tolerance);
        if let Some((k, _)) = hit {
            used[k] = true;
            tp += 1;
        }
    }
    DetectionScore {
        true_positives: tp,
        false_positives: detected.len() - tp,
        false_negatives: truth.len() - tp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noise from a deterministic LCG + spikes of the given amplitude.
    fn synth(spike_at: &[usize], amp: f64, n: usize, noise: f64) -> Vec<f64> {
        let mut state = 99u64;
        let mut series: Vec<f64> = (0..n)
            .map(|_| {
                let mut sum = 0.0;
                for _ in 0..12 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    sum += (state >> 11) as f64 / (1u64 << 53) as f64;
                }
                (sum - 6.0) * noise
            })
            .collect();
        for &s in spike_at {
            if s < n {
                series[s] += amp;
                if s + 1 < n {
                    series[s + 1] -= 0.4 * amp; // biphasic tail
                }
            }
        }
        series
    }

    #[test]
    fn detects_clear_spikes() {
        let truth = [50, 120, 300, 480];
        let series = synth(&truth, 1.0, 600, 0.05);
        let det = SpikeDetector::default().detect(&series);
        let score = score_detections(&det, &truth, 2);
        assert_eq!(score.true_positives, 4);
        assert_eq!(score.false_positives, 0);
        assert!((score.f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn misses_subthreshold_spikes() {
        let truth = [100, 200];
        let series = synth(&truth, 0.1, 400, 0.05); // 2 σ spikes
        let det = SpikeDetector::default().detect(&series);
        let score = score_detections(&det, &truth, 2);
        assert!(score.recall() < 1.0);
    }

    #[test]
    fn refractory_prevents_double_counting() {
        let truth = [100];
        let mut series = synth(&truth, 1.0, 300, 0.02);
        series[101] += 0.8; // same event, adjacent sample
        let det = SpikeDetector::default().detect(&series);
        assert_eq!(det.len(), 1, "detections = {det:?}");
    }

    #[test]
    fn neo_detects_sharp_transients() {
        let truth = [80, 250];
        let series = synth(&truth, 0.6, 400, 0.05);
        let det = SpikeDetector {
            method: DetectionMethod::Neo,
            threshold_sigmas: 8.0,
            refractory_samples: 4,
        }
        .detect(&series);
        let score = score_detections(&det, &truth, 2);
        assert_eq!(score.true_positives, 2, "det = {det:?}");
    }

    #[test]
    fn neo_rejects_slow_drift_better_than_amplitude() {
        // Slow huge ramp + one small sharp spike.
        let n = 600;
        let mut series: Vec<f64> = (0..n).map(|k| 3.0 * (k as f64 / n as f64)).collect();
        let noise = synth(&[], 0.0, n, 0.01);
        for (s, x) in series.iter_mut().zip(noise.iter()) {
            *s += x;
        }
        series[300] += 0.4;
        series[301] -= 0.15;
        let neo = SpikeDetector {
            method: DetectionMethod::Neo,
            threshold_sigmas: 10.0,
            refractory_samples: 4,
        }
        .detect(&series);
        let neo_score = score_detections(&neo, &[300], 2);
        assert_eq!(neo_score.true_positives, 1, "neo = {neo:?}");
        assert!(neo_score.false_positives <= 1);
    }

    #[test]
    fn empty_and_tiny_series() {
        let d = SpikeDetector::default();
        assert!(d.detect(&[]).is_empty());
        assert!(d.detect(&[1.0, 2.0]).is_empty());
    }

    #[test]
    fn detect_into_reuses_scratch_across_series() {
        let det = SpikeDetector::default();
        let mut scratch = SpikeScratch::new();
        let mut out = Vec::new();
        for (truth, amp) in [(vec![50usize, 200], 1.0), (vec![30, 90, 150], 0.8)] {
            let series = synth(&truth, amp, 300, 0.04);
            det.detect_into(&series, &mut scratch, &mut out);
            assert_eq!(out, det.detect(&series));
        }
        // NEO path through the same scratch.
        let neo = SpikeDetector {
            method: DetectionMethod::Neo,
            threshold_sigmas: 8.0,
            refractory_samples: 4,
        };
        let series = synth(&[80, 250], 0.6, 400, 0.05);
        neo.detect_into(&series, &mut scratch, &mut out);
        assert_eq!(out, neo.detect(&series));
    }

    #[test]
    fn no_spikes_in_pure_noise() {
        let series = synth(&[], 0.0, 2000, 0.05);
        let det = SpikeDetector::default().detect(&series);
        // 4.5 σ on 2000 Gaussian samples: expect ≈0 crossings (p ≈ 7e-6).
        assert!(det.len() <= 1, "false detections: {det:?}");
    }

    #[test]
    fn score_handles_edge_cases() {
        let s = score_detections(&[], &[], 2);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.precision(), 1.0);
        let s = score_detections(&[5], &[], 2);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.recall(), 1.0);
        let s = score_detections(&[], &[5], 2);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn one_detection_matches_at_most_one_truth() {
        // Two truth events near one detection: only one TP.
        let s = score_detections(&[100], &[99, 101], 2);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_negatives, 1);
    }
}
