// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Typed physical quantities for biosensor-ASIC simulation.
//!
//! Every analog quantity that crosses a module boundary in this workspace is
//! a newtype over `f64` with an explicit unit: [`Volt`], [`Ampere`],
//! [`Farad`], [`Ohm`], [`Siemens`], [`Hertz`], [`Seconds`], [`Coulomb`],
//! [`Kelvin`], [`Meter`], [`SquareMeter`] and [`Molar`]. This makes it
//! impossible to, say, feed a comparator threshold (volts) where an
//! integration capacitor (farads) is expected — the class of mix-up that is
//! easy to make when modelling circuits like the current-to-frequency
//! converter of Thewes et al. (DATE 2005, Fig. 3) where pico-, nano-, micro-
//! and milli-scale values coexist.
//!
//! # Examples
//!
//! ```
//! use bsa_units::{Ampere, Farad, Volt};
//!
//! // Charging slope of the in-pixel integrator: dV/dt = I / C.
//! let sensor_current = Ampere::from_nano(1.0);
//! let c_int = Farad::from_femto(100.0);
//! let threshold = Volt::new(1.0);
//!
//! // Time to reach the comparator threshold.
//! let charge = threshold * c_int; // Coulomb
//! let t = charge / sensor_current; // Seconds
//! assert!((t.value() - 1e-4).abs() < 1e-12);
//! assert_eq!(format!("{t}"), "100 µs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod parse;
mod quantity;
mod types;

pub mod consts;
pub mod sweep;

pub use fmt::format_eng;
pub use parse::{parse_eng, ParseQuantityError};
pub use types::{
    Ampere, Coulomb, Farad, Hertz, Kelvin, Meter, Molar, Ohm, Seconds, Siemens, SquareMeter, Volt,
};
