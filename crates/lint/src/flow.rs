//! Intraprocedural dataflow: unit inference and interval proofs
//! (DESIGN.md §14).
//!
//! Two passes over each parsed function body:
//!
//! * **`flow.unit`** — tracks the physical dimension of local bindings
//!   through let-bindings, assignments and additive arithmetic. Facts are
//!   seeded three ways: typed parameters (`f: Hertz`), `bsa-units`
//!   constructors (`Hertz::new(..)`), and dimension-suggesting names
//!   (`bias_v`, `dt_s`, via [`suggested_unit_type`]). Mixing dimensions
//!   in a sum or assigning across dimensions is flagged — sites the
//!   purely syntactic `units.raw-f64` signature rule cannot see.
//! * **`flow.range`** — a bounded-interval prover for indexing and
//!   division. Scoped facts (`i + k < xs.len()`, `xs.len() > k`,
//!   `i <= xs.len()`) are harvested from loop headers, guards, asserts
//!   and clamping bindings; each `panic.indexing` site the facts cover is
//!   *discharged* (subtracted from the allowlist pressure and hidden from
//!   `reach.panic`), while definitely-out-of-bounds indices and division
//!   by a constant zero are reported as violations.
//!
//! Both passes are intraprocedural and flow-insensitive within a fact's
//! scope: facts carry a token range and are killed early by reassignment
//! or shrinking mutation of the sequence they constrain (see
//! [`kill_scan`]). Everything unproven is simply left to the existing
//! allowlist machinery — the prover only ever *removes* pressure, so a
//! missed pattern is conservative, never unsound.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::lexer::Token;
use crate::parser::{FnItem, ParsedFile};
use crate::rules::{index_site, suggested_unit_type, violation, Violation};
use crate::summary::{RetContract, Summaries};

/// The `bsa-units` newtypes recognised as dimension constructors.
const UNIT_TYPES: &[&str] = &[
    "Volt",
    "Ampere",
    "Farad",
    "Ohm",
    "Siemens",
    "Hertz",
    "Seconds",
    "Coulomb",
    "Kelvin",
    "Meter",
    "SquareMeter",
    "Molar",
];

/// Per-file interval-proof summary: for each source line, how many direct
/// index sites `panic.indexing` flags there and how many of them the
/// prover discharged.
#[derive(Debug, Default, Clone)]
pub struct FileProofs {
    /// line → (index sites on the line, sites proven in-bounds).
    pub lines: BTreeMap<usize, (usize, usize)>,
}

impl FileProofs {
    /// Lines where *every* index site is proven in-bounds. Violations on
    /// these lines are discharged before allowlist reconciliation, and
    /// `reach.panic` treats them as non-sinks.
    pub fn fully_proven(&self) -> BTreeSet<usize> {
        self.lines
            .iter()
            .filter(|(_, (sites, proven))| *sites > 0 && proven == sites)
            .map(|(line, _)| *line)
            .collect()
    }

    /// Total discharged sites (for the JSON report).
    pub fn proven_sites(&self) -> usize {
        self.lines.values().map(|(_, proven)| *proven).sum()
    }
}

/// Runs both dataflow passes over one file. `check_units` gates the
/// `flow.unit` pass (dimensioned-value crates only); the interval prover
/// always runs so proofs line up with wherever `panic.indexing` applies.
pub fn flow_pass(
    file: &str,
    tokens: &[Token],
    parsed: &ParsedFile,
    check_units: bool,
    summaries: &Summaries,
    out: &mut Vec<Violation>,
) -> FileProofs {
    let mut proofs = FileProofs::default();
    // Denominator first: every index site in the file, attributed by line,
    // so per-line totals match `panic_pass` exactly.
    for (i, t) in tokens.iter().enumerate() {
        if index_site(tokens, i) {
            proofs.lines.entry(t.line).or_insert((0, 0)).0 += 1;
        }
    }

    let mut proven_positions: BTreeSet<usize> = BTreeSet::new();
    for f in &parsed.fns {
        let facts = collect_facts(tokens, f, summaries);
        prove_sites(file, tokens, f, &facts, &mut proven_positions, out);
        division_check(file, tokens, f, &facts, out);
        if check_units {
            unit_pass(file, tokens, f, out);
        }
    }
    for pos in &proven_positions {
        if let Some(t) = tokens.get(*pos) {
            if let Some(entry) = proofs.lines.get_mut(&t.line) {
                entry.1 += 1;
            }
        }
    }
    proofs
}

// ---------------------------------------------------------------------------
// Interval facts
// ---------------------------------------------------------------------------

/// One interval fact, valid over a token-index scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Fact {
    /// `var + max_off < seq.len()` — proves `seq[var + c]` for
    /// `c <= max_off`, plus the range positions `seq[var..]` / `seq[..var]`.
    VarBound {
        var: String,
        seq: String,
        max_off: u64,
    },
    /// `var <= seq.len()` — proves only range positions `seq[var..]` and
    /// `seq[..var]` (e.g. a `partition_point` result).
    UpToLen { var: String, seq: String },
    /// `seq.len() > min_len` — proves `seq[c]` for constant `c <= min_len`.
    MinLen { seq: String, min_len: u64 },
    /// `seq.len() == len` exactly (a `[e; N]` array binding) — proves
    /// constant indices below `len` and *refutes* those at or above it.
    ExactLen { seq: String, len: u64 },
    /// `seq.len() == path` for a symbolic count (a `vec![e; n]` binding or
    /// `assert_eq!(seq.len(), n)`) — combines with [`Fact::VarLtPath`]
    /// and with `seq[e % path]` modulo indices.
    EqLenPath { seq: String, path: String },
    /// `var < path` for a symbolic bound (a guard against a count
    /// variable, or a function-summary contract at a call site).
    VarLtPath { var: String, path: String },
    /// `var <= max` for a constant bound (a `.min(c)`-shaped function
    /// summary) — proves `seq[var + c]` once a length fact covers it.
    VarLeConst { var: String, max: u64 },
    /// `var` is bound to the integer constant zero (division tracking).
    ZeroConst { var: String },
}

#[derive(Debug, Clone)]
pub(crate) struct ScopedFact {
    pub(crate) fact: Fact,
    /// Token-index range (absolute within the file) where the fact holds.
    pub(crate) scope: Range<usize>,
    /// When `Some(k)`, the fact came from a `seq.len() - k` subtraction
    /// and is only valid if `seq.len() >= k` where it was formed — in a
    /// release build the subtraction would otherwise wrap rather than
    /// panic, and the wrapped value reaches the index. Such facts are
    /// dropped after collection unless an unconditional length fact
    /// covers them (see [`collect_facts`]).
    needs_len: Option<u64>,
}

/// Sequence methods that can shrink a `Vec`/`String`, invalidating any
/// captured length bound. Growth (`push`, `extend`, …) preserves every
/// fact we track and is deliberately not listed.
const SHRINK_METHODS: &[&str] = &[
    "clear",
    "truncate",
    "pop",
    "remove",
    "retain",
    "drain",
    "resize",
    "swap_remove",
    "split_off",
    "dedup",
];

pub(crate) fn tok_ident(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| t.ident())
}

pub(crate) fn tok_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

pub(crate) fn tok_int(tokens: &[Token], i: usize) -> Option<u64> {
    tokens.get(i).and_then(|t| t.int_value())
}

/// Finds the matching close bracket for the open bracket at `open`
/// (`(`, `[` or `{`), counting nesting of that pair only.
pub(crate) fn matching(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open) {
        Some(t) if t.is_punct('(') => ('(', ')'),
        Some(t) if t.is_punct('[') => ('[', ']'),
        Some(t) if t.is_punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// End of the innermost block enclosing position `from` (exclusive): the
/// first `}` whose matching `{` opened before `from`. Scanning forward,
/// that is the first point where brace depth goes negative.
pub(crate) fn enclosing_block_end(tokens: &[Token], from: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j < limit {
        match tokens.get(j) {
            Some(t) if t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    limit
}

/// Parses a dotted/`::` path *ending* at token `end` (inclusive), walking
/// backwards. Returns the normalized path string (`self.rows`,
/// `Base::ALL`). `None` if `end` is not an identifier.
pub(crate) fn path_ending_at(tokens: &[Token], end: usize) -> Option<String> {
    tok_ident(tokens, end)?;
    let mut parts: Vec<String> = Vec::new();
    let mut i = end;
    loop {
        let seg = tok_ident(tokens, i)?;
        parts.push(seg.to_string());
        if i >= 2 && tok_punct(tokens, i - 1, '.') && tok_ident(tokens, i - 2).is_some() {
            parts.push(".".to_string());
            i -= 2;
        } else if i >= 3
            && tok_punct(tokens, i - 1, ':')
            && tok_punct(tokens, i - 2, ':')
            && tok_ident(tokens, i - 3).is_some()
        {
            parts.push("::".to_string());
            i -= 3;
        } else {
            break;
        }
    }
    parts.reverse();
    Some(parts.concat())
}

/// Parses a dotted/`::` path *starting* at token `start`. Returns the
/// normalized string and the index one past its last token.
pub(crate) fn path_starting_at(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    tok_ident(tokens, start)?;
    let mut end = start;
    loop {
        if tok_punct(tokens, end + 1, '.') && tok_ident(tokens, end + 2).is_some() {
            end += 2;
        } else if tok_punct(tokens, end + 1, ':')
            && tok_punct(tokens, end + 2, ':')
            && tok_ident(tokens, end + 3).is_some()
        {
            end += 3;
        } else {
            break;
        }
    }
    path_ending_at(tokens, end).map(|p| (p, end + 1))
}

/// Matches `PATH . len ( )` starting at `start`; returns the path and the
/// index one past the closing paren.
pub(crate) fn len_call_at(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    let (path, after) = path_starting_at(tokens, start)?;
    // The path parser swallowed `.len` as its final segment.
    let stripped = path.strip_suffix(".len")?;
    if tok_punct(tokens, after, '(') && tok_punct(tokens, after + 1, ')') {
        Some((stripped.to_string(), after + 2))
    } else {
        None
    }
}

/// Matches `PATH . len ( ) [- k]` filling `range`; `k = 0` when there is
/// no subtraction. Returns `(path, k)` only if the tokens span exactly
/// `range` (no trailing residue).
pub(crate) fn len_minus_expr(tokens: &[Token], range: &Range<usize>) -> Option<(String, u64)> {
    let (path, after) = len_call_at(tokens, range.start)?;
    if after == range.end {
        return Some((path, 0));
    }
    if tok_punct(tokens, after, '-') {
        let k = tok_int(tokens, after + 1)?;
        if after + 2 == range.end {
            return Some((path, k));
        }
    }
    None
}

/// Last segment of a normalized path (`self.rows` → `rows`).
pub(crate) fn last_segment(path: &str) -> &str {
    path.rsplit(['.', ':']).next().unwrap_or(path)
}

/// Harvests scoped interval facts from one function body. `summaries`
/// supplies cross-function return-bound contracts consumed at call-site
/// bindings and for-loop iterators (see `crate::summary`).
pub(crate) fn collect_facts(
    tokens: &[Token],
    f: &FnItem,
    summaries: &Summaries,
) -> Vec<ScopedFact> {
    let body = f.body.clone();
    let mut facts: Vec<ScopedFact> = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if let Some(name) = tok_ident(tokens, i) {
            match name {
                "for" => for_loop_facts(tokens, i, &body, summaries, &mut facts),
                "while" => while_facts(tokens, i, &body, &mut facts),
                "if" => if_facts(tokens, i, &body, &mut facts),
                "assert" | "assert_eq" => assert_facts(tokens, i, &body, &mut facts),
                "let" => let_facts(tokens, i, &body, summaries, &mut facts),
                "windows" | "chunks_exact" => {
                    closure_window_facts(tokens, i, &body, &mut facts);
                }
                _ => {}
            }
        }
        i += 1;
    }
    for sf in &mut facts {
        kill_scan(tokens, sf);
    }
    // Length-dependent facts (formed by a `len() - k` subtraction) stand
    // only where the subtraction cannot wrap: keep each one only if an
    // unconditional fact proves `seq.len() >= k` at its origin.
    let keep: Vec<bool> = facts
        .iter()
        .map(|sf| {
            let Some(need) = sf.needs_len else {
                return true;
            };
            let seq = match &sf.fact {
                Fact::VarBound { seq, .. } | Fact::UpToLen { seq, .. } => seq,
                _ => return true,
            };
            let at = sf.scope.start;
            facts.iter().any(|g| {
                g.needs_len.is_none()
                    && g.scope.contains(&at)
                    && match &g.fact {
                        Fact::MinLen { seq: s, min_len } => s == seq && min_len + 1 >= need,
                        Fact::ExactLen { seq: s, len } => s == seq && *len >= need,
                        _ => false,
                    }
            })
        })
        .collect();
    let mut idx = 0;
    facts.retain(|_| {
        let k = keep.get(idx).copied().unwrap_or(false);
        idx += 1;
        k
    });
    facts
}

/// `for PAT in ITER { .. }` — bounds from the iterator shapes we
/// recognise: `0..len`-style ranges, `.iter().enumerate()`,
/// `windows(k)` / `chunks_exact(k)`, and calls to functions whose
/// summary promises every yielded element is below a parameter.
fn for_loop_facts(
    tokens: &[Token],
    at: usize,
    body: &Range<usize>,
    summaries: &Summaries,
    facts: &mut Vec<ScopedFact>,
) {
    // Pattern: single ident, or a tuple whose first ident is the index.
    let (var, mut j) = if let Some(v) = tok_ident(tokens, at + 1) {
        (v.to_string(), at + 2)
    } else if tok_punct(tokens, at + 1, '(') {
        let close = match matching(tokens, at + 1) {
            Some(c) => c,
            None => return,
        };
        let first = match tok_ident(tokens, at + 2) {
            Some(v) => v.to_string(),
            None => return,
        };
        (first, close + 1)
    } else {
        return;
    };
    if tok_ident(tokens, j) != Some("in") {
        return;
    }
    j += 1;
    // Iterator expression runs to the first `{` at zero bracket depth.
    let mut depth = 0i64;
    let mut open = None;
    let mut k = j;
    while k < body.end {
        match tokens.get(k) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if t.is_punct('{') && depth == 0 => {
                open = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let Some(open) = open else { return };
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let iter = j..open;
    let scope = open..close + 1;

    // `0..PATH.len() [- k]` and the inclusive `0..=…` variants.
    if tok_int(tokens, iter.start) == Some(0)
        && tok_punct(tokens, iter.start + 1, '.')
        && tok_punct(tokens, iter.start + 2, '.')
    {
        let inclusive = tok_punct(tokens, iter.start + 3, '=');
        let expr_start = if inclusive {
            iter.start + 4
        } else {
            iter.start + 3
        };
        if let Some((seq, k)) = len_minus_expr(tokens, &(expr_start..iter.end)) {
            let fact = if inclusive {
                if k >= 1 {
                    Fact::VarBound {
                        var: var.clone(),
                        seq,
                        max_off: k - 1,
                    }
                } else {
                    Fact::UpToLen {
                        var: var.clone(),
                        seq,
                    }
                }
            } else {
                Fact::VarBound {
                    var: var.clone(),
                    seq,
                    max_off: k,
                }
            };
            facts.push(ScopedFact {
                fact,
                scope,
                // `0..len - k` wraps in release when `len < k`, and the
                // loop then runs with wild indices.
                needs_len: (k >= 1).then_some(k),
            });
            return;
        }
    }

    // `PATH.iter().enumerate()` / `PATH.iter_mut().enumerate()`.
    if let Some((path, after)) = path_starting_at(tokens, iter.start) {
        for stripped in [".iter", ".iter_mut"] {
            if let Some(seq) = path.strip_suffix(stripped) {
                if tok_punct(tokens, after, '(')
                    && tok_punct(tokens, after + 1, ')')
                    && tok_punct(tokens, after + 2, '.')
                    && tok_ident(tokens, after + 3) == Some("enumerate")
                    && tok_punct(tokens, after + 4, '(')
                    && tok_punct(tokens, after + 5, ')')
                    && after + 6 == iter.end
                {
                    facts.push(ScopedFact {
                        needs_len: None,
                        fact: Fact::VarBound {
                            var: var.clone(),
                            seq: seq.to_string(),
                            max_off: 0,
                        },
                        scope,
                    });
                    return;
                }
            }
        }
        // `PATH.windows(k)` / `PATH.chunks_exact(k)`: the loop variable is
        // itself a slice of exactly `k` elements.
        for stripped in [".windows", ".chunks_exact"] {
            if path.strip_suffix(stripped).is_some()
                && tok_punct(tokens, after, '(')
                && tok_punct(tokens, after + 2, ')')
                && after + 3 == iter.end
            {
                if let Some(k) = tok_int(tokens, after + 1) {
                    if k >= 1 {
                        facts.push(ScopedFact {
                            needs_len: None,
                            fact: Fact::ExactLen { seq: var, len: k },
                            scope,
                        });
                    }
                }
                return;
            }
        }
        // `for v in f(a, b, ..) {}` where `f`'s summary promises every
        // yielded element is `< param k` — bind `v < arg_k` in the body.
        if let Some(k) = summaries.elems_lt_param(&path) {
            if tok_punct(tokens, after, '(')
                && matching(tokens, after).map(|c| c + 1) == Some(iter.end)
            {
                if let Some(close) = matching(tokens, after) {
                    if let Some(arg) = call_arg_path(tokens, after + 1, close, k) {
                        facts.push(ScopedFact {
                            needs_len: None,
                            fact: Fact::VarLtPath { var, path: arg },
                            scope,
                        });
                    }
                }
            }
        }
    }
}

/// Splits the argument list in `(open+1..close)` on depth-0 commas and
/// returns argument `k` as a normalized path (a leading `&`/`&mut` is
/// stripped); `None` when the argument is not a bare path.
pub(crate) fn call_arg_path(
    tokens: &[Token],
    args_start: usize,
    close: usize,
    k: usize,
) -> Option<String> {
    let range = call_arg_range(tokens, args_start, close, k)?;
    let mut start = range.start;
    if tok_punct(tokens, start, '&') {
        start += 1;
        if tok_ident(tokens, start) == Some("mut") {
            start += 1;
        }
    }
    let (path, after) = path_starting_at(tokens, start)?;
    (after == range.end).then_some(path)
}

/// Token range of argument `k` in the argument list `(args_start..close)`.
pub(crate) fn call_arg_range(
    tokens: &[Token],
    args_start: usize,
    close: usize,
    k: usize,
) -> Option<Range<usize>> {
    let mut depth = 0i64;
    let mut idx = 0usize;
    let mut start = args_start;
    let mut j = args_start;
    while j < close {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
            Some(t) if t.is_punct(',') && depth == 0 => {
                if idx == k {
                    return Some(start..j);
                }
                idx += 1;
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    (idx == k && start < close).then_some(start..close)
}

/// `.windows(k)` / `.chunks_exact(k)` followed by a closure-taking
/// adapter (`.filter(|w| ..)`, `.map(|w| ..)`): the closure parameter is a
/// slice of exactly `k` elements inside the closure body.
fn closure_window_facts(
    tokens: &[Token],
    at: usize,
    _body: &Range<usize>,
    facts: &mut Vec<ScopedFact>,
) {
    // `at` is the `windows` / `chunks_exact` ident; require method position.
    if at == 0 || !tok_punct(tokens, at - 1, '.') || !tok_punct(tokens, at + 1, '(') {
        return;
    }
    let Some(k) = tok_int(tokens, at + 2) else {
        return;
    };
    if k == 0 || !tok_punct(tokens, at + 3, ')') {
        return;
    }
    // Walk the adapter chain; bind the first closure parameter we find.
    let mut j = at + 4;
    while tok_punct(tokens, j, '.') && tok_ident(tokens, j + 1).is_some() {
        if !tok_punct(tokens, j + 2, '(') {
            break;
        }
        let Some(close) = matching(tokens, j + 2) else {
            return;
        };
        if tok_punct(tokens, j + 3, '|') {
            if let Some(param) = tok_ident(tokens, j + 4) {
                if tok_punct(tokens, j + 5, '|') {
                    facts.push(ScopedFact {
                        needs_len: None,
                        fact: Fact::ExactLen {
                            seq: param.to_string(),
                            len: k,
                        },
                        scope: j + 6..close,
                    });
                    return;
                }
            }
        }
        j = close + 1;
    }
}

/// Splits a condition range on a depth-0 two-token punct pair (`&&` as
/// `('&','&')`, `||` as `('|','|')`). Returns `None` if the *other* pair
/// appears at depth 0 (mixed conjunction/disjunction — give up).
pub(crate) fn split_condition(
    tokens: &[Token],
    cond: &Range<usize>,
    pair: char,
    reject: char,
) -> Option<Vec<Range<usize>>> {
    let mut parts = Vec::new();
    let mut depth = 0i64;
    let mut start = cond.start;
    let mut j = cond.start;
    while j < cond.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if depth == 0 && t.is_punct(pair) && tok_punct(tokens, j + 1, pair) => {
                parts.push(start..j);
                j += 1;
                start = j + 1;
            }
            Some(t) if depth == 0 && t.is_punct(reject) && tok_punct(tokens, j + 1, reject) => {
                return None;
            }
            _ => {}
        }
        j += 1;
    }
    parts.push(start..cond.end);
    Some(parts)
}

/// A comparison operator split out of the token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Finds the first depth-0 comparison in `range`; returns
/// (lhs, op, rhs-start).
pub(crate) fn find_cmp(
    tokens: &[Token],
    range: &Range<usize>,
) -> Option<(Range<usize>, Cmp, usize)> {
    let mut depth = 0i64;
    let mut j = range.start;
    while j < range.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if depth == 0 => {
                let two_eq = tok_punct(tokens, j + 1, '=');
                let op = if t.is_punct('<') {
                    Some(if two_eq { (Cmp::Le, 2) } else { (Cmp::Lt, 1) })
                } else if t.is_punct('>') {
                    Some(if two_eq { (Cmp::Ge, 2) } else { (Cmp::Gt, 1) })
                } else if t.is_punct('=') && two_eq {
                    Some((Cmp::Eq, 2))
                } else if t.is_punct('!') && two_eq {
                    Some((Cmp::Ne, 2))
                } else {
                    None
                };
                if let Some((op, width)) = op {
                    return Some((range.start..j, op, j + width));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Matches `[*]var [+ c]` spanning exactly `range`; returns (var, c).
/// A leading `*` (deref of a copied index) binds the same variable.
pub(crate) fn var_plus_const(tokens: &[Token], range: &Range<usize>) -> Option<(String, u64)> {
    let mut start = range.start;
    if tok_punct(tokens, start, '*') && tok_ident(tokens, start + 1).is_some() {
        start += 1;
    }
    let var = tok_ident(tokens, start)?;
    // Reject dotted paths as the variable — bounds on fields are killed
    // too coarsely to be worth tracking.
    if start + 1 == range.end {
        return Some((var.to_string(), 0));
    }
    if tok_punct(tokens, start + 1, '+') && start + 3 == range.end {
        let c = tok_int(tokens, start + 2)?;
        return Some((var.to_string(), c));
    }
    None
}

/// Facts a *true* conjunct establishes (used for `if COND {}` bodies and
/// `assert!(COND)` tails).
fn positive_fact(tokens: &[Token], conjunct: &Range<usize>) -> Option<Fact> {
    // `!PATH.is_empty()`
    if tok_punct(tokens, conjunct.start, '!') {
        if let Some((path, after)) = path_starting_at(tokens, conjunct.start + 1) {
            if let Some(seq) = path.strip_suffix(".is_empty") {
                if tok_punct(tokens, after, '(')
                    && tok_punct(tokens, after + 1, ')')
                    && after + 2 == conjunct.end
                {
                    return Some(Fact::MinLen {
                        seq: seq.to_string(),
                        min_len: 0,
                    });
                }
            }
        }
        return None;
    }
    let (lhs, op, rhs_start) = find_cmp(tokens, conjunct)?;
    let rhs = rhs_start..conjunct.end;
    // `PATH.len() CMP k`
    if let Some((seq, 0)) = len_minus_expr(tokens, &lhs) {
        let k = tok_int(tokens, rhs.start)?;
        if rhs.start + 1 != rhs.end {
            return None;
        }
        return match op {
            Cmp::Gt => Some(Fact::MinLen { seq, min_len: k }),
            Cmp::Ge | Cmp::Eq if k >= 1 => Some(Fact::MinLen {
                seq,
                min_len: k - 1,
            }),
            _ => None,
        };
    }
    // `k CMP PATH.len()`
    if let Some(k) = tok_int(tokens, lhs.start) {
        if lhs.start + 1 == lhs.end {
            let (seq, 0) = len_minus_expr(tokens, &rhs)? else {
                return None;
            };
            return match op {
                Cmp::Lt => Some(Fact::MinLen { seq, min_len: k }),
                Cmp::Le | Cmp::Eq if k >= 1 => Some(Fact::MinLen {
                    seq,
                    min_len: k - 1,
                }),
                _ => None,
            };
        }
    }
    // `var [+ c] CMP PATH.len() [- s]`
    let (var, c) = var_plus_const(tokens, &lhs)?;
    if let Some((seq, s)) = len_minus_expr(tokens, &rhs) {
        return match op {
            Cmp::Lt => Some(Fact::VarBound {
                var,
                seq,
                max_off: c + s,
            }),
            Cmp::Le if c + s >= 1 => Some(Fact::VarBound {
                var,
                seq,
                max_off: c + s - 1,
            }),
            Cmp::Le => Some(Fact::UpToLen { var, seq }),
            _ => None,
        };
    }
    // `[*]var < PATH` against a symbolic count (not a `.len()` call).
    if c == 0 && op == Cmp::Lt {
        if let Some((path, after)) = path_starting_at(tokens, rhs.start) {
            if after == rhs.end {
                return Some(Fact::VarLtPath { var, path });
            }
        }
    }
    None
}

/// Facts the *negation* of a disjunct establishes (early-exit guards).
fn negated_fact(tokens: &[Token], disjunct: &Range<usize>) -> Option<Fact> {
    // `PATH.is_empty()` → ¬ → len ≥ 1.
    if let Some((path, after)) = path_starting_at(tokens, disjunct.start) {
        if let Some(seq) = path.strip_suffix(".is_empty") {
            if tok_punct(tokens, after, '(')
                && tok_punct(tokens, after + 1, ')')
                && after + 2 == disjunct.end
            {
                return Some(Fact::MinLen {
                    seq: seq.to_string(),
                    min_len: 0,
                });
            }
        }
    }
    let (lhs, op, rhs_start) = find_cmp(tokens, disjunct)?;
    let rhs = rhs_start..disjunct.end;
    // `PATH.len() < k` → ¬ → len ≥ k; `PATH.len() == 0` → ¬ → len ≥ 1.
    if let Some((seq, 0)) = len_minus_expr(tokens, &lhs) {
        let k = tok_int(tokens, rhs.start)?;
        if rhs.start + 1 != rhs.end {
            return None;
        }
        return match op {
            Cmp::Lt if k >= 1 => Some(Fact::MinLen {
                seq,
                min_len: k - 1,
            }),
            Cmp::Le => Some(Fact::MinLen { seq, min_len: k }),
            Cmp::Eq if k == 0 => Some(Fact::MinLen { seq, min_len: 0 }),
            _ => None,
        };
    }
    // `var [+ c] >= PATH.len()` → ¬ → var + c < len;
    // `var [+ c] > PATH.len()` → ¬ → var + c ≤ len.
    let (var, c) = var_plus_const(tokens, &lhs)?;
    if let Some((seq, s)) = len_minus_expr(tokens, &rhs) {
        if s != 0 {
            return None;
        }
        return match op {
            Cmp::Ge => Some(Fact::VarBound {
                var,
                seq,
                max_off: c,
            }),
            Cmp::Gt if c >= 1 => Some(Fact::VarBound {
                var,
                seq,
                max_off: c - 1,
            }),
            Cmp::Gt => Some(Fact::UpToLen { var, seq }),
            _ => None,
        };
    }
    // `[*]var >= PATH` → ¬ → var < PATH (symbolic count).
    if c == 0 && op == Cmp::Ge {
        if let Some((path, after)) = path_starting_at(tokens, rhs.start) {
            if after == rhs.end {
                return Some(Fact::VarLtPath { var, path });
            }
        }
    }
    None
}

/// `if COND { .. }`: either a plain guard (facts hold inside the block) or
/// an early exit (`{ return/break/continue .. }` — the negated condition
/// holds for the rest of the enclosing block).
fn if_facts(tokens: &[Token], at: usize, body: &Range<usize>, facts: &mut Vec<ScopedFact>) {
    // `else if` chains and `if let` are out of scope for the prover.
    if tok_ident(tokens, at + 1) == Some("let") {
        return;
    }
    let mut depth = 0i64;
    let mut open = None;
    let mut j = at + 1;
    while j < body.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if t.is_punct('{') && depth == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return };
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let cond = at + 1..open;

    // Facts from the condition being true hold inside the block whether
    // or not the block falls through.
    if let Some(conjuncts) = split_condition(tokens, &cond, '&', '|') {
        for c in conjuncts {
            if let Some(fact) = positive_fact(tokens, &c) {
                facts.push(ScopedFact {
                    needs_len: None,
                    fact,
                    scope: open..close + 1,
                });
            }
        }
    }
    // If the block unconditionally exits, the *negated* condition holds
    // for the rest of the enclosing block.
    let exits = matches!(
        tok_ident(tokens, open + 1),
        Some("return") | Some("break") | Some("continue")
    );
    if exits {
        if let Some(disjuncts) = split_condition(tokens, &cond, '|', '&') {
            let scope = close + 1..enclosing_block_end(tokens, close + 1, body.end);
            for d in disjuncts {
                if let Some(fact) = negated_fact(tokens, &d) {
                    facts.push(ScopedFact {
                        needs_len: None,
                        fact,
                        scope: scope.clone(),
                    });
                }
            }
        }
    }
}

/// `while COND { .. }`: facts from the condition hold inside the body.
/// This is sound with the shared [`kill_scan`]: the condition re-holds at
/// the top of every iteration, and the scan truncates each fact at the
/// first in-body mutation of anything it mentions, so only uses dominated
/// by the loop-head check remain covered.
fn while_facts(tokens: &[Token], at: usize, body: &Range<usize>, facts: &mut Vec<ScopedFact>) {
    if tok_ident(tokens, at + 1) == Some("let") {
        return;
    }
    let mut depth = 0i64;
    let mut open = None;
    let mut j = at + 1;
    while j < body.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if t.is_punct('{') && depth == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return };
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let cond = at + 1..open;
    if let Some(conjuncts) = split_condition(tokens, &cond, '&', '|') {
        for c in conjuncts {
            if let Some(fact) = positive_fact(tokens, &c) {
                facts.push(ScopedFact {
                    needs_len: None,
                    fact,
                    scope: open..close + 1,
                });
            }
        }
    }
}

/// `assert!(COND)` / `assert_eq!(PATH.len(), k)` hold for the rest of the
/// enclosing block. `debug_assert!` is deliberately ignored — it vanishes
/// in release builds, so it proves nothing.
fn assert_facts(tokens: &[Token], at: usize, body: &Range<usize>, facts: &mut Vec<ScopedFact>) {
    if !tok_punct(tokens, at + 1, '!') || !tok_punct(tokens, at + 2, '(') {
        return;
    }
    let Some(close) = matching(tokens, at + 2) else {
        return;
    };
    let scope = close + 1..enclosing_block_end(tokens, close + 1, body.end);
    let inner = at + 3..close;
    if tok_ident(tokens, at) == Some("assert_eq") {
        // `assert_eq!(PATH.len(), k[, msg..])` (either operand order, a
        // trailing format message tolerated): `k` a literal gives an
        // exact length, `k` a path gives a symbolic length equation.
        let mut depth = 0i64;
        let mut commas = Vec::new();
        let mut j = inner.start;
        while j < inner.end {
            match tokens.get(j) {
                Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
                Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                Some(t) if t.is_punct(',') && depth == 0 => commas.push(j),
                _ => {}
            }
            j += 1;
        }
        let Some(first) = commas.first().copied() else {
            return;
        };
        let second = commas.get(1).copied().unwrap_or(inner.end);
        let (a, b) = (inner.start..first, first + 1..second);
        for (len_side, k_side) in [(&a, &b), (&b, &a)] {
            if let Some((seq, 0)) = len_minus_expr(tokens, len_side) {
                if let Some(k) = tok_int(tokens, k_side.start) {
                    if k_side.start + 1 == k_side.end && k >= 1 {
                        facts.push(ScopedFact {
                            needs_len: None,
                            fact: Fact::ExactLen { seq, len: k },
                            scope,
                        });
                        return;
                    }
                }
                if let Some((path, after)) = path_starting_at(tokens, k_side.start) {
                    if after == k_side.end {
                        facts.push(ScopedFact {
                            needs_len: None,
                            fact: Fact::EqLenPath { seq, path },
                            scope,
                        });
                        return;
                    }
                }
            }
        }
        return;
    }
    // Trailing message arguments would confuse the conjunct parser; only
    // bare `assert!(COND)` is recognised.
    if let Some(conjuncts) = split_condition(tokens, &inner, '&', '|') {
        for c in conjuncts {
            if let Some(fact) = positive_fact(tokens, &c) {
                facts.push(ScopedFact {
                    needs_len: None,
                    fact,
                    scope: scope.clone(),
                });
            }
        }
    }
}

/// Bindings that create facts: clamps (`.min(PATH.len() - k)`),
/// `partition_point`, constant zero, `[e; N]` arrays, `vec![e; n]`
/// lengths, and calls to functions with a return-bound summary.
fn let_facts(
    tokens: &[Token],
    at: usize,
    body: &Range<usize>,
    summaries: &Summaries,
    facts: &mut Vec<ScopedFact>,
) {
    let mut j = at + 1;
    if tok_ident(tokens, j) == Some("mut") {
        j += 1;
    }
    let Some(var) = tok_ident(tokens, j) else {
        return;
    };
    let var = var.to_string();
    // Skip an optional `: Type` annotation up to the `=`.
    let mut eq = j + 1;
    let mut depth = 0i64;
    while eq < body.end {
        match tokens.get(eq) {
            Some(t) if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if t.is_punct('=') && depth == 0 => break,
            Some(t) if t.is_punct(';') && depth == 0 => return,
            _ => {}
        }
        eq += 1;
    }
    // Statement end: `;` at depth 0 after the `=`.
    let mut end = eq + 1;
    let mut depth = 0i64;
    while end < body.end {
        match tokens.get(end) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
            Some(t) if t.is_punct(';') && depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    if end >= body.end {
        return;
    }
    let rhs = eq + 1..end;
    let scope = end + 1..enclosing_block_end(tokens, end + 1, body.end);

    // `let v = 0;`
    if tok_int(tokens, rhs.start) == Some(0) && rhs.start + 1 == rhs.end {
        facts.push(ScopedFact {
            needs_len: None,
            fact: Fact::ZeroConst { var },
            scope,
        });
        return;
    }
    // `let v = [e; N];`
    if tok_punct(tokens, rhs.start, '[') {
        if let Some(close) = matching(tokens, rhs.start) {
            if close + 1 == rhs.end {
                let mut depth = 0i64;
                let mut k = rhs.start + 1;
                while k < close {
                    match tokens.get(k) {
                        Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
                        Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
                        Some(t) if t.is_punct(';') && depth == 0 => {
                            if let Some(n) = tok_int(tokens, k + 1) {
                                if k + 2 == close && n >= 1 {
                                    facts.push(ScopedFact {
                                        needs_len: None,
                                        fact: Fact::ExactLen { seq: var, len: n },
                                        scope,
                                    });
                                }
                            }
                            return;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        return;
    }
    // `let v = vec![e; COUNT];` — a literal count gives an exact length,
    // a path count gives the symbolic equation `v.len() == COUNT`.
    if tok_ident(tokens, rhs.start) == Some("vec")
        && tok_punct(tokens, rhs.start + 1, '!')
        && tok_punct(tokens, rhs.start + 2, '[')
    {
        if let Some(close) = matching(tokens, rhs.start + 2) {
            if close + 1 == rhs.end {
                let mut depth = 0i64;
                let mut semi = None;
                for k in rhs.start + 3..close {
                    match tokens.get(k) {
                        Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => {
                            depth += 1;
                        }
                        Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                            depth -= 1;
                        }
                        Some(t) if t.is_punct(';') && depth == 0 => semi = Some(k),
                        _ => {}
                    }
                }
                if let Some(semi) = semi {
                    let count = semi + 1..close;
                    if let Some(n) = const_expr(tokens, &count) {
                        if n >= 1 {
                            facts.push(ScopedFact {
                                needs_len: None,
                                fact: Fact::ExactLen { seq: var, len: n },
                                scope,
                            });
                        }
                    } else if let Some((path, after)) = path_starting_at(tokens, count.start) {
                        if after == count.end {
                            facts.push(ScopedFact {
                                needs_len: None,
                                fact: Fact::EqLenPath { seq: var, path },
                                scope,
                            });
                        }
                    }
                }
            }
        }
        return;
    }
    // `let v = f(a, b, ..)[?];` with a return-bound summary for `f`:
    // the contract, instantiated with the call's arguments, bounds `v`.
    if let Some((path, after)) = path_starting_at(tokens, rhs.start) {
        if tok_punct(tokens, after, '(') {
            if let Some(close) = matching(tokens, after) {
                let tail_ok = close + 1 == rhs.end
                    || (tok_punct(tokens, close + 1, '?') && close + 2 == rhs.end);
                if tail_ok {
                    if let Some(contract) = summaries.ret_contract(&path) {
                        let fact = match contract {
                            RetContract::LtParam(k) => call_arg_path(tokens, after + 1, close, *k)
                                .map(|arg| Fact::VarLtPath {
                                    var: var.clone(),
                                    path: arg,
                                }),
                            RetContract::LtLenOfParam(k) => {
                                call_arg_path(tokens, after + 1, close, *k).map(|arg| {
                                    Fact::VarBound {
                                        var: var.clone(),
                                        seq: arg,
                                        max_off: 0,
                                    }
                                })
                            }
                            RetContract::LeConst(c) => Some(Fact::VarLeConst {
                                var: var.clone(),
                                max: *c,
                            }),
                            RetContract::ElemsLtParam(_) => None,
                        };
                        if let Some(fact) = fact {
                            facts.push(ScopedFact {
                                needs_len: None,
                                fact,
                                scope,
                            });
                            return;
                        }
                    }
                }
            }
        }
    }
    // `let v = PATH.partition_point(..);` — result ≤ PATH.len().
    if let Some((path, after)) = path_starting_at(tokens, rhs.start) {
        if let Some(seq) = path.strip_suffix(".partition_point") {
            if tok_punct(tokens, after, '(') {
                if let Some(close) = matching(tokens, after) {
                    if close + 1 == rhs.end {
                        facts.push(ScopedFact {
                            needs_len: None,
                            fact: Fact::UpToLen {
                                var,
                                seq: seq.to_string(),
                            },
                            scope,
                        });
                        return;
                    }
                }
            }
        }
    }
    // `let v = EXPR.min(PATH.len() - k);` — the clamp must be the RHS's
    // final call so nothing widens the value afterwards.
    let mut k = rhs.start;
    while k + 1 < rhs.end {
        if tok_punct(tokens, k, '.') && tok_ident(tokens, k + 1) == Some("min") {
            if let Some(close) = matching(tokens, k + 2) {
                if close + 1 == rhs.end {
                    if let Some((seq, s)) = len_minus_expr(tokens, &(k + 3..close)) {
                        let fact = if s >= 1 {
                            Fact::VarBound {
                                var,
                                seq,
                                max_off: s - 1,
                            }
                        } else {
                            Fact::UpToLen { var, seq }
                        };
                        facts.push(ScopedFact {
                            fact,
                            scope,
                            // `.min(len() - s)` wraps in release when
                            // `len < s`, clamping to nothing at all.
                            needs_len: (s >= 1).then_some(s),
                        });
                        return;
                    }
                }
            }
        }
        k += 1;
    }
}

/// Shrinks a fact's scope to end at the first event that could invalidate
/// it: reassignment of the bound variable, or reassignment / shrinking
/// mutation of the sequence. Matches on last path segments, which kills
/// more than strictly necessary — the safe direction for a prover.
fn kill_scan(tokens: &[Token], sf: &mut ScopedFact) {
    let (var, mut seqs): (Option<String>, Vec<String>) = match &sf.fact {
        Fact::VarBound { var, seq, .. } | Fact::UpToLen { var, seq } => {
            (Some(var.clone()), vec![last_segment(seq).to_string()])
        }
        Fact::MinLen { seq, .. } | Fact::ExactLen { seq, .. } => {
            (None, vec![last_segment(seq).to_string()])
        }
        // The symbolic count is killed like a sequence: a reassignment of
        // its last segment invalidates the equation / bound.
        Fact::EqLenPath { seq, path } => (
            None,
            vec![
                last_segment(seq).to_string(),
                last_segment(path).to_string(),
            ],
        ),
        Fact::VarLtPath { var, path } => (Some(var.clone()), vec![last_segment(path).to_string()]),
        Fact::VarLeConst { var, .. } | Fact::ZeroConst { var } => (Some(var.clone()), Vec::new()),
    };
    seqs.dedup();
    let mut j = sf.scope.start;
    while j < sf.scope.end {
        if let Some(name) = tok_ident(tokens, j) {
            let hits_var = var.as_deref() == Some(name);
            let hits_seq = seqs.iter().any(|s| s == name);
            if hits_var || hits_seq {
                if reassigned_at(tokens, j) {
                    sf.scope.end = j;
                    return;
                }
                if hits_seq && shrunk_at(tokens, j) {
                    sf.scope.end = j;
                    return;
                }
            }
        }
        j += 1;
    }
}

/// `true` if the identifier at `i` is (re)bound here: `x = ..` (not
/// `==`/`<=`/..), compound `x += ..`, or a fresh `let x`.
fn reassigned_at(tokens: &[Token], i: usize) -> bool {
    if i >= 1
        && matches!(
            tok_ident(tokens, i - 1),
            Some("let") | Some("mut") | Some("ref")
        )
    {
        return true;
    }
    // Simple assignment: `x =` where the `=` is not part of `==`, `<=`,
    // `>=`, `!=`, `=>` — and `x` is not a field of something (`.x =`).
    if i >= 1 && tok_punct(tokens, i - 1, '.') {
        return false;
    }
    if tok_punct(tokens, i + 1, '=') {
        return !tok_punct(tokens, i + 2, '=') && !tok_punct(tokens, i + 2, '>');
    }
    // Compound assignment: `x OP=`.
    if let Some(t) = tokens.get(i + 1) {
        for op in ['+', '-', '*', '/', '%', '&', '|', '^'] {
            if t.is_punct(op) && tok_punct(tokens, i + 2, '=') {
                return true;
            }
        }
    }
    false
}

/// `true` if the identifier at `i` is a sequence receiving a shrinking
/// method call: `xs.truncate(..)`, `xs.pop()`, ….
fn shrunk_at(tokens: &[Token], i: usize) -> bool {
    tok_punct(tokens, i + 1, '.')
        && matches!(tok_ident(tokens, i + 2), Some(m) if SHRINK_METHODS.contains(&m))
        && tok_punct(tokens, i + 3, '(')
}

// ---------------------------------------------------------------------------
// Site proving
// ---------------------------------------------------------------------------

fn fact_active(facts: &[ScopedFact], at: usize, pred: impl Fn(&Fact) -> bool) -> bool {
    facts
        .iter()
        .any(|sf| sf.scope.contains(&at) && pred(&sf.fact))
}

/// Checks every `panic.indexing` site in `f`'s body against the facts;
/// proven sites land in `proven`, definite out-of-bounds accesses in
/// `out`.
fn prove_sites(
    file: &str,
    tokens: &[Token],
    f: &FnItem,
    facts: &[ScopedFact],
    proven: &mut BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    let mut i = f.body.start;
    while i < f.body.end {
        if index_site(tokens, i) && !proven.contains(&i) {
            let Some(close) = matching(tokens, i) else {
                i += 1;
                continue;
            };
            if let Some(seq) = path_ending_at(tokens, i - 1) {
                match prove_index(tokens, &(i + 1..close), &seq, facts, i) {
                    Proof::InBounds => {
                        proven.insert(i);
                    }
                    Proof::OutOfBounds(msg) => {
                        let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                        out.push(violation(file, line, "flow.range", msg));
                    }
                    Proof::Unknown => {}
                }
            }
            i = close;
        }
        i += 1;
    }
}

pub(crate) enum Proof {
    InBounds,
    OutOfBounds(String),
    Unknown,
}

/// Decides one index expression `seq[expr]` at token position `at`.
pub(crate) fn prove_index(
    tokens: &[Token],
    expr: &Range<usize>,
    seq: &str,
    facts: &[ScopedFact],
    at: usize,
) -> Proof {
    // Range forms first: `[lo..]`, `[..hi]`, `[lo..hi]`.
    if let Some(dots) = depth0_dotdot(tokens, expr) {
        let lo = expr.start..dots;
        let hi = dots + 2..expr.end;
        let lo_ok = range_pos_ok(tokens, &lo, seq, facts, at, true);
        let hi_ok = range_pos_ok(tokens, &hi, seq, facts, at, false);
        // `lo..hi` with both present also needs lo ≤ hi, which we only
        // prove when lo is empty, zero, or lo and hi are both constants.
        let ordered = lo.is_empty()
            || tok_int(tokens, lo.start) == Some(0)
            || match (const_expr(tokens, &lo), const_expr(tokens, &hi)) {
                (Some(a), Some(b)) => a <= b,
                _ => hi.is_empty(),
            };
        return if lo_ok && hi_ok && ordered {
            Proof::InBounds
        } else {
            Proof::Unknown
        };
    }
    // `seq[E % COUNT]`: the remainder is `< COUNT`, so the index is in
    // bounds whenever `COUNT` equals `seq`'s length — either literally
    // (`E % seq.len()`) or via an `EqLenPath` equation. (An empty `seq`
    // makes the `%` itself panic before the index executes, so the index
    // site still cannot go out of bounds.)
    if let Some(m) = last_depth0_percent(tokens, expr) {
        let rhs = m + 1..expr.end;
        if let Some((p, 0)) = len_minus_expr(tokens, &rhs) {
            if p == seq {
                return Proof::InBounds;
            }
        }
        if let Some((p, after)) = path_starting_at(tokens, rhs.start) {
            if after == rhs.end
                && fact_active(
                    facts,
                    at,
                    |f| matches!(f, Fact::EqLenPath { seq: s, path } if s == seq && *path == p),
                )
            {
                return Proof::InBounds;
            }
        }
        return Proof::Unknown;
    }
    // `seq[seq.len()]` / `seq[seq.len() - k]`. The subtraction wraps in a
    // release build when `len < k` and the wrapped index reaches the
    // slice, so `len() - k` is only proof once the length is known ≥ k.
    if let Some((path, k)) = len_minus_expr(tokens, expr) {
        if path == seq {
            if k == 0 {
                return Proof::OutOfBounds(format!(
                    "`{seq}[{seq}.len()]` is always out of bounds — the last element is at `len() - 1`"
                ));
            }
            let long_enough = fact_active(facts, at, |f| {
                matches!(f, Fact::MinLen { seq: s, min_len } if s == seq && min_len + 1 >= k)
                    || matches!(f, Fact::ExactLen { seq: s, len } if s == seq && *len >= k)
            });
            return if long_enough {
                Proof::InBounds
            } else {
                Proof::Unknown
            };
        }
        return Proof::Unknown;
    }
    // Constant index.
    if let Some(c) = const_expr(tokens, expr) {
        if fact_active(facts, at, |f| {
            matches!(f, Fact::MinLen { seq: s, min_len } if s == seq && *min_len >= c)
                || matches!(f, Fact::ExactLen { seq: s, len } if s == seq && *len > c)
        }) {
            return Proof::InBounds;
        }
        // An exact length *refutes* constant indices at or above it.
        let oob = facts.iter().find(|sf| {
            sf.scope.contains(&at)
                && matches!(&sf.fact, Fact::ExactLen { seq: s, len } if s == seq && *len <= c)
        });
        if let Some(sf) = oob {
            if let Fact::ExactLen { len, .. } = &sf.fact {
                return Proof::OutOfBounds(format!(
                    "index {c} is out of bounds for `{seq}`, which has exactly {len} element(s)"
                ));
            }
        }
        return Proof::Unknown;
    }
    // `seq[var]` / `seq[var + c]` / `seq[c + var]`.
    if let Some((var, c)) = var_plus_const(tokens, expr).or_else(|| {
        // `c + var` commuted form.
        let c = tok_int(tokens, expr.start)?;
        if tok_punct(tokens, expr.start + 1, '+') && expr.start + 3 == expr.end {
            let v = tok_ident(tokens, expr.start + 2)?;
            Some((v.to_string(), c))
        } else {
            None
        }
    }) {
        if fact_active(facts, at, |f| {
            matches!(f, Fact::VarBound { var: v, seq: s, max_off }
                if *v == var && s == seq && *max_off >= c)
        }) {
            return Proof::InBounds;
        }
        // `var < count` joined with `seq.len() == count` (c must be 0 —
        // nothing relates `var + c` to the count).
        if c == 0 {
            let join = facts.iter().any(|a| {
                a.scope.contains(&at)
                    && match &a.fact {
                        Fact::VarLtPath { var: v, path } if *v == var => facts.iter().any(|b| {
                            b.scope.contains(&at)
                                && matches!(&b.fact, Fact::EqLenPath { seq: s, path: p }
                                        if s == seq && p == path)
                        }),
                        _ => false,
                    }
            });
            if join {
                return Proof::InBounds;
            }
        }
        // `var <= m` (a `.min(m)`-shaped summary) joined with a length
        // fact proving `seq.len() > m + c`.
        let le_join = facts.iter().any(|a| {
            a.scope.contains(&at)
                && match &a.fact {
                    Fact::VarLeConst { var: v, max } if *v == var => {
                        let need = max + c;
                        fact_active(facts, at, |f| {
                            matches!(f, Fact::MinLen { seq: s, min_len } if s == seq && *min_len >= need)
                                || matches!(f, Fact::ExactLen { seq: s, len } if s == seq && *len > need)
                        })
                    }
                    _ => false,
                }
        });
        if le_join {
            return Proof::InBounds;
        }
        return Proof::Unknown;
    }
    // `seq[rng.gen_range(0..seq.len())]` — the sampled index is < len by
    // construction (an empty range panics in `gen_range`, not here, and
    // only where `seq` could be empty — which the rule's other facts
    // would have to establish; we accept the pattern as the RNG contract).
    if let Some((path, after)) = path_starting_at(tokens, expr.start) {
        if path.ends_with(".gen_range")
            && tok_punct(tokens, after, '(')
            && tok_int(tokens, after + 1) == Some(0)
            && tok_punct(tokens, after + 2, '.')
            && tok_punct(tokens, after + 3, '.')
        {
            if let Some((inner, 0)) = len_minus_expr(tokens, &(after + 4..expr.end - 1)) {
                if inner == seq && matching(tokens, after).map(|c| c + 1) == Some(expr.end) {
                    return Proof::InBounds;
                }
            }
        }
    }
    Proof::Unknown
}

/// Last depth-0 binary `%` in `expr`, if any (a remainder, never the
/// start of the expression).
fn last_depth0_percent(tokens: &[Token], expr: &Range<usize>) -> Option<usize> {
    let mut depth = 0i64;
    let mut found = None;
    for j in expr.start..expr.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if depth == 0 && t.is_punct('%') && j > expr.start => found = Some(j),
            _ => {}
        }
    }
    found
}

/// First depth-0 `..` in `expr`, if any.
fn depth0_dotdot(tokens: &[Token], expr: &Range<usize>) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = expr.start;
    while j + 1 < expr.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if depth == 0 && t.is_punct('.') && tok_punct(tokens, j + 1, '.') => {
                // Only plain `..`; `..=` ranges are not proven.
                if tok_punct(tokens, j + 2, '=') {
                    return None;
                }
                return Some(j);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// A bare integer literal spanning exactly `range`.
pub(crate) fn const_expr(tokens: &[Token], range: &Range<usize>) -> Option<u64> {
    if range.start + 1 == range.end {
        tok_int(tokens, range.start)
    } else {
        None
    }
}

/// Is one side of a range position (`seq[pos..]` / `seq[..pos]`) proven
/// to satisfy `pos <= seq.len()`? An empty side trivially is.
fn range_pos_ok(
    tokens: &[Token],
    side: &Range<usize>,
    seq: &str,
    facts: &[ScopedFact],
    at: usize,
    _is_lo: bool,
) -> bool {
    if side.is_empty() {
        return true;
    }
    if let Some(c) = const_expr(tokens, side) {
        if c == 0 {
            return true;
        }
        return fact_active(facts, at, |f| {
            matches!(f, Fact::MinLen { seq: s, min_len } if s == seq && *min_len >= c - 1)
                || matches!(f, Fact::ExactLen { seq: s, len } if s == seq && *len >= c)
        });
    }
    if let Some((path, k)) = len_minus_expr(tokens, side) {
        // `seq[..seq.len() - k]`: for `k >= 1` the subtraction wraps in a
        // release build when `len < k`, and the wrapped position reaches
        // the slice — require the length to be known ≥ k first.
        return path == seq
            && (k == 0
                || fact_active(facts, at, |f| {
                    matches!(f, Fact::MinLen { seq: s, min_len } if s == seq && min_len + 1 >= k)
                        || matches!(f, Fact::ExactLen { seq: s, len } if s == seq && *len >= k)
                }));
    }
    if let Some(var) = tok_ident(tokens, side.start) {
        if side.start + 1 == side.end {
            return fact_active(facts, at, |f| {
                matches!(f, Fact::VarBound { var: v, seq: s, .. } if v == var && s == seq)
                    || matches!(f, Fact::UpToLen { var: v, seq: s } if v == var && s == seq)
            });
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Division
// ---------------------------------------------------------------------------

/// Flags `x / 0`, `x % 0` (integer literal) and division by a binding
/// proven to be constant zero.
fn division_check(
    file: &str,
    tokens: &[Token],
    f: &FnItem,
    facts: &[ScopedFact],
    out: &mut Vec<Violation>,
) {
    let mut i = f.body.start;
    while i < f.body.end {
        let is_div = tok_punct(tokens, i, '/');
        let is_rem = tok_punct(tokens, i, '%');
        if is_div || is_rem {
            let op = if is_div { "/" } else { "%" };
            // `x /= d` puts the divisor one token later than `x / d`;
            // `//` cannot appear (comments are stripped by the lexer).
            let d = if tok_punct(tokens, i + 1, '=') {
                i + 2
            } else {
                i + 1
            };
            if tok_int(tokens, d) == Some(0)
                // The lexer folds float literals into one token, so a `.`
                // after the `0` here means a method call on it.
                && !tok_punct(tokens, d + 1, '.')
            {
                let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                out.push(violation(
                    file,
                    line,
                    "flow.range",
                    format!(
                        "`{op} 0` always panics (or yields NaN) — divisor is the constant zero"
                    ),
                ));
            } else if let Some(var) = tok_ident(tokens, d) {
                let bare = !tok_punct(tokens, d + 1, '.') && !tok_punct(tokens, d + 1, '(');
                if bare
                    && fact_active(
                        facts,
                        i,
                        |fa| matches!(fa, Fact::ZeroConst { var: v } if v == var),
                    )
                {
                    let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                    out.push(violation(
                        file,
                        line,
                        "flow.range",
                        format!("`{op} {var}` divides by a binding that is constantly zero here"),
                    ));
                }
            }
        }
        if tok_punct(tokens, i, '=') && tok_punct(tokens, i + 1, '=') {
            i += 1; // don't look inside `==` chains
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Unit inference (flow.unit)
// ---------------------------------------------------------------------------

/// Infers the dimension of each local binding and flags cross-dimension
/// sums and assignments.
fn unit_pass(file: &str, tokens: &[Token], f: &FnItem, out: &mut Vec<Violation>) {
    let mut env: BTreeMap<String, &'static str> = BTreeMap::new();
    seed_params(tokens, f, &mut env);

    let mut i = f.body.start;
    while i < f.body.end {
        // `let [mut] name [: Type] = RHS ;` or `path [op]= RHS ;`.
        if let Some((name, explicit, rhs)) = assignment_at(tokens, i, &f.body) {
            let target = explicit
                .or_else(|| env.get(&name).copied())
                .or_else(|| known_unit(suggested_unit_type(&name)));
            let line = tokens.get(rhs.start).map(|t| t.line).unwrap_or(f.line);
            let rhs_unit = infer_terms(file, tokens, &rhs, &env, line, out);
            if let (Some(t), Some(r)) = (target, rhs_unit) {
                if t != r {
                    out.push(violation(
                        file,
                        line,
                        "flow.unit",
                        format!("assigning a {r}-valued expression to `{name}`, which carries {t}"),
                    ));
                }
            }
            if let Some(u) = rhs_unit.or(target) {
                env.insert(name, u);
            }
            i = rhs.end;
            continue;
        }
        i += 1;
    }
}

/// Narrows `suggested_unit_type` results to the dimensions the dataflow
/// lattice tracks (it suggests only the four core types today, but stay
/// robust to growth).
fn known_unit(suggested: Option<&'static str>) -> Option<&'static str> {
    suggested.filter(|u| UNIT_TYPES.contains(u))
}

/// Seeds the environment from the parameter list: `name: Hertz` takes the
/// declared dimension; `name: f64` takes the dimension the *name* implies
/// (that is precisely the case `units.raw-f64` tolerates in private fns).
fn seed_params(tokens: &[Token], f: &FnItem, env: &mut BTreeMap<String, &'static str>) {
    let mut open = None;
    for j in f.sig.clone() {
        if tok_punct(tokens, j, '(') {
            open = Some(j);
            break;
        }
    }
    let Some(open) = open else { return };
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let mut j = open + 1;
    while j < close {
        if let Some(name) = tok_ident(tokens, j) {
            if tok_punct(tokens, j + 1, ':')
                && !tok_punct(tokens, j + 2, ':')
                && !tok_punct(tokens, j - 1, ':')
            {
                // First type token, past `&`, lifetimes and `mut`.
                let mut t = j + 2;
                loop {
                    match tokens.get(t) {
                        Some(tk) if tk.is_punct('&') => t += 1,
                        Some(tk) if matches!(&tk.kind, crate::lexer::TokenKind::Lifetime(_)) => {
                            t += 1;
                        }
                        Some(tk) if tk.is_ident("mut") => t += 1,
                        _ => break,
                    }
                }
                if let Some(ty) = tok_ident(tokens, t) {
                    let unit = if UNIT_TYPES.contains(&ty) {
                        Some(ty_to_static(ty))
                    } else if ty == "f64" {
                        known_unit(suggested_unit_type(name))
                    } else {
                        None
                    };
                    if let Some(u) = unit {
                        env.insert(name.to_string(), u);
                    }
                }
            }
        }
        j += 1;
    }
}

fn ty_to_static(ty: &str) -> &'static str {
    UNIT_TYPES
        .iter()
        .find(|u| **u == ty)
        .copied()
        .unwrap_or("f64")
}

/// Recognises an assignment statement at `i`. Returns the target's last
/// segment, an explicitly annotated unit (let bindings only) and the RHS
/// token range (exclusive of the terminating `;`).
fn assignment_at(
    tokens: &[Token],
    i: usize,
    body: &Range<usize>,
) -> Option<(String, Option<&'static str>, Range<usize>)> {
    // `let [mut] name [: Type] =`
    if tok_ident(tokens, i) == Some("let") {
        let mut j = i + 1;
        if tok_ident(tokens, j) == Some("mut") {
            j += 1;
        }
        let name = tok_ident(tokens, j)?.to_string();
        let mut explicit = None;
        let mut k = j + 1;
        if tok_punct(tokens, k, ':') && !tok_punct(tokens, k + 1, ':') {
            if let Some(ty) = tok_ident(tokens, k + 1) {
                if UNIT_TYPES.contains(&ty) {
                    explicit = Some(ty_to_static(ty));
                } else if ty == "f64" {
                    explicit = known_unit(suggested_unit_type(&name));
                }
            }
            // Skip the annotation to the `=` at depth 0.
            let mut depth = 0i64;
            while k < body.end {
                match tokens.get(k) {
                    Some(t) if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') => depth -= 1,
                    Some(t) if t.is_punct('=') && depth == 0 => break,
                    Some(t) if t.is_punct(';') && depth == 0 => return None,
                    _ => {}
                }
                k += 1;
            }
        }
        if !tok_punct(tokens, k, '=') || tok_punct(tokens, k + 1, '=') {
            return None;
        }
        let end = statement_end(tokens, k + 1, body)?;
        return Some((name, explicit, k + 1..end));
    }
    // `path = RHS ;` / `path += RHS ;` — only when the statement starts
    // here (previous token ends a statement or block).
    let starts = i == body.start + 1
        || matches!(tokens.get(i.wrapping_sub(1)), Some(t) if t.is_punct(';') || t.is_punct('{') || t.is_punct('}'));
    if !starts {
        return None;
    }
    let (path, after) = path_starting_at(tokens, i)?;
    let name = last_segment(&path).to_string();
    let eq = if tok_punct(tokens, after, '=') && !tok_punct(tokens, after + 1, '=') {
        after
    } else if (tok_punct(tokens, after, '+') || tok_punct(tokens, after, '-'))
        && tok_punct(tokens, after + 1, '=')
    {
        after + 1
    } else {
        return None;
    };
    let end = statement_end(tokens, eq + 1, body)?;
    Some((name, None, eq + 1..end))
}

/// First `;` at depth 0 from `from`.
pub(crate) fn statement_end(tokens: &[Token], from: usize, body: &Range<usize>) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = from;
    while j < body.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
            Some(t) if t.is_punct(';') && depth == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Splits `rhs` into its depth-0 additive terms, infers each term's
/// dimension, flags mixed-dimension sums, and returns the common
/// dimension if every *known* term agrees (`None` = unknown).
fn infer_terms(
    file: &str,
    tokens: &[Token],
    rhs: &Range<usize>,
    env: &BTreeMap<String, &'static str>,
    line: usize,
    out: &mut Vec<Violation>,
) -> Option<&'static str> {
    let mut terms: Vec<Range<usize>> = Vec::new();
    let mut depth = 0i64;
    let mut start = rhs.start;
    let mut j = rhs.start;
    while j < rhs.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
            Some(t) if depth == 0 && (t.is_punct('+') || t.is_punct('-')) => {
                // Binary only: a `+`/`-` after an operand. Unary signs and
                // `->`/`..`-adjacent dashes don't split terms.
                let binary = j > rhs.start
                    && matches!(tokens.get(j - 1), Some(p) if p.ident().is_some()
                        || matches!(&p.kind, crate::lexer::TokenKind::Literal(_))
                        || p.is_punct(')') || p.is_punct(']'));
                let arrow = tok_punct(tokens, j + 1, '>');
                if binary && !arrow {
                    terms.push(start..j);
                    start = j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    terms.push(start..rhs.end);

    let mut inferred: Vec<&'static str> = Vec::new();
    let mut known = 0usize;
    for term in &terms {
        if let Some(u) = term_unit(tokens, term, env) {
            known += 1;
            if !inferred.contains(&u) {
                inferred.push(u);
            }
        }
    }
    if inferred.len() > 1 {
        out.push(violation(
            file,
            line,
            "flow.unit",
            format!(
                "sum mixes dimensions: {} — convert explicitly before adding",
                inferred.join(" + ")
            ),
        ));
        return None;
    }
    // Propagate only when every term's dimension is known — a sum with an
    // opaque term could be anything.
    if known == terms.len() {
        inferred.first().copied()
    } else {
        None
    }
}

/// The dimension of one additive term, if statically known. Terms with
/// multiplicative structure are `None`: products and quotients change
/// dimension and the lattice does not model compound dimensions.
fn term_unit(
    tokens: &[Token],
    term: &Range<usize>,
    env: &BTreeMap<String, &'static str>,
) -> Option<&'static str> {
    // Trim a leading unary minus.
    let mut start = term.start;
    if tok_punct(tokens, start, '-') {
        start += 1;
    }
    if start >= term.end {
        return None;
    }
    // Parenthesised term: recurse when the parens span the whole term.
    if tok_punct(tokens, start, '(') {
        if let Some(close) = matching(tokens, start) {
            if close + 1 == term.end {
                let inner = start + 1..close;
                // Only a *single* additive group keeps its dimension.
                let mut inferred = None;
                let mut depth = 0i64;
                let mut j = inner.start;
                let mut seg = inner.start;
                while j <= inner.end {
                    let split = j == inner.end
                        || (depth == 0
                            && matches!(tokens.get(j), Some(t) if t.is_punct('+') || t.is_punct('-'))
                            && j > seg);
                    if split {
                        let u = term_unit(tokens, &(seg..j), env)?;
                        match inferred {
                            None => inferred = Some(u),
                            Some(prev) if prev == u => {}
                            _ => return None,
                        }
                        seg = j + 1;
                    } else if let Some(t) = tokens.get(j) {
                        if t.is_punct('(') || t.is_punct('[') {
                            depth += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            depth -= 1;
                        }
                    }
                    j += 1;
                }
                return inferred;
            }
        }
        return None;
    }
    // Any depth-0 `*`, `/`, `%`, `as` inside the term → unknown dimension.
    let mut depth = 0i64;
    for j in start..term.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t)
                if depth == 0
                    && (t.is_punct('*')
                        || t.is_punct('/')
                        || t.is_punct('%')
                        || t.is_ident("as")) =>
            {
                return None;
            }
            _ => {}
        }
    }
    // `Unit::new(..)` / `Unit::from_*(..)` constructor.
    let (path, after) = path_starting_at(tokens, start)?;
    let segments: Vec<&str> = path.split("::").collect();
    if let [ty, _ctor] = segments.as_slice() {
        if UNIT_TYPES.contains(ty) && tok_punct(tokens, after, '(') {
            if matching(tokens, after).map(|c| c + 1) == Some(term.end) {
                return Some(ty_to_static(ty));
            }
            return None;
        }
    }
    // `Unit::ZERO`-style associated consts.
    if let [ty, konst] = segments.as_slice() {
        if UNIT_TYPES.contains(ty)
            && konst.chars().all(|c| c.is_ascii_uppercase() || c == '_')
            && after == term.end
        {
            return Some(ty_to_static(ty));
        }
    }
    // A plain path (possibly dotted): a call result is unknown; a bare
    // value takes its dimension from the environment, else its name.
    if after != term.end || tok_punct(tokens, after, '(') {
        return None;
    }
    let last = last_segment(&path);
    if let Some(u) = env.get(last) {
        return Some(u);
    }
    known_unit(suggested_unit_type(last))
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn run(src: &str, check_units: bool) -> (Vec<Violation>, FileProofs) {
        let tokens = lex(src);
        let parsed = parse_file("test.rs", &tokens);
        // Summaries computed from the same snippet, so cross-function
        // contract tests exercise the real pipeline shape.
        let sources = vec![crate::workspace::SourceFile {
            path: "test.rs".to_string(),
            tokens: tokens.clone(),
        }];
        let parsed_files = vec![parse_file("test.rs", &tokens)];
        let summaries = crate::summary::compute_summaries(&sources, &parsed_files);
        let mut out = Vec::new();
        let proofs = flow_pass(
            "test.rs",
            &tokens,
            &parsed,
            check_units,
            &summaries,
            &mut out,
        );
        (out, proofs)
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn for_range_len_proves_index() {
        let (out, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for i in 0..xs.len() { s += xs[i]; } s }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
        assert_eq!(proofs.fully_proven().len(), 1);
    }

    #[test]
    fn for_range_len_minus_k_proves_offset() {
        // The `is_empty` guard proves `len >= 1`, which licenses the
        // `len() - 1` subtraction the range needs.
        let (out, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; if xs.is_empty() { return s; } for i in 0..xs.len() - 1 { s += xs[i + 1]; } s }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn offset_beyond_bound_not_proven() {
        let (_, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for i in 0..xs.len() { s += xs[i + 1]; } s }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn enumerate_proves_index() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], ys: &[f64]) { for (i, _x) in xs.iter().enumerate() { let _ = xs[i]; } }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn enumerate_does_not_prove_other_slice() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], ys: &[f64]) { for (i, _x) in xs.iter().enumerate() { let _ = ys[i]; } }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn min_clamp_proves_index() {
        let (_, proofs) = run(
            "fn f(rows: &[f64], c: u32) -> f64 { if rows.is_empty() { return 0.0; } let k = (c as usize).min(rows.len() - 1); rows[k] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn unguarded_len_minus_subtractions_prove_nothing() {
        // `len() - 1` wraps in release builds when the sequence is empty,
        // so without a nonemptiness fact none of these forms is a proof.
        for src in [
            "fn f(rows: &[f64], c: u32) -> f64 { let k = (c as usize).min(rows.len() - 1); rows[k] }",
            "fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for i in 0..xs.len() - 1 { s += xs[i + 1]; } s }",
            "fn f(xs: &[f64]) -> f64 { xs[xs.len() - 1] }",
            "fn f(xs: &[f64]) -> &[f64] { &xs[..xs.len() - 2] }",
        ] {
            let (out, proofs) = run(src, false);
            assert!(out.is_empty(), "{src}: {out:#?}");
            assert_eq!(proofs.proven_sites(), 0, "{src}");
        }
    }

    #[test]
    fn windows_closure_proves_pair() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], level: f64) -> usize { xs.windows(2).filter(|w| w[0] <= level && w[1] > level).count() }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 2);
    }

    #[test]
    fn windows_closure_does_not_prove_out_of_window() {
        let (out, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { xs.windows(2).map(|w| w[2]).sum() }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
        // The exact window length refutes w[2] outright.
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn early_exit_guard_proves_rest_of_block() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], i: usize) -> f64 { if i + 1 >= xs.len() { return 0.0; } xs[i] + xs[i + 1] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 2);
    }

    #[test]
    fn plain_guard_scopes_to_block() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], i: usize) -> f64 { if i < xs.len() { return xs[i]; } xs[i] }",
            false,
        );
        // First site proven, second (outside the guard) is not.
        assert_eq!(proofs.proven_sites(), 1);
        assert!(proofs.fully_proven().is_empty() || proofs.lines.len() > 1);
    }

    #[test]
    fn is_empty_guard_proves_first_element() {
        let (_, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { if !xs.is_empty() { xs[0] } else { 0.0 } }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn assert_proves_rest_of_fn() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], i: usize) -> f64 { assert!(i < xs.len()); xs[i] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn debug_assert_proves_nothing() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], i: usize) -> f64 { debug_assert!(i < xs.len()); xs[i] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn partition_point_proves_range_from() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], t: f64) -> f64 { let s = xs.partition_point(|x| *x < t); xs[s..].iter().sum() }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn partition_point_does_not_prove_direct_index() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], t: f64) -> f64 { let s = xs.partition_point(|x| *x < t); xs[s] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn gen_range_over_len_proves_index() {
        let (_, proofs) = run(
            "fn f<R: Rng>(rng: &mut R) -> Base { Base::ALL[rng.gen_range(0..Base::ALL.len())] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn shrinking_mutation_kills_fact() {
        let (_, proofs) = run(
            "fn f(xs: &mut Vec<f64>, i: usize) -> f64 { assert!(i < xs.len()); xs.truncate(1); xs[i] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn reassignment_kills_fact() {
        let (_, proofs) = run(
            "fn f(xs: &[f64], mut i: usize) -> f64 { assert!(i < xs.len()); i = i + 2; xs[i] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn index_at_len_is_definite_oob() {
        let (out, _) = run("fn f(xs: &[f64]) -> f64 { xs[xs.len()] }", false);
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn index_at_len_minus_one_is_proven_behind_guard() {
        let (out, proofs) = run(
            "fn f(xs: &[f64]) -> f64 { if xs.is_empty() { return 0.0; } xs[xs.len() - 1] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn const_array_oob_is_definite() {
        let (out, _) = run("fn f() -> f64 { let a = [0.0; 4]; a[4] }", false);
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn const_array_in_bounds_is_proven() {
        let (out, proofs) = run("fn f() -> f64 { let a = [0.0; 4]; a[3] }", false);
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn division_by_literal_zero_flagged() {
        let (out, _) = run("fn f(x: u32) -> u32 { x % 0 }", false);
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn division_by_zero_binding_flagged() {
        let (out, _) = run("fn f(x: u32) -> u32 { let d = 0; x / d }", false);
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn division_by_nonzero_ok() {
        let (out, _) = run("fn f(x: u32) -> u32 { let d = 2; x / d + x / 2 }", false);
        assert!(out.is_empty());
    }

    #[test]
    fn unit_mixed_sum_flagged() {
        let (out, _) = run(
            "fn f(bias_v: f64, f_clk_hz: f64) -> f64 { let y = bias_v + f_clk_hz; y }",
            true,
        );
        assert_eq!(rules(&out), vec!["flow.unit"]);
    }

    #[test]
    fn unit_cross_assignment_flagged() {
        let (out, _) = run("fn f(bias_v: f64) -> f64 { let t_s = bias_v; t_s }", true);
        assert_eq!(rules(&out), vec!["flow.unit"]);
    }

    #[test]
    fn unit_constructor_seeds_binding() {
        let (out, _) = run(
            "fn f() -> f64 { let fc = Hertz::new(10.0); let dt_s = fc; 0.0 }",
            true,
        );
        assert_eq!(rules(&out), vec!["flow.unit"]);
    }

    #[test]
    fn unit_consistent_sum_ok() {
        let (out, _) = run(
            "fn f(f_lo_hz: f64, f_hi_hz: f64) -> f64 { let span_hz = f_hi_hz - f_lo_hz; span_hz }",
            true,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unit_product_is_dimensionless_to_the_lattice() {
        let (out, _) = run(
            "fn f(bias_v: f64, gain: f64) -> f64 { let x = bias_v * gain; let t_s = x; t_s }",
            true,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unit_typed_param_seeds_env() {
        let (out, _) = run("fn f(fc: Hertz) -> Hertz { let bias_v = fc; fc }", true);
        assert_eq!(rules(&out), vec!["flow.unit"]);
    }

    #[test]
    fn unit_pass_gated_off() {
        let (out, _) = run(
            "fn f(bias_v: f64, f_clk_hz: f64) -> f64 { bias_v + f_clk_hz }",
            false,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn while_head_proves_uses_before_mutation() {
        let (out, proofs) = run(
            "fn f(xs: &[u8]) -> usize { let mut j = 0; let mut n = 0; while j < xs.len() { if xs[j] == 1 { n += 1; } j += 1; } n }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn while_head_does_not_prove_uses_after_mutation() {
        let (_, proofs) = run(
            "fn f(xs: &[u8]) -> usize { let mut j = 0; let mut n = 0; while j < xs.len() { j += 1; n += xs[j] as usize; } n }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn vec_count_guard_proves_deref_index() {
        let (out, proofs) = run(
            "fn f(labels: &[usize], k: usize) -> Vec<usize> { let mut sizes = vec![0usize; k]; for l in labels { if *l < k { sizes[*l] += 1; } } sizes }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn vec_count_without_guard_not_proven() {
        let (_, proofs) = run(
            "fn f(labels: &[usize], k: usize) -> Vec<usize> { let mut sizes = vec![0usize; k]; for l in labels { sizes[*l] += 1; } sizes }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn vec_literal_count_refutes_constant_index() {
        let (out, _) = run("fn f() -> u8 { let v = vec![0u8; 4]; v[4] }", false);
        assert_eq!(rules(&out), vec!["flow.range"]);
    }

    #[test]
    fn modulo_by_len_proves_index() {
        let (out, proofs) = run(
            "fn f(xs: &[u8], i: usize) -> u8 { xs[i % xs.len()] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn modulo_by_eq_len_path_proves_index() {
        let (out, proofs) = run(
            "fn f(n: usize, i: usize) -> u8 { let v = vec![0u8; n]; v[i % n] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn modulo_by_unrelated_count_not_proven() {
        let (_, proofs) = run(
            "fn f(n: usize, m: usize, i: usize) -> u8 { let v = vec![0u8; n]; v[i % m] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }

    #[test]
    fn assert_eq_with_message_gives_symbolic_length() {
        let (out, proofs) = run(
            "fn f(per: &[u8], n: usize, spot: usize) -> u8 { assert_eq!(per.len(), n, \"want {} got {}\", n, per.len()); per[spot % n] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn summary_contract_bounds_call_result() {
        let (out, proofs) = run(
            "fn wrap(i: usize, n: usize) -> usize { i % n }\n\
             fn f(i: usize, n: usize) -> u8 { let v = vec![0u8; n]; let k = wrap(i, n); v[k] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn summary_len_contract_bounds_call_result() {
        let (out, proofs) = run(
            "fn wrap(i: usize, xs: &[u8]) -> usize { i % xs.len() }\n\
             fn f(i: usize, xs: &[u8]) -> u8 { let k = wrap(i, xs); xs[k] }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn elems_contract_bounds_loop_variable() {
        let (out, proofs) = run(
            "fn choose(n: usize, k: usize) -> Vec<usize> { let mut idx: Vec<usize> = (0..n).collect(); idx.truncate(k); idx }\n\
             fn f(n: usize) -> u8 { let v = vec![0u8; n]; let mut acc = 0; for i in choose(n, 3) { acc += v[i]; } acc }",
            false,
        );
        assert!(out.is_empty());
        assert_eq!(proofs.proven_sites(), 1);
    }

    #[test]
    fn reassigned_count_kills_symbolic_length() {
        let (_, proofs) = run(
            "fn f(mut n: usize, i: usize) -> u8 { let v = vec![0u8; n]; n = n + 4; v[i % n] }",
            false,
        );
        assert_eq!(proofs.proven_sites(), 0);
    }
}
