//! The readout signal chain (paper Fig. 6, right half).
//!
//! Per channel: pixel difference current → readout amplifier (current gain
//! ×100, BW 4 MHz) → gain stage ×7 → 8-to-1 multiplexer → output driver
//! (BW 32 MHz) → off-chip ×4 → ×2 → transimpedance conversion. "The
//! subsequent current gain stages also undergo a calibration procedure
//! before used for signal amplification."

use bsa_circuit::noise::GaussianSampler;
use bsa_units::{Ampere, Hertz, Ohm, Seconds, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One current-gain stage with mismatch and optional gain calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainStage {
    nominal_gain: f64,
    gain_error: f64,
    correction: f64,
    bandwidth: Hertz,
}

impl GainStage {
    /// Creates a stage with the given nominal current gain and bandwidth,
    /// sampling a static gain error of relative σ `gain_sigma`.
    pub fn sample<R: Rng>(
        nominal_gain: f64,
        bandwidth: Hertz,
        gain_sigma: f64,
        rng: &mut R,
    ) -> Self {
        let mut g = GaussianSampler::new();
        Self {
            nominal_gain,
            gain_error: gain_sigma * g.sample(rng),
            correction: 1.0,
            bandwidth,
        }
    }

    /// An error-free stage.
    pub fn ideal(nominal_gain: f64, bandwidth: Hertz) -> Self {
        Self {
            nominal_gain,
            gain_error: 0.0,
            correction: 1.0,
            bandwidth,
        }
    }

    /// The actual gain including error and any calibration correction.
    pub fn gain(&self) -> f64 {
        self.nominal_gain * (1.0 + self.gain_error) * self.correction
    }

    /// Nominal design gain.
    pub fn nominal_gain(&self) -> f64 {
        self.nominal_gain
    }

    /// Stage bandwidth.
    pub fn bandwidth(&self) -> Hertz {
        self.bandwidth
    }

    /// Settling time constant, τ = 1/(2π·BW).
    pub fn tau(&self) -> Seconds {
        Seconds::new(1.0 / (2.0 * std::f64::consts::PI * self.bandwidth.value()))
    }

    /// Calibrates the stage against a reference: stores a correction that
    /// makes the effective gain exactly nominal.
    pub fn calibrate(&mut self) {
        self.correction = 1.0 / (1.0 + self.gain_error);
    }
}

/// Configuration of the full per-channel chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Readout-amplifier current gain (paper: ×100).
    pub readout_gain: f64,
    /// Readout-amplifier bandwidth (paper: 4 MHz).
    pub readout_bandwidth: Hertz,
    /// Second on-chip gain (paper: ×7).
    pub second_gain: f64,
    /// Output-driver bandwidth (paper: 32 MHz).
    pub driver_bandwidth: Hertz,
    /// First off-chip gain (paper: ×4).
    pub offchip_gain_a: f64,
    /// Second off-chip gain (paper: ×2).
    pub offchip_gain_b: f64,
    /// Transimpedance converting the final current to a voltage.
    pub conversion_resistance: Ohm,
    /// Relative gain-error σ per on-chip stage before calibration.
    pub stage_gain_sigma: f64,
    /// Input-referred current-noise RMS per sample (at the chain input).
    pub input_noise: Ampere,
}

impl Default for ChainConfig {
    /// The paper's gain partitioning: 100 × 7 × 4 × 2 = 5600.
    fn default() -> Self {
        Self {
            readout_gain: 100.0,
            readout_bandwidth: Hertz::from_mega(4.0),
            second_gain: 7.0,
            driver_bandwidth: Hertz::from_mega(32.0),
            offchip_gain_a: 4.0,
            offchip_gain_b: 2.0,
            conversion_resistance: Ohm::from_kilo(1.0),
            stage_gain_sigma: 0.02,
            input_noise: Ampere::from_nano(0.25),
        }
    }
}

/// One channel's complete chain (the array has 16 of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelChain {
    readout: GainStage,
    second: GainStage,
    config: ChainConfig,
    /// Last multiplexed output current, for settling crosstalk.
    last_output: Ampere,
    /// Persistent Box–Muller sampler: keeps the spare variate across
    /// samples so noise costs one transcendental pair per two samples.
    #[serde(default)]
    noise: GaussianSampler,
}

/// Precomputed per-channel constants of the chain's sample recursion, used
/// by the linearized fast path. Built by [`ChannelChain::linear_coeffs`]
/// with exactly the arithmetic of [`ChannelChain::process_sample`], so a
/// fast-path sample computed as
///
/// ```text
/// target  = (i + sigma·z)·gain
/// after_a = target + (last − target)·alpha_a
/// out     = after_a + (last − after_a)·alpha_b
/// y       = out·r
/// ```
///
/// is bit-identical to the reference chain given the same input current
/// and noise draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ChainCoeffs {
    /// Total current gain through all four stages.
    pub gain: f64,
    /// Readout-amplifier settling factor exp(−dwell/τ_a).
    pub alpha_a: f64,
    /// Output-driver settling factor exp(−dwell/τ_b).
    pub alpha_b: f64,
    /// Transimpedance conversion resistance in ohms.
    pub r: f64,
    /// Input-referred noise RMS in amperes.
    pub sigma: f64,
}

impl ChannelChain {
    /// Instantiates a channel with sampled stage errors.
    pub fn sample<R: Rng>(config: ChainConfig, rng: &mut R) -> Self {
        let readout = GainStage::sample(
            config.readout_gain,
            config.readout_bandwidth,
            config.stage_gain_sigma,
            rng,
        );
        let second = GainStage::sample(
            config.second_gain,
            config.readout_bandwidth,
            config.stage_gain_sigma,
            rng,
        );
        Self {
            readout,
            second,
            config,
            last_output: Ampere::ZERO,
            noise: GaussianSampler::new(),
        }
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Calibrates both on-chip gain stages (the paper's gain-stage
    /// calibration phase).
    pub fn calibrate(&mut self) {
        self.readout.calibrate();
        self.second.calibrate();
    }

    /// Total current gain through all four stages.
    pub fn current_gain(&self) -> f64 {
        self.readout.gain()
            * self.second.gain()
            * self.config.offchip_gain_a
            * self.config.offchip_gain_b
    }

    /// Nominal design current gain (5600 for the paper's values).
    pub fn nominal_current_gain(&self) -> f64 {
        self.config.readout_gain
            * self.config.second_gain
            * self.config.offchip_gain_a
            * self.config.offchip_gain_b
    }

    /// Output voltage per volt of cleft signal, given the pixel conversion
    /// gain `gm_eff` (A/V at the chain input).
    pub fn voltage_gain(&self, gm_eff: bsa_units::Siemens) -> f64 {
        gm_eff.value() * self.current_gain() * self.config.conversion_resistance.value()
    }

    /// Processes one multiplexed sample: amplifies the pixel difference
    /// current, applies finite-bandwidth settling toward the new value
    /// within the dwell time (leaving crosstalk from the previous pixel),
    /// adds input-referred noise, and converts to the output voltage.
    pub fn process_sample<R: Rng>(&mut self, i_diff: Ampere, dwell: Seconds, rng: &mut R) -> Volt {
        let noisy_in = i_diff + self.config.input_noise * self.noise.sample(rng);
        let target = noisy_in * self.current_gain();

        // Two cascaded single-pole settles: readout amp then driver.
        let tau_a = self.readout.tau();
        let tau_b =
            Seconds::new(1.0 / (2.0 * std::f64::consts::PI * self.config.driver_bandwidth.value()));
        let settle = |from: Ampere, to: Ampere, tau: Seconds| -> Ampere {
            let alpha = (-dwell.value() / tau.value()).exp();
            to + (from - to) * alpha
        };
        let after_a = settle(self.last_output, target, tau_a);
        let out = settle(self.last_output, after_a, tau_b);
        self.last_output = out;
        out * self.config.conversion_resistance
    }

    /// Resets the settling state (e.g. at a row boundary), discarding any
    /// cached noise variate so the draw sequence restarts on a pair
    /// boundary — this is what makes recordings a pure function of the
    /// per-channel RNG stream regardless of prior chain use.
    pub fn reset_settling(&mut self) {
        self.last_output = Ampere::ZERO;
        self.noise = GaussianSampler::new();
    }

    /// Precomputes the sample-recursion constants for the given dwell time.
    ///
    /// Each factor is produced by the same expression
    /// [`ChannelChain::process_sample`] evaluates per sample, so the fast
    /// path replicates the reference chain bit-for-bit.
    pub(crate) fn linear_coeffs(&self, dwell: Seconds) -> ChainCoeffs {
        let tau_a = self.readout.tau();
        let tau_b =
            Seconds::new(1.0 / (2.0 * std::f64::consts::PI * self.config.driver_bandwidth.value()));
        ChainCoeffs {
            gain: self.current_gain(),
            alpha_a: (-dwell.value() / tau_a.value()).exp(),
            alpha_b: (-dwell.value() / tau_b.value()).exp(),
            r: self.config.conversion_resistance.value(),
            sigma: self.config.input_noise.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsa_units::Siemens;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn channel(seed: u64) -> ChannelChain {
        let mut rng = SmallRng::seed_from_u64(seed);
        ChannelChain::sample(ChainConfig::default(), &mut rng)
    }

    #[test]
    fn nominal_gain_is_5600() {
        let c = channel(1);
        assert_eq!(c.nominal_current_gain(), 5600.0);
    }

    #[test]
    fn uncalibrated_gain_differs_calibrated_matches() {
        let mut c = channel(2);
        let before = c.current_gain();
        assert!((before - 5600.0).abs() > 1.0, "stage errors must show");
        c.calibrate();
        let after = c.current_gain();
        assert!((after - 5600.0).abs() < 1e-6, "calibrated gain = {after}");
    }

    #[test]
    fn gain_errors_differ_between_channels() {
        let a = channel(3);
        let b = channel(4);
        assert_ne!(a.current_gain(), b.current_gain());
    }

    #[test]
    fn voltage_gain_composition() {
        let mut c = channel(5);
        c.calibrate();
        let gm = Siemens::from_micro(24.0); // 30 µS × 0.8 coupling
        let g = c.voltage_gain(gm);
        // 24 µS × 5600 × 1 kΩ = 134.4 V/V.
        assert!((g - 134.4).abs() < 0.1, "g = {g}");
    }

    #[test]
    fn long_dwell_settles_fully() {
        let mut c = channel(6);
        c.calibrate();
        let mut cfg = c.config().clone();
        cfg.input_noise = Ampere::ZERO;
        let mut c = ChannelChain { config: cfg, ..c };
        let i = Ampere::from_nano(10.0);
        let dwell = Seconds::from_micro(10.0); // ≫ both taus
        let mut rng = SmallRng::seed_from_u64(7);
        let v = c.process_sample(i, dwell, &mut rng);
        let expected = i.value() * 5600.0 * 1000.0;
        assert!((v.value() - expected).abs() / expected < 1e-3, "v = {v}");
    }

    #[test]
    fn short_dwell_leaves_crosstalk() {
        let mut c = channel(8);
        c.calibrate();
        let mut cfg = c.config().clone();
        cfg.input_noise = Ampere::ZERO;
        let mut c = ChannelChain { config: cfg, ..c };
        let mut rng = SmallRng::seed_from_u64(9);
        // Drive a big sample, then a zero sample with a dwell comparable to
        // the readout-amp time constant: residue remains.
        let dwell = Seconds::from_nano(40.0); // τ_readout ≈ 40 ns
        c.process_sample(Ampere::from_nano(100.0), dwell, &mut rng);
        let v = c.process_sample(Ampere::ZERO, dwell, &mut rng);
        assert!(v.value().abs() > 1e-3, "crosstalk residue = {v}");
        // At the real chip's 488 ns dwell the residue is negligible.
        c.reset_settling();
        c.process_sample(
            Ampere::from_nano(100.0),
            Seconds::from_nano(488.0),
            &mut rng,
        );
        let v = c.process_sample(Ampere::ZERO, Seconds::from_nano(488.0), &mut rng);
        assert!(v.value().abs() < 1e-4, "settled residue = {v}");
    }

    #[test]
    fn noise_floor_scales_with_input_noise_spec() {
        let mut c = channel(10);
        c.calibrate();
        let mut rng = SmallRng::seed_from_u64(11);
        let dwell = Seconds::from_micro(10.0);
        let samples: Vec<f64> = (0..5000)
            .map(|_| {
                c.reset_settling();
                c.process_sample(Ampere::ZERO, dwell, &mut rng).value()
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd =
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt();
        let expected = ChainConfig::default().input_noise.value() * 5600.0 * 1000.0;
        assert!((sd - expected).abs() / expected < 0.1, "sd = {sd}");
    }

    #[test]
    fn stage_tau_matches_bandwidth() {
        let s = GainStage::ideal(100.0, Hertz::from_mega(4.0));
        assert!((s.tau().as_nano() - 39.8).abs() < 0.5);
    }
}
