#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! End-to-end integration: electrochemistry → DNA chip → DSP calling.

use cmos_biosensor_arrays::chips::array::PixelAddress;
use cmos_biosensor_arrays::chips::dna_chip::{decode_frames, DnaChip, DnaChipConfig, SampleMix};
use cmos_biosensor_arrays::dsp::calling::{Call, CallAccuracy, MatchCaller};
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::units::Molar;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn stringent_config() -> DnaChipConfig {
    let mut config = DnaChipConfig::default();
    config.assay.wash_stringency = 100.0;
    config
}

#[test]
fn single_target_lights_up_only_its_site() {
    let mut chip = DnaChip::new(stringent_config()).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let probes: Vec<DnaSequence> = (0..128)
        .map(|_| DnaSequence::random(22, &mut rng))
        .collect();
    chip.spot_all(&probes);
    chip.auto_calibrate();

    let hot = 37usize;
    let sample =
        SampleMix::new().with_target(probes[hot].reverse_complement(), Molar::from_nano(100.0));
    let readout = chip.run_assay(&sample);

    let currents: Vec<f64> = readout
        .estimated_currents
        .iter()
        .map(|a| a.value())
        .collect();
    let calls = MatchCaller::default().call(&currents);
    assert_eq!(
        calls.match_indices(),
        vec![hot],
        "exactly one site lights up"
    );
    assert_eq!(calls.calls[hot], Call::Match);
}

#[test]
fn multiplexed_sample_recovers_all_targets() {
    let mut chip = DnaChip::new(stringent_config()).unwrap();
    let mut rng = SmallRng::seed_from_u64(2);
    let probes: Vec<DnaSequence> = (0..128)
        .map(|_| DnaSequence::random(22, &mut rng))
        .collect();
    chip.spot_all(&probes);
    chip.auto_calibrate();

    let targets = [3usize, 40, 77, 126];
    let mut sample = SampleMix::new();
    for &t in &targets {
        sample = sample.with_target(probes[t].reverse_complement(), Molar::from_nano(50.0));
    }
    let readout = chip.run_assay(&sample);
    let currents: Vec<f64> = readout
        .estimated_currents
        .iter()
        .map(|a| a.value())
        .collect();
    let calls = MatchCaller::default().call(&currents);
    let truth: Vec<bool> = (0..128).map(|i| targets.contains(&i)).collect();
    let acc = CallAccuracy::of(&calls.calls, &truth);
    assert_eq!(acc.false_negatives, 0, "all spiked targets must be found");
    assert!(acc.accuracy() > 0.97, "accuracy = {}", acc.accuracy());
}

#[test]
fn dose_response_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(3);
    let probe = DnaSequence::random(20, &mut rng);
    let mut last = 0.0;
    for c_nm in [0.1, 1.0, 10.0, 100.0] {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        for addr in chip.geometry().iter() {
            chip.spot(addr, probe.clone()).unwrap();
        }
        chip.auto_calibrate();
        let sample =
            SampleMix::new().with_target(probe.reverse_complement(), Molar::from_nano(c_nm));
        let readout = chip.run_assay(&sample);
        let mean: f64 = readout
            .estimated_currents
            .iter()
            .map(|a| a.value())
            .sum::<f64>()
            / readout.estimated_currents.len() as f64;
        assert!(
            mean > last,
            "current must grow with concentration: {mean} after {last}"
        );
        last = mean;
    }
}

#[test]
fn serial_interface_survives_full_assay_round_trip() {
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(4);
    let probes: Vec<DnaSequence> = (0..128)
        .map(|_| DnaSequence::random(20, &mut rng))
        .collect();
    chip.spot_all(&probes);
    let sample =
        SampleMix::new().with_target(probes[0].reverse_complement(), Molar::from_nano(100.0));
    let readout = chip.run_assay(&sample);
    let bits = chip.serial_readout(&readout);
    let decoded = decode_frames(&bits).expect("valid stream");
    assert_eq!(decoded.len(), 128);
    for (reading, expected) in decoded.iter().zip(readout.to_readings()) {
        assert_eq!(*reading, expected);
    }
}

#[test]
fn calibration_is_required_for_cross_die_comparability() {
    // Two dies measure the same currents; calibrated estimates agree
    // across dies far better than uncalibrated ones.
    let config_a = DnaChipConfig {
        seed: 101,
        ..DnaChipConfig::default()
    };
    let config_b = DnaChipConfig {
        seed: 202,
        ..DnaChipConfig::default()
    };

    let probe_current = cmos_biosensor_arrays::units::Ampere::from_nano(5.0);
    let currents = vec![probe_current; 128];

    let disagreement = |calibrate: bool| -> f64 {
        let mut worst: f64 = 0.0;
        let mut estimates = Vec::new();
        for config in [config_a.clone(), config_b.clone()] {
            let mut chip = DnaChip::new(config).unwrap();
            if calibrate {
                chip.auto_calibrate();
            }
            let counts = chip
                .measure_currents(&currents)
                .expect("one current per pixel");
            let est = chip
                .estimate_currents(&counts)
                .expect("one count per pixel");
            let mean = est.iter().map(|a| a.value()).sum::<f64>() / est.len() as f64;
            estimates.push(mean);
        }
        for e in &estimates {
            worst = worst.max((e - probe_current.value()).abs() / probe_current.value());
        }
        worst
    };

    let uncal = disagreement(false);
    let cal = disagreement(true);
    assert!(cal < 0.01, "calibrated cross-die error = {cal}");
    assert!(cal < uncal, "calibration must improve comparability");
}

#[test]
fn bare_chip_reports_background_everywhere() {
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    chip.auto_calibrate();
    let readout = chip.run_assay(&SampleMix::new());
    let calls = MatchCaller::default().call(
        &readout
            .estimated_currents
            .iter()
            .map(|a| a.value())
            .collect::<Vec<_>>(),
    );
    assert_eq!(calls.match_count(), 0);
    assert!(readout.estimate_at(PixelAddress::new(7, 15)).is_ok());
}
